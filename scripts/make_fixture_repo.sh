#!/usr/bin/env bash
# Builds the deterministic git fixture repository the gitsrc CI gate
# mines. Every commit is stamped with fixed author/committer identities
# and dates, so the commit hashes — and therefore `diffcode mine
# --repo` stdout — are byte-identical on every machine. Layout:
#
#   ~30 commits of plausible crypto-API churn, including
#   - a rename+edit in one commit (exercises `-M` pre-image following),
#   - a file deletion,
#   - non-Java files (filtered, counted),
#   - one oversized .java blob (> the 1 MiB ingest budget; quarantined),
#   - a merge commit (excluded by --no-merges; the branch's own commit
#     still ingests).
#
# Usage: make_fixture_repo.sh <target-dir>
# The target directory must not exist; the repo is created at
# <target-dir> with branch `main`.

set -euo pipefail

if [ $# -ne 1 ] || [ -e "$1" ]; then
    echo "usage: $0 <target-dir> (must not exist)" >&2
    exit 2
fi

DIR="$1"
mkdir -p "$DIR"
cd "$DIR"

export GIT_AUTHOR_NAME="Fixture Author"
export GIT_AUTHOR_EMAIL="fixture@diffcode.test"
export GIT_COMMITTER_NAME="Fixture Committer"
export GIT_COMMITTER_EMAIL="fixture-c@diffcode.test"
export GIT_CONFIG_GLOBAL=/dev/null
export GIT_CONFIG_SYSTEM=/dev/null

# Monotone fake clock: each commit one minute after the previous.
TICK=0
stamp() {
    TICK=$((TICK + 1))
    printf '2020-06-01T12:%02d:00Z' "$TICK"
}

commit() {
    local when
    when=$(stamp)
    GIT_AUTHOR_DATE="$when" GIT_COMMITTER_DATE="$when" \
        git commit -q --no-gpg-sign -m "$1"
}

git init -q -b main .

# A Java class with enough stable padding lines that a rename+edit
# stays above git's default 50% similarity threshold.
java_class() {
    local name="$1" transform="$2"
    {
        for i in $(seq 1 24); do
            echo "// padding line $i keeps rename similarity high"
        done
        printf 'public class %s {\n' "$name"
        printf '    byte[] run(byte[] data) throws Exception {\n'
        printf '        javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("%s");\n' "$transform"
        printf '        return c.doFinal(data);\n'
        printf '    }\n'
        printf '}\n'
    }
}

# --- history -----------------------------------------------------------

# 1: initial layout with a non-Java file.
java_class Session DES > Session.java
echo "# fixture repo" > README.md
git add -A; commit "initial session handling"

# 2..11: ten weak-to-strong transform fixes across ten files.
WEAK=(DES DES RC4 DES/ECB/PKCS5Padding AES AES/ECB/PKCS5Padding DES RC4 AES DES)
for i in $(seq 0 9); do
    java_class "Worker$i" "${WEAK[$i]}" > "Worker$i.java"
    git add -A; commit "add worker $i"
done
for i in $(seq 0 9); do
    java_class "Worker$i" "AES/GCM/NoPadding" > "Worker$i.java"
    git add -A; commit "worker $i: use an authenticated transform"
done

# 22: fix the session cipher too.
java_class Session "AES/GCM/NoPadding" > Session.java
git add -A; commit "session: retire DES"

# 23: a rename WITH an edit in the same commit.
git mv Session.java SecureSession.java
sed -i 's/class Session/class SecureSession/' SecureSession.java
git add -A; commit "rename Session to SecureSession"

# 24: second hop of the rename chain.
git mv SecureSession.java TlsSession.java
sed -i 's/class SecureSession/class TlsSession/' TlsSession.java
git add -A; commit "rename SecureSession to TlsSession"

# 25: a file that will be deleted later.
java_class Scratch "AES" > Scratch.java
git add -A; commit "add scratch prototype"

# 26: delete it.
git rm -q Scratch.java; commit "drop the scratch prototype"

# 27: non-Java churn only.
echo "more docs" >> README.md
git add -A; commit "docs: expand readme"

# 28: an oversized .java blob (>1 MiB) that the ingest budget rejects.
{
    echo "public class Big {"
    for i in $(seq 1 30000); do
        echo "    int pad_$i = $i; // filler to exceed the blob budget"
    done
    echo "}"
} > Big.java
git add -A; commit "vendor a generated monster file"

# 29: edit the oversized file (both sides oversized -> quarantined).
sed -i '2i\    int first = 0;' Big.java
git add -A; commit "touch the monster file"

# 30/31: a merge commit (excluded by --no-merges) whose branch commit
# still ingests.
git checkout -q -b side
java_class SideChannel "AES/GCM/NoPadding" > SideChannel.java
git add -A; commit "side: add channel helper"
git checkout -q main
when=$(stamp)
GIT_AUTHOR_DATE="$when" GIT_COMMITTER_DATE="$when" \
    git merge -q --no-ff --no-gpg-sign -m "merge side channel work" side

# 32: one more edit on top of the merge.
java_class TlsSession "AES/GCM/NoPadding" > TlsSession.java
sed -i 's/padding line 1 /padding line 1b/' TlsSession.java
git add -A; commit "tls session: refresh padding comment"

git log --oneline | wc -l | xargs echo "fixture commits:"
git rev-parse HEAD | xargs echo "fixture HEAD:"
