#!/usr/bin/env python3
"""Gates per-stage latency regressions in the CI bench smoke run.

Compares the `--bench-json` snapshot of an `all_experiments` run
against the committed baseline (scripts/bench_baseline.json): for every
span present in both, the current mean latency (sum_ns / count) must
not exceed MAX_RATIO x the baseline mean. Spans below MIN_BASELINE_NS
are skipped — sub-tenth-millisecond stages are noise-dominated on
shared CI runners.

New spans (absent from the baseline) pass with a note; a span that
disappeared fails, since that usually means a stage was renamed without
updating the baseline.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_bench_regression.py <current.json> <baseline.json>
"""

import json
import sys

MAX_RATIO = 2.0
MIN_BASELINE_NS = 100_000  # 0.1 ms


def mean_ns(span):
    count = span.get("count", 0)
    return span.get("sum_ns", 0) / count if count else 0.0


def check(current, baseline):
    errors = []
    notes = []
    cur_spans = current.get("spans", {})
    base_spans = baseline.get("spans", {})

    for name in sorted(base_spans):
        if name not in cur_spans:
            errors.append(
                f"span {name} present in baseline but missing from the run "
                "(stage renamed? update scripts/bench_baseline.json)"
            )

    for name in sorted(cur_spans):
        if name not in base_spans:
            notes.append(f"new span {name}: no baseline, skipping")
            continue
        base = mean_ns(base_spans[name])
        cur = mean_ns(cur_spans[name])
        if base < MIN_BASELINE_NS:
            notes.append(f"span {name}: baseline mean {base:.0f}ns below noise floor, skipping")
            continue
        if cur > MAX_RATIO * base:
            errors.append(
                f"span {name} regressed {cur / base:.2f}x: "
                f"mean {cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms "
                f"(limit {MAX_RATIO}x)"
            )
        else:
            notes.append(
                f"span {name}: {cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms "
                f"({cur / base:.2f}x)"
            )

    return errors, notes


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)
    errors, notes = check(current, baseline)
    for note in notes:
        print(note)
    for error in errors:
        print(f"BENCH REGRESSION: {error}", file=sys.stderr)
    if not errors:
        print("bench latencies OK: no stage regressed more than "
              f"{MAX_RATIO}x vs baseline")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
