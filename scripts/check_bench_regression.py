#!/usr/bin/env python3
"""Gates per-stage latency regressions in the CI bench smoke run.

Compares the `--bench-json` snapshot of an `all_experiments` run
against the committed baseline (scripts/bench_baseline.json): for every
span present in both, the current mean latency (sum_ns / count) must
not exceed MAX_RATIO x the baseline mean. Spans below MIN_BASELINE_NS
are skipped — sub-tenth-millisecond stages are noise-dominated on
shared CI runners.

Improvements are reported explicitly (`improved N.NNx`), so claimed
speedups are visible in the workflow log, and `--min-speedup` turns a
claim into a gate: `--min-speedup frontend.change=3.0` fails the run
unless the span's mean improved by at least that factor vs the given
baseline. Min-speedup spans are exempt from the noise floor — they are
opted in deliberately and measured over enough iterations to be stable.

`--max-ratio <spanA>/<spanB>=<factor>` gates a *same-run* ratio: the
current run's mean of spanA must not exceed factor x the mean of spanB.
This pins relative overhead budgets (e.g. the full histogram-recording
`obs.record_span` path vs the bare `obs.span_stats_only` upsert it
extends) without a wall-clock baseline, so it is immune to runner speed.

New spans (absent from the baseline) pass with a note; a span that
disappeared fails, since that usually means a stage was renamed without
updating the baseline.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_bench_regression.py <current.json> <baseline.json>
           [--min-speedup <span>=<factor>]...
           [--max-ratio <spanA>/<spanB>=<factor>]...
"""

import sys

import cilib

MAX_RATIO = 2.0
MIN_BASELINE_NS = 100_000  # 0.1 ms


def mean_ns(span):
    count = span.get("count", 0)
    return span.get("sum_ns", 0) / count if count else 0.0


def check_ratios(current, max_ratios):
    """Same-run ratio gates: mean(spanA) <= factor * mean(spanB)."""
    errors = []
    notes = []
    cur_spans = current.get("spans", {})
    for (num, den), factor in max_ratios:
        missing = [name for name in (num, den) if name not in cur_spans]
        if missing:
            errors.append(
                f"--max-ratio {num}/{den}: span(s) {', '.join(missing)} "
                "not measured in this run"
            )
            continue
        num_mean = mean_ns(cur_spans[num])
        den_mean = mean_ns(cur_spans[den])
        if den_mean <= 0:
            errors.append(f"--max-ratio {num}/{den}: {den} has a zero mean")
            continue
        ratio = num_mean / den_mean
        if ratio > factor:
            errors.append(
                f"ratio {num}/{den} is {ratio:.2f}x, above the {factor:.2f}x "
                f"budget ({num_mean / 1e6:.3f}ms vs {den_mean / 1e6:.3f}ms)"
            )
        else:
            notes.append(
                f"ratio {num}/{den}: {ratio:.2f}x (budget {factor:.2f}x, "
                f"{num_mean / 1e6:.3f}ms vs {den_mean / 1e6:.3f}ms)"
            )
    return errors, notes


def check(current, baseline, min_speedups=None):
    errors = []
    notes = []
    min_speedups = dict(min_speedups or {})
    cur_spans = current.get("spans", {})
    base_spans = baseline.get("spans", {})

    for name in sorted(base_spans):
        if name not in cur_spans:
            errors.append(
                f"span {name} present in baseline but missing from the run "
                "(stage renamed? update scripts/bench_baseline.json)"
            )

    for name in sorted(cur_spans):
        if name not in base_spans:
            if name in min_speedups:
                errors.append(
                    f"span {name} has a --min-speedup gate but no baseline entry"
                )
                min_speedups.pop(name)
            else:
                notes.append(f"new span {name}: no baseline, skipping")
            continue
        base = mean_ns(base_spans[name])
        cur = mean_ns(cur_spans[name])
        required = min_speedups.pop(name, None)
        if required is not None:
            speedup = base / cur if cur else float("inf")
            if speedup < required:
                errors.append(
                    f"span {name} speedup {speedup:.2f}x below the required "
                    f"{required:.2f}x: mean {cur / 1e6:.3f}ms vs baseline "
                    f"{base / 1e6:.3f}ms"
                )
            else:
                notes.append(
                    f"span {name}: improved {speedup:.2f}x "
                    f"({cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms, "
                    f"required >={required:.2f}x)"
                )
            continue
        if base < MIN_BASELINE_NS:
            notes.append(f"span {name}: baseline mean {base:.0f}ns below noise floor, skipping")
            continue
        if cur > MAX_RATIO * base:
            errors.append(
                f"span {name} regressed {cur / base:.2f}x: "
                f"mean {cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms "
                f"(limit {MAX_RATIO}x)"
            )
        elif cur < base:
            notes.append(
                f"span {name}: improved {base / cur:.2f}x "
                f"({cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms)"
            )
        else:
            notes.append(
                f"span {name}: {cur / 1e6:.3f}ms vs baseline {base / 1e6:.3f}ms "
                f"({cur / base:.2f}x)"
            )

    for name in sorted(min_speedups):
        errors.append(f"span {name} has a --min-speedup gate but was not measured")

    return errors, notes


def parse_args(argv):
    positionals = []
    min_speedups = []
    max_ratios = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--min-speedup":
            i += 1
            spec = argv[i] if i < len(argv) else ""
            name, sep, factor = spec.partition("=")
            if not sep:
                raise ValueError(f"--min-speedup expects <span>=<factor>, got {spec!r}")
            min_speedups.append((name, float(factor)))
        elif arg == "--max-ratio":
            i += 1
            spec = argv[i] if i < len(argv) else ""
            pair, sep, factor = spec.partition("=")
            num, slash, den = pair.partition("/")
            if not sep or not slash or not num or not den:
                raise ValueError(
                    f"--max-ratio expects <spanA>/<spanB>=<factor>, got {spec!r}"
                )
            max_ratios.append(((num, den), float(factor)))
        else:
            positionals.append(arg)
        i += 1
    return positionals, min_speedups, max_ratios


def main():
    try:
        positionals, min_speedups, max_ratios = parse_args(sys.argv[1:])
    except ValueError as err:
        print(err, file=sys.stderr)
        return 2
    if len(positionals) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current = cilib.read_json(positionals[0])
    baseline = cilib.read_json(positionals[1])
    errors, notes = check(current, baseline, min_speedups)
    ratio_errors, ratio_notes = check_ratios(current, max_ratios)
    errors += ratio_errors
    notes += ratio_notes
    for note in notes:
        print(note)
    ok = (
        f"bench latencies OK: no stage regressed more than {MAX_RATIO}x vs baseline"
        + (", all required speedups held" if min_speedups else "")
        + (", all ratio budgets held" if max_ratios else "")
    )
    return cilib.report("BENCH", errors, ok)


if __name__ == "__main__":
    sys.exit(main())
