#!/usr/bin/env bash
# Guards the fault-tolerance invariant: non-test code in the crates on
# the untrusted-input path (javalang, analysis, usagegraph, core) must
# not gain new unwrap()/expect()/panic! sites. Deliberate sites are
# recorded in scripts/panic_allowlist.txt; add a line there (with a
# justification comment) only when a panic is genuinely unreachable
# from input or is itself a fault-injection hook.
#
# Test code is exempt: by repo convention every `#[cfg(test)]` module
# sits at the bottom of its file, so scanning stops at that marker.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=scripts/panic_allowlist.txt
found=$(
    find crates/javalang/src crates/analysis/src crates/usagegraph/src \
        crates/core/src -name '*.rs' -print0 |
        sort -z |
        while IFS= read -r -d '' f; do
            awk -v fn="$f" '
                /#\[cfg\(test\)\]/ { exit }
                /\.unwrap\(\)|\.expect\(|panic!\(/ {
                    gsub(/^[ \t]+/, "", $0)
                    print fn ": " $0
                }
            ' "$f"
        done
)

new=$(grep -vxF -f <(grep -v '^#' "$allowlist" | grep -v '^$') \
    <<<"$found" || true)
if [ -n "${new// /}" ]; then
    echo "error: new panic/unwrap/expect site(s) in non-test pipeline code:" >&2
    echo "$new" >&2
    echo >&2
    echo "Convert to a typed error (PipelineError taxonomy), or if the" >&2
    echo "site is provably unreachable from input, add the exact line to" >&2
    echo "$allowlist with a justification." >&2
    exit 1
fi
echo "ok: no new panic/unwrap/expect sites outside the allowlist"
