#!/usr/bin/env bash
# Guards the fault-tolerance invariant: non-test code in the crates on
# the untrusted-input path (javalang, analysis, usagegraph, core,
# serve) must
# not gain new unwrap()/expect()/panic! sites. Deliberate sites are
# recorded in scripts/panic_allowlist.txt; add a line there (with a
# justification comment) only when a panic is genuinely unreachable
# from input or is itself a fault-injection hook.
#
# Test code is exempt: by repo convention every `#[cfg(test)]` module
# sits at the bottom of its file, so scanning stops at that marker.
# Build output and vendored code are exempt too: any `target/` or
# `vendor/` directory inside the scanned trees is pruned, so stray
# build artifacts or vendored sources can never fail the gate.
#
# `--self-test` runs the checker against throwaway fixture trees and
# verifies it catches a new panic site, honors the cfg(test) exemption,
# and prunes target/ and vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prints every non-test panic/unwrap/expect site under the scanned
# source trees of $1, one "path: line" per line.
scan() {
    local root=$1
    local dirs=()
    local d
    for d in javalang analysis usagegraph core serve; do
        [ -d "$root/crates/$d/src" ] && dirs+=("$root/crates/$d/src")
    done
    [ "${#dirs[@]}" -eq 0 ] && return 0
    find "${dirs[@]}" \
        \( -type d \( -name target -o -name vendor \) \) -prune \
        -o -name '*.rs' -print0 |
        sort -z |
        while IFS= read -r -d '' f; do
            f=${f#./}
            awk -v fn="$f" '
                /#\[cfg\(test\)\]/ { exit }
                /\.unwrap\(\)|\.expect\(|panic!\(/ {
                    gsub(/^[ \t]+/, "", $0)
                    print fn ": " $0
                }
            ' "$f"
        done
}

# Filters $1 (scan output) down to sites absent from allowlist $2.
new_sites() {
    local found=$1 allowlist=$2
    grep -vxF -f <(grep -v '^#' "$allowlist" | grep -v '^$') \
        <<<"$found" || true
}

self_test() {
    local tmp
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    mkdir -p "$tmp/crates/core/src/target/debug" \
        "$tmp/crates/javalang/src/vendor/dep"
    # A genuine new panic site: must be reported.
    printf 'fn f() {\n    x.unwrap();\n}\n' >"$tmp/crates/core/src/bad.rs"
    # Panics only under #[cfg(test)]: must be exempt.
    printf 'fn g() {}\n#[cfg(test)]\nmod t { fn h() { y.unwrap(); } }\n' \
        >"$tmp/crates/core/src/tested.rs"
    # Panics inside target/ and vendor/: must be pruned.
    printf 'fn t() { z.unwrap(); }\n' \
        >"$tmp/crates/core/src/target/debug/gen.rs"
    printf 'fn v() { panic!("vendored"); }\n' \
        >"$tmp/crates/javalang/src/vendor/dep/lib.rs"
    local empty_allowlist="$tmp/allowlist.txt"
    : >"$empty_allowlist"

    local found new
    found=$(scan "$tmp")
    new=$(new_sites "$found" "$empty_allowlist")
    if ! grep -q 'bad\.rs: x\.unwrap();' <<<"$new"; then
        echo "self-test FAILED: new panic site in bad.rs not reported" >&2
        exit 1
    fi
    if grep -q 'tested\.rs' <<<"$new"; then
        echo "self-test FAILED: cfg(test) code was not exempt" >&2
        exit 1
    fi
    if grep -Eq 'target/|vendor/' <<<"$new"; then
        echo "self-test FAILED: target/ or vendor/ was not pruned" >&2
        exit 1
    fi
    echo "ok: self-test passed (detects new sites, exempts tests, prunes target/ and vendor/)"
    exit 0
}

if [ "${1:-}" = "--self-test" ]; then
    self_test
fi

allowlist=scripts/panic_allowlist.txt
found=$(scan .)
new=$(new_sites "$found" "$allowlist")
if [ -n "${new// /}" ]; then
    echo "error: new panic/unwrap/expect site(s) in non-test pipeline code:" >&2
    echo "$new" >&2
    echo >&2
    echo "Convert to a typed error (PipelineError taxonomy), or if the" >&2
    echo "site is provably unreachable from input, add the exact line to" >&2
    echo "$allowlist with a justification." >&2
    exit 1
fi
echo "ok: no new panic/unwrap/expect sites outside the allowlist"
