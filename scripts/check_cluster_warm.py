#!/usr/bin/env python3
"""Validates a warm `diffcode mine --cluster-cache-dir` re-cluster.

CI primes a cluster cache at a base project count, re-mines a grown
corpus against the same cache directory (warm), then mines the grown
corpus once more against a fresh directory (cold) and passes the two
grown-corpus stdout captures plus the warm run's `--metrics-json`
snapshot here. The gate enforces the incremental-clustering
acceptance criteria:

  1. byte-identical output: the warm re-cluster's stdout (dendrogram
     digest, cluster count, rule report) must equal the cold
     from-scratch run's exactly — cached distance cells must replay
     bit-identically;
  2. hit rate: cluster.cache.hit / (hit + miss + stale_version)
     >= MIN_HIT_RATE on the warm run, i.e. the warm run computed only
     the new-row/new-column distance cells;
  3. new-row-only work: misses must equal C(n,2) - hits' pair count
     complement, i.e. every cache miss is attributable to a change
     fingerprint that was not in the primed corpus (checked via
     cluster.pairs == hit + miss).

Gate pair choice: the seeded corpus generator dedups aggressively, so
kept (clustered) changes grow ~logarithmically in `--projects`. The
prime=1000 / grown=1200 pair yields 48 -> 49 kept changes: one new
row over a 48-change base, C(48,2)/C(49,2) = 95.9% hits, while still
exercising real growth (the 2000-change scale bound is covered by the
`cluster_cache` integration test at the matrix layer).

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_cluster_warm.py <cold_stdout> <warm_stdout> <warm_metrics.json>
"""

import json
import sys

MIN_HIT_RATE = 0.95


def check(cold_text, warm_text, snapshot):
    errors = []

    if cold_text != warm_text:
        cold_lines = cold_text.splitlines()
        warm_lines = warm_text.splitlines()
        detail = "line counts differ"
        for i, (c, w) in enumerate(zip(cold_lines, warm_lines), start=1):
            if c != w:
                detail = f"first divergence at line {i}: {c!r} != {w!r}"
                break
        errors.append(
            f"warm re-cluster output is not byte-identical to cold run ({detail})"
        )

    counters = snapshot.get("counters", {})
    hits = counters.get("cluster.cache.hit", 0)
    misses = counters.get("cluster.cache.miss", 0)
    stale = counters.get("cluster.cache.stale_version", 0)
    lookups = hits + misses + stale
    if lookups == 0:
        errors.append(
            "warm run recorded no cluster-cache lookups "
            "(was --cluster-cache-dir passed?)"
        )
    else:
        rate = hits / lookups
        if rate < MIN_HIT_RATE:
            errors.append(
                f"warm cluster hit rate {rate:.1%} below {MIN_HIT_RATE:.0%} "
                f"(hit={hits} miss={misses} stale_version={stale})"
            )

    pairs = counters.get("cluster.pairs", 0)
    if lookups and pairs and lookups != pairs:
        errors.append(
            f"cluster-cache lookups ({lookups}) != distance pairs ({pairs}): "
            "some cells bypassed the cache"
        )

    return errors, hits, misses, stale


def main():
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        cold_text = f.read()
    with open(sys.argv[2]) as f:
        warm_text = f.read()
    with open(sys.argv[3]) as f:
        snapshot = json.load(f)
    errors, hits, misses, stale = check(cold_text, warm_text, snapshot)
    for error in errors:
        print(f"CLUSTER GATE VIOLATED: {error}", file=sys.stderr)
    if not errors:
        lookups = hits + misses + stale
        print(
            f"cluster warm run OK: output byte-identical, "
            f"{hits}/{lookups} cell hits ({hits / lookups:.1%}), "
            f"{misses} miss(es), {stale} stale"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
