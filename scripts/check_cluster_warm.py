#!/usr/bin/env python3
"""Validates a warm `diffcode mine --cluster-cache-dir` re-cluster.

CI primes a cluster cache at a base project count, re-mines a grown
corpus against the same cache directory (warm), then mines the grown
corpus once more against a fresh directory (cold) and passes the two
grown-corpus stdout captures plus the warm run's `--metrics-json`
snapshot here. The gate enforces the incremental-clustering
acceptance criteria:

  1. byte-identical output: the warm re-cluster's stdout (dendrogram
     digest, cluster count, rule report) must equal the cold
     from-scratch run's exactly — cached distance cells must replay
     bit-identically;
  2. hit rate: cluster.cache.hit / (hit + miss + stale_version)
     >= cilib.MIN_HIT_RATE on the warm run, i.e. the warm run computed
     only the new-row/new-column distance cells;
  3. new-row-only work: misses must equal C(n,2) - hits' pair count
     complement, i.e. every cache miss is attributable to a change
     fingerprint that was not in the primed corpus (checked via
     cluster.pairs == hit + miss).

Gate pair choice: the seeded corpus generator dedups aggressively, so
kept (clustered) changes grow ~logarithmically in `--projects`. The
prime=1000 / grown=1200 pair yields 48 -> 49 kept changes: one new
row over a 48-change base, C(48,2)/C(49,2) = 95.9% hits, while still
exercising real growth (the 2000-change scale bound is covered by the
`cluster_cache` integration test at the matrix layer).

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_cluster_warm.py <cold_stdout> <warm_stdout> <warm_metrics.json>
"""

import sys

import cilib


def check(cold_text, warm_text, snapshot):
    errors = cilib.compare_texts(
        cold_text, warm_text, "warm re-cluster output (vs the cold run)"
    )

    counters = snapshot.get("counters", {})
    rate_errors, hits, misses, stale = cilib.hit_rate_errors(
        counters, "cluster.cache", "--cluster-cache-dir"
    )
    errors += rate_errors

    lookups = hits + misses + stale
    pairs = counters.get("cluster.pairs", 0)
    if lookups and pairs and lookups != pairs:
        errors.append(
            f"cluster-cache lookups ({lookups}) != distance pairs ({pairs}): "
            "some cells bypassed the cache"
        )

    return errors, hits, misses, stale


def main():
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    cold_text = cilib.read_text(sys.argv[1])
    warm_text = cilib.read_text(sys.argv[2])
    snapshot = cilib.read_json(sys.argv[3])
    errors, hits, misses, stale = check(cold_text, warm_text, snapshot)
    lookups = hits + misses + stale
    ok = (
        f"cluster warm run OK: output byte-identical, "
        f"{hits}/{lookups} cell hits ({hits / lookups:.1%}), "
        f"{misses} miss(es), {stale} stale"
        if lookups
        else ""
    )
    return cilib.report("CLUSTER", errors, ok)


if __name__ == "__main__":
    sys.exit(main())
