#!/usr/bin/env python3
"""End-to-end smoke gate for `diffcode serve`.

Boots the resident service on an ephemeral port, walks every endpoint,
and checks the acceptance criteria a unit test can't see from inside
the process:

  1. startup handshake: the first stdout line names the bound address;
  2. all five endpoints answer: /healthz, /readyz, /mine, /check,
     /explain/<fingerprint>, /metrics;
  3. verdict parity: mining the same change cold then warm returns the
     identical fingerprint/verdict/tuples (the warm one from the
     cache), i.e. a served verdict never depends on cache state;
  4. malformed input gets a clean 4xx, not a dropped connection;
  5. /status reports live accounting and a per-endpoint latency table
     with non-zero percentiles once traffic has flowed;
  6. /trace/capture returns a well-formed Chrome-trace array covering
     the recent requests, and rejects malformed queries with a 400;
  7. SIGTERM drains: exit code 0 and a final accounting line whose
     partition `accepted = completed + shed + failed` balances;
  8. the stderr access log is valid JSON-lines: exactly one
     serve.access record per accepted request, with the documented
     schema, whose outcome partition cross-checks against the drain
     accounting line; plus serve.boot and serve.drained lifecycle
     records.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_serve_smoke.py <path-to-diffcode-binary>
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import time

import cilib

STARTUP_TIMEOUT_S = 30
DRAIN_TIMEOUT_S = 30
DRAIN_RE = re.compile(
    r"drained: accepted (\d+) = completed (\d+) \+ shed (\d+) \+ failed (\d+); "
    r"flushed (\d+) cache entries"
)

FIGURE2_OLD = """class F2 { void m() throws Exception {
    javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES");
} }"""
FIGURE2_NEW = """class F2 { void m() throws Exception {
    javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES/GCM/NoPadding");
} }"""


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def request_json(port, method, path, body=None):
    status, raw = request(port, method, path, body)
    return status, json.loads(raw)


ACCESS_KEYS = (
    "request_id",
    "method",
    "path",
    "endpoint",
    "status",
    "latency_ns",
    "bytes",
    "outcome",
)


def check_access_log(stderr, accepted, completed, shed, failed):
    """Validates the structured stderr log against the drain accounting.

    With the default `--log-format json`, every stderr line is one JSON
    record. Access records (`event == "serve.access"`) must appear once
    per accepted request with the full schema, and their outcome
    partition must reproduce the drain line exactly:
    `ok + deadline == completed`, `shed == shed`, `panic == failed`.
    """
    errors = []
    outcomes = {"ok": 0, "deadline": 0, "shed": 0, "panic": 0}
    events = {}
    for line in stderr.splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"access log: non-JSON stderr line {line!r}: {e}")
            continue
        event = rec.get("event")
        events[event] = events.get(event, 0) + 1
        for key in ("ts_ms", "level", "event"):
            if key not in rec:
                errors.append(f"access log: record missing {key}: {line!r}")
        if event != "serve.access":
            continue
        for key in ACCESS_KEYS:
            if key not in rec:
                errors.append(f"access log: serve.access missing {key}: {line!r}")
        outcome = rec.get("outcome")
        if outcome in outcomes:
            outcomes[outcome] += 1
        else:
            errors.append(f"access log: unknown outcome {outcome!r}: {line!r}")
    n_access = events.get("serve.access", 0)
    if n_access != accepted:
        errors.append(
            f"access log: {n_access} serve.access record(s) for "
            f"{accepted} accepted request(s)"
        )
    if outcomes["ok"] + outcomes["deadline"] != completed:
        errors.append(
            f"access log: ok={outcomes['ok']} + deadline={outcomes['deadline']} "
            f"!= completed={completed}"
        )
    if outcomes["shed"] != shed:
        errors.append(f"access log: shed={outcomes['shed']} != drained shed={shed}")
    if outcomes["panic"] != failed:
        errors.append(f"access log: panic={outcomes['panic']} != drained failed={failed}")
    if events.get("serve.boot", 0) != 1:
        errors.append(f"access log: expected one serve.boot event, got {events.get('serve.boot', 0)}")
    if events.get("serve.drained", 0) != 1:
        errors.append(
            f"access log: expected one serve.drained event, got {events.get('serve.drained', 0)}"
        )
    if not errors:
        print(
            f"serve smoke: access log OK with {n_access} record(s) "
            f"(ok={outcomes['ok']} deadline={outcomes['deadline']} "
            f"shed={outcomes['shed']} panic={outcomes['panic']})"
        )
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    diffcode = sys.argv[1]
    errors = []

    with tempfile.TemporaryDirectory(prefix="serve_smoke_cache_") as cache_dir:
        proc = subprocess.Popen(
            [diffcode, "serve", "--addr", "127.0.0.1:0", "--cache-dir", cache_dir],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # 1. Startup handshake: first line names the bound port.
            line = proc.stdout.readline().strip()
            m = re.search(r"listening on http://127\.0\.0\.1:(\d+)$", line)
            if not m:
                raise SystemExit(f"bad startup handshake line: {line!r}")
            port = int(m.group(1))
            print(f"serve smoke: server up on port {port}")

            # 2. Liveness + readiness.
            status, body = request(port, "GET", "/healthz")
            if status != 200 or body.strip() != b"ok":
                errors.append(f"/healthz: expected 200 ok, got {status} {body!r}")
            status, body = request(port, "GET", "/readyz")
            if status != 200:
                errors.append(f"/readyz: expected 200 while serving, got {status}")

            # 3. Cold mine, then warm: identical verdict, warm from cache.
            change = {"old": FIGURE2_OLD, "new": FIGURE2_NEW}
            status, cold = request_json(port, "POST", "/mine", change)
            if status != 200:
                errors.append(f"/mine (cold): expected 200, got {status}")
            elif cold.get("verdict") != "mined":
                errors.append(f"/mine (cold): expected a mined verdict, got {cold}")
            status, warm = request_json(port, "POST", "/mine", change)
            if status != 200:
                errors.append(f"/mine (warm): expected 200, got {status}")
            else:
                if warm.get("cache") != "hit":
                    errors.append(f"/mine (warm): expected a cache hit, got {warm.get('cache')}")
                for key in ("fingerprint", "verdict", "tuples", "skip"):
                    if cold.get(key) != warm.get(key):
                        errors.append(
                            f"/mine parity: {key} differs cold vs warm: "
                            f"{cold.get(key)!r} != {warm.get(key)!r}"
                        )

            # 4. /explain journals both verdicts for the fingerprint.
            fingerprint = cold.get("fingerprint", "")
            status, explained = request_json(port, "GET", f"/explain/{fingerprint}")
            if status != 200 or explained.get("found", 0) < 2:
                errors.append(f"/explain/{fingerprint}: expected >=2 records, got {status} {explained}")
            status, _ = request(port, "GET", "/explain/ffffffffffffffff")
            if status != 404:
                errors.append(f"/explain (unknown): expected 404, got {status}")

            # 5. /check runs the rule checker.
            status, checked = request_json(
                port, "POST", "/check", {"source": FIGURE2_OLD}
            )
            if status != 200 or "report" not in checked:
                errors.append(f"/check: expected 200 with a report, got {status} {checked}")

            # 6. Malformed input: clean 4xx, not a dropped connection.
            status, _ = request(port, "POST", "/mine", {"old": 42})
            if status != 400:
                errors.append(f"/mine (malformed): expected 400, got {status}")

            # 7. /metrics exposes the serve counters in Prometheus text.
            status, metrics = request(port, "GET", "/metrics")
            text = metrics.decode()
            for needle in ("diffcode_serve_accepted", "diffcode_serve_mine_requests"):
                if needle not in text:
                    errors.append(f"/metrics: missing {needle}")
            if status != 200:
                errors.append(f"/metrics: expected 200, got {status}")

            # 8. /status: live introspection with per-endpoint
            # percentiles (non-zero after the traffic above).
            status, page = request_json(port, "GET", "/status")
            if status != 200:
                errors.append(f"/status: expected 200, got {status}")
            else:
                if page.get("draining") is not False:
                    errors.append(f"/status: draining should be false, got {page.get('draining')}")
                accepted_live = page.get("requests", {}).get("accepted", 0)
                if accepted_live < 8:
                    errors.append(
                        f"/status: requests.accepted={accepted_live} below the "
                        "traffic already sent"
                    )
                endpoints = page.get("endpoints", {})
                for endpoint in ("all", "mine", "healthz"):
                    row = endpoints.get(endpoint)
                    if not row:
                        errors.append(f"/status: endpoints.{endpoint} missing")
                        continue
                    for key in ("p50_ns", "p95_ns", "p99_ns"):
                        if not row.get(key, 0) > 0:
                            errors.append(
                                f"/status: endpoints.{endpoint}.{key} must be "
                                f"non-zero, got {row.get(key)}"
                            )

            # 9. /trace/capture: a Chrome-trace array of recent events.
            status, raw = request(port, "GET", "/trace/capture?events=64")
            if status != 200:
                errors.append(f"/trace/capture: expected 200, got {status}")
            else:
                try:
                    trace = json.loads(raw)
                except json.JSONDecodeError as e:
                    errors.append(f"/trace/capture: invalid JSON: {e}")
                    trace = []
                if not isinstance(trace, list):
                    errors.append(f"/trace/capture: expected a JSON array, got {type(trace).__name__}")
                else:
                    bad = [
                        e for e in trace
                        if not isinstance(e, dict)
                        or any(k not in e for k in ("name", "ph", "pid", "tid", "ts"))
                        or e["ph"] != "i"
                    ]
                    if bad:
                        errors.append(f"/trace/capture: malformed event(s): {bad[:3]}")
                    if not any(e.get("name") == "serve.request" for e in trace if isinstance(e, dict)):
                        errors.append("/trace/capture: no serve.request events captured")
            status, _ = request(port, "GET", "/trace/capture?events=nope")
            if status != 400:
                errors.append(f"/trace/capture (malformed query): expected 400, got {status}")

            # 10. SIGTERM: graceful drain, exit 0, balanced accounting.
            proc.send_signal(signal.SIGTERM)
            try:
                stdout, stderr = proc.communicate(timeout=DRAIN_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("server did not drain within the deadline after SIGTERM")
            if proc.returncode != 0:
                errors.append(
                    f"exit code after SIGTERM: expected 0, got {proc.returncode}; "
                    f"stderr: {stderr.strip()!r}"
                )
            m = DRAIN_RE.search(stdout)
            if not m:
                errors.append(f"missing drain accounting line in stdout: {stdout!r}")
            else:
                accepted, completed, shed, failed, flushed = map(int, m.groups())
                if accepted != completed + shed + failed:
                    errors.append(
                        f"accounting partition violated: {accepted} != "
                        f"{completed} + {shed} + {failed}"
                    )
                if failed != 0:
                    errors.append(f"smoke traffic must not fail requests: failed={failed}")
                if flushed < 1:
                    errors.append("the mined verdict was never flushed to the cache log")
                print(
                    f"serve smoke: drained with accepted={accepted} "
                    f"completed={completed} shed={shed} failed={failed} flushed={flushed}"
                )
                errors.extend(check_access_log(stderr, accepted, completed, shed, failed))
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    return cilib.report(
        "SERVE",
        errors,
        "ok: serve smoke passed (endpoints, warm-cache parity, /status "
        "percentiles, trace capture, structured access log, SIGTERM drain)",
    )


if __name__ == "__main__":
    sys.exit(main())
