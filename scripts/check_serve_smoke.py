#!/usr/bin/env python3
"""End-to-end smoke gate for `diffcode serve`.

Boots the resident service on an ephemeral port, walks every endpoint,
and checks the acceptance criteria a unit test can't see from inside
the process:

  1. startup handshake: the first stdout line names the bound address;
  2. all five endpoints answer: /healthz, /readyz, /mine, /check,
     /explain/<fingerprint>, /metrics;
  3. verdict parity: mining the same change cold then warm returns the
     identical fingerprint/verdict/tuples (the warm one from the
     cache), i.e. a served verdict never depends on cache state;
  4. malformed input gets a clean 4xx, not a dropped connection;
  5. SIGTERM drains: exit code 0 and a final accounting line whose
     partition `accepted = completed + shed + failed` balances.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_serve_smoke.py <path-to-diffcode-binary>
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import tempfile
import time

import cilib

STARTUP_TIMEOUT_S = 30
DRAIN_TIMEOUT_S = 30
DRAIN_RE = re.compile(
    r"drained: accepted (\d+) = completed (\d+) \+ shed (\d+) \+ failed (\d+); "
    r"flushed (\d+) cache entries"
)

FIGURE2_OLD = """class F2 { void m() throws Exception {
    javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES");
} }"""
FIGURE2_NEW = """class F2 { void m() throws Exception {
    javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES/GCM/NoPadding");
} }"""


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def request_json(port, method, path, body=None):
    status, raw = request(port, method, path, body)
    return status, json.loads(raw)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    diffcode = sys.argv[1]
    errors = []

    with tempfile.TemporaryDirectory(prefix="serve_smoke_cache_") as cache_dir:
        proc = subprocess.Popen(
            [diffcode, "serve", "--addr", "127.0.0.1:0", "--cache-dir", cache_dir],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # 1. Startup handshake: first line names the bound port.
            line = proc.stdout.readline().strip()
            m = re.search(r"listening on http://127\.0\.0\.1:(\d+)$", line)
            if not m:
                raise SystemExit(f"bad startup handshake line: {line!r}")
            port = int(m.group(1))
            print(f"serve smoke: server up on port {port}")

            # 2. Liveness + readiness.
            status, body = request(port, "GET", "/healthz")
            if status != 200 or body.strip() != b"ok":
                errors.append(f"/healthz: expected 200 ok, got {status} {body!r}")
            status, body = request(port, "GET", "/readyz")
            if status != 200:
                errors.append(f"/readyz: expected 200 while serving, got {status}")

            # 3. Cold mine, then warm: identical verdict, warm from cache.
            change = {"old": FIGURE2_OLD, "new": FIGURE2_NEW}
            status, cold = request_json(port, "POST", "/mine", change)
            if status != 200:
                errors.append(f"/mine (cold): expected 200, got {status}")
            elif cold.get("verdict") != "mined":
                errors.append(f"/mine (cold): expected a mined verdict, got {cold}")
            status, warm = request_json(port, "POST", "/mine", change)
            if status != 200:
                errors.append(f"/mine (warm): expected 200, got {status}")
            else:
                if warm.get("cache") != "hit":
                    errors.append(f"/mine (warm): expected a cache hit, got {warm.get('cache')}")
                for key in ("fingerprint", "verdict", "tuples", "skip"):
                    if cold.get(key) != warm.get(key):
                        errors.append(
                            f"/mine parity: {key} differs cold vs warm: "
                            f"{cold.get(key)!r} != {warm.get(key)!r}"
                        )

            # 4. /explain journals both verdicts for the fingerprint.
            fingerprint = cold.get("fingerprint", "")
            status, explained = request_json(port, "GET", f"/explain/{fingerprint}")
            if status != 200 or explained.get("found", 0) < 2:
                errors.append(f"/explain/{fingerprint}: expected >=2 records, got {status} {explained}")
            status, _ = request(port, "GET", "/explain/ffffffffffffffff")
            if status != 404:
                errors.append(f"/explain (unknown): expected 404, got {status}")

            # 5. /check runs the rule checker.
            status, checked = request_json(
                port, "POST", "/check", {"source": FIGURE2_OLD}
            )
            if status != 200 or "report" not in checked:
                errors.append(f"/check: expected 200 with a report, got {status} {checked}")

            # 6. Malformed input: clean 4xx, not a dropped connection.
            status, _ = request(port, "POST", "/mine", {"old": 42})
            if status != 400:
                errors.append(f"/mine (malformed): expected 400, got {status}")

            # 7. /metrics exposes the serve counters in Prometheus text.
            status, metrics = request(port, "GET", "/metrics")
            text = metrics.decode()
            for needle in ("diffcode_serve_accepted", "diffcode_serve_mine_requests"):
                if needle not in text:
                    errors.append(f"/metrics: missing {needle}")
            if status != 200:
                errors.append(f"/metrics: expected 200, got {status}")

            # 8. SIGTERM: graceful drain, exit 0, balanced accounting.
            proc.send_signal(signal.SIGTERM)
            try:
                stdout, stderr = proc.communicate(timeout=DRAIN_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("server did not drain within the deadline after SIGTERM")
            if proc.returncode != 0:
                errors.append(
                    f"exit code after SIGTERM: expected 0, got {proc.returncode}; "
                    f"stderr: {stderr.strip()!r}"
                )
            m = DRAIN_RE.search(stdout)
            if not m:
                errors.append(f"missing drain accounting line in stdout: {stdout!r}")
            else:
                accepted, completed, shed, failed, flushed = map(int, m.groups())
                if accepted != completed + shed + failed:
                    errors.append(
                        f"accounting partition violated: {accepted} != "
                        f"{completed} + {shed} + {failed}"
                    )
                if failed != 0:
                    errors.append(f"smoke traffic must not fail requests: failed={failed}")
                if flushed < 1:
                    errors.append("the mined verdict was never flushed to the cache log")
                print(
                    f"serve smoke: drained with accepted={accepted} "
                    f"completed={completed} shed={shed} failed={failed} flushed={flushed}"
                )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    return cilib.report(
        "SERVE",
        errors,
        "ok: serve smoke passed (endpoints, warm-cache parity, SIGTERM drain)",
    )


if __name__ == "__main__":
    sys.exit(main())
