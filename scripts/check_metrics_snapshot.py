#!/usr/bin/env python3
"""Validates a `diffcode metrics --metrics-json` snapshot.

Checks the invariants the pipeline promises (DESIGN.md, "Observability"):

  1. schema: version 2 with counters/gauges/spans sections;
  2. partition: mine.code_changes == mine.mined + mine.skipped, and
     mine.skipped equals the sum of its per-kind breakdown;
  3. funnel: filter.total >= after_fsame >= after_fadd >= after_frem
     >= after_fdup (Figure 6 only ever narrows);
  4. span sanity: count >= 1 implies min_ns <= max_ns <= sum_ns;
  5. histogram sanity (v2, via cilib.histogram_errors): per span, the
     p50..p999 quantiles are non-decreasing bucket edges, the sparse
     `buckets` cumulative distribution is strictly increasing in both
     edge and count, its final cumulative count equals the span count,
     and max_ns lies within the last hit bucket.

With a second argument, also validates a `diffcode mine --trace-out`
Chrome trace-event export:

  6. the trace is a well-formed JSON array of objects with name/ph/
     pid/tid/ts fields and ph in {B, E, i};
  7. per (pid, tid) lane, timestamps never decrease in array order;
  8. per lane, B/E events nest: every B has a matching E (same name,
     LIFO order) and no E arrives without an open B.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_metrics_snapshot.py <snapshot.json> [trace.json]
"""

import json
import sys

import cilib

FUNNEL = [
    "filter.total",
    "filter.after_fsame",
    "filter.after_fadd",
    "filter.after_frem",
    "filter.after_fdup",
]

SKIP_KINDS = ["lex", "parse", "analysis-budget", "dag-budget", "panic"]


def check(snapshot):
    errors = []

    if snapshot.get("version") != 2:
        errors.append(f"unsupported snapshot version: {snapshot.get('version')!r}")
    counters = snapshot.get("counters", {})
    spans = snapshot.get("spans", {})
    for section in ("counters", "gauges", "spans"):
        if not isinstance(snapshot.get(section), dict):
            errors.append(f"missing or malformed section: {section}")

    # Partition: every processed change is either mined or skipped.
    processed = counters.get("mine.code_changes")
    mined = counters.get("mine.mined")
    skipped = counters.get("mine.skipped")
    if None in (processed, mined, skipped):
        errors.append("missing mine.{code_changes,mined,skipped} counters")
    elif processed != mined + skipped:
        errors.append(
            f"partition violated: mine.code_changes={processed} != "
            f"mine.mined={mined} + mine.skipped={skipped}"
        )
    if skipped is not None:
        by_kind = sum(counters.get(f"mine.skipped.{kind}", 0) for kind in SKIP_KINDS)
        if by_kind != skipped:
            errors.append(
                f"quarantine breakdown sums to {by_kind}, "
                f"but mine.skipped={skipped}"
            )

    # Funnel: each filter stage passes a subset of its input.
    missing = [stage for stage in FUNNEL if stage not in counters]
    if missing:
        errors.append(f"missing funnel counters: {', '.join(missing)}")
    else:
        for above, below in zip(FUNNEL, FUNNEL[1:]):
            if counters[above] < counters[below]:
                errors.append(
                    f"funnel not monotone: {above}={counters[above]} < "
                    f"{below}={counters[below]}"
                )

    # Span aggregates must be internally consistent, and the v2
    # histogram fields must describe exactly the same samples.
    for name, span in sorted(spans.items()):
        errors.extend(cilib.histogram_errors(name, span))
        count = span.get("count", 0)
        if count == 0:
            continue
        lo, hi, total = span.get("min_ns", 0), span.get("max_ns", 0), span.get("sum_ns", 0)
        if not (lo <= hi <= total):
            errors.append(
                f"span {name}: expected min <= max <= sum, "
                f"got min={lo} max={hi} sum={total}"
            )
        if hi * count < total:
            errors.append(f"span {name}: sum={total} exceeds count*max={hi * count}")

    return errors


def check_trace(events):
    errors = []
    if not isinstance(events, list):
        return [f"trace is not a JSON array: {type(events).__name__}"]
    stacks = {}  # (pid, tid) -> list of open B names
    last_ts = {}  # (pid, tid) -> last timestamp seen
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"trace[{i}]: not an object")
            continue
        missing = [key for key in ("name", "ph", "pid", "tid", "ts") if key not in event]
        if missing:
            errors.append(f"trace[{i}]: missing fields: {', '.join(missing)}")
            continue
        ph = event["ph"]
        if ph not in ("B", "E", "i"):
            errors.append(f"trace[{i}]: unknown phase {ph!r}")
            continue
        lane = (event["pid"], event["tid"])
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            errors.append(f"trace[{i}]: non-numeric ts {ts!r}")
            continue
        if lane in last_ts and ts < last_ts[lane]:
            errors.append(
                f"trace[{i}]: ts went backwards in lane pid={lane[0]} "
                f"tid={lane[1]}: {last_ts[lane]} -> {ts}"
            )
        last_ts[lane] = ts
        stack = stacks.setdefault(lane, [])
        if ph == "B":
            stack.append(event["name"])
        elif ph == "E":
            if not stack:
                errors.append(
                    f"trace[{i}]: E {event['name']!r} with no open B "
                    f"in lane pid={lane[0]} tid={lane[1]}"
                )
            elif stack[-1] != event["name"]:
                errors.append(
                    f"trace[{i}]: E {event['name']!r} does not match "
                    f"open B {stack[-1]!r} in lane pid={lane[0]} tid={lane[1]}"
                )
                stack.pop()
            else:
                stack.pop()
    for lane, stack in sorted(stacks.items()):
        if stack:
            errors.append(
                f"lane pid={lane[0]} tid={lane[1]}: {len(stack)} B event(s) "
                f"never closed: {', '.join(stack)}"
            )
    return errors


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    snapshot = cilib.read_json(sys.argv[1])
    errors = check(snapshot)
    if len(sys.argv) == 3:
        try:
            trace = cilib.read_json(sys.argv[2])
        except json.JSONDecodeError as e:
            trace, trace_errors = None, [f"trace is not well-formed JSON: {e}"]
        else:
            trace_errors = check_trace(trace)
        errors.extend(trace_errors)
        if not trace_errors:
            lanes = len({(e["pid"], e["tid"]) for e in trace})
            print(f"trace OK: {len(trace)} event(s) across {lanes} lane(s)")
    counters = snapshot.get("counters", {})
    ok = (
        "snapshot OK: "
        f"{counters.get('mine.code_changes', 0)} processed = "
        f"{counters.get('mine.mined', 0)} mined + "
        f"{counters.get('mine.skipped', 0)} skipped; funnel "
        + " >= ".join(str(counters.get(stage, 0)) for stage in FUNNEL)
    )
    return cilib.report("INVARIANT", errors, ok)


if __name__ == "__main__":
    sys.exit(main())
