#!/usr/bin/env python3
"""Validates a `diffcode metrics --metrics-json` snapshot.

Checks the invariants the pipeline promises (DESIGN.md, "Observability"):

  1. schema: version 1 with counters/gauges/spans sections;
  2. partition: mine.code_changes == mine.mined + mine.skipped, and
     mine.skipped equals the sum of its per-kind breakdown;
  3. funnel: filter.total >= after_fsame >= after_fadd >= after_frem
     >= after_fdup (Figure 6 only ever narrows);
  4. span sanity: count >= 1 implies min_ns <= max_ns <= sum_ns.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_metrics_snapshot.py <snapshot.json>
"""

import json
import sys

FUNNEL = [
    "filter.total",
    "filter.after_fsame",
    "filter.after_fadd",
    "filter.after_frem",
    "filter.after_fdup",
]

SKIP_KINDS = ["lex", "parse", "analysis-budget", "dag-budget", "panic"]


def check(snapshot):
    errors = []

    if snapshot.get("version") != 1:
        errors.append(f"unsupported snapshot version: {snapshot.get('version')!r}")
    counters = snapshot.get("counters", {})
    spans = snapshot.get("spans", {})
    for section in ("counters", "gauges", "spans"):
        if not isinstance(snapshot.get(section), dict):
            errors.append(f"missing or malformed section: {section}")

    # Partition: every processed change is either mined or skipped.
    processed = counters.get("mine.code_changes")
    mined = counters.get("mine.mined")
    skipped = counters.get("mine.skipped")
    if None in (processed, mined, skipped):
        errors.append("missing mine.{code_changes,mined,skipped} counters")
    elif processed != mined + skipped:
        errors.append(
            f"partition violated: mine.code_changes={processed} != "
            f"mine.mined={mined} + mine.skipped={skipped}"
        )
    if skipped is not None:
        by_kind = sum(counters.get(f"mine.skipped.{kind}", 0) for kind in SKIP_KINDS)
        if by_kind != skipped:
            errors.append(
                f"quarantine breakdown sums to {by_kind}, "
                f"but mine.skipped={skipped}"
            )

    # Funnel: each filter stage passes a subset of its input.
    missing = [stage for stage in FUNNEL if stage not in counters]
    if missing:
        errors.append(f"missing funnel counters: {', '.join(missing)}")
    else:
        for above, below in zip(FUNNEL, FUNNEL[1:]):
            if counters[above] < counters[below]:
                errors.append(
                    f"funnel not monotone: {above}={counters[above]} < "
                    f"{below}={counters[below]}"
                )

    # Span aggregates must be internally consistent.
    for name, span in sorted(spans.items()):
        count = span.get("count", 0)
        if count == 0:
            continue
        lo, hi, total = span.get("min_ns", 0), span.get("max_ns", 0), span.get("sum_ns", 0)
        if not (lo <= hi <= total):
            errors.append(
                f"span {name}: expected min <= max <= sum, "
                f"got min={lo} max={hi} sum={total}"
            )
        if hi * count < total:
            errors.append(f"span {name}: sum={total} exceeds count*max={hi * count}")

    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        snapshot = json.load(f)
    errors = check(snapshot)
    for error in errors:
        print(f"INVARIANT VIOLATED: {error}", file=sys.stderr)
    if not errors:
        counters = snapshot["counters"]
        print(
            "snapshot OK: "
            f"{counters.get('mine.code_changes', 0)} processed = "
            f"{counters.get('mine.mined', 0)} mined + "
            f"{counters.get('mine.skipped', 0)} skipped; funnel "
            + " >= ".join(str(counters.get(stage, 0)) for stage in FUNNEL)
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
