#!/usr/bin/env python3
"""Validates a cold-vs-warm `diffcode mine --cache-dir` pair.

CI runs `diffcode mine` twice against the same cache directory and
passes both stdout captures plus the warm run's `--metrics-json`
snapshot here. The gate enforces the cache's two acceptance criteria:

  1. byte-identical output: the warm run's stdout must equal the cold
     run's exactly (the report is deterministic by construction — any
     divergence means a cached outcome replayed differently);
  2. hit rate: cache.hit / (cache.hit + cache.miss +
     cache.stale_version) >= cilib.MIN_HIT_RATE on the warm run, i.e.
     at least 95% of per-change analysis work was skipped.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_cache_warm.py <cold_stdout> <warm_stdout> <warm_metrics.json>
"""

import sys

import cilib


def check(cold_text, warm_text, snapshot):
    errors = cilib.compare_texts(
        cold_text, warm_text, "warm run output (vs the cold run)"
    )

    counters = snapshot.get("counters", {})
    rate_errors, hits, misses, stale = cilib.hit_rate_errors(
        counters, "cache", "--cache-dir"
    )
    errors += rate_errors

    lookups = hits + misses + stale
    processed = counters.get("mine.code_changes", 0)
    if lookups and processed and lookups != processed:
        errors.append(
            f"cache lookups ({lookups}) != processed changes ({processed}): "
            "some changes bypassed the cache"
        )

    return errors, hits, misses, stale


def main():
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    cold_text = cilib.read_text(sys.argv[1])
    warm_text = cilib.read_text(sys.argv[2])
    snapshot = cilib.read_json(sys.argv[3])
    errors, hits, misses, stale = check(cold_text, warm_text, snapshot)
    lookups = hits + misses + stale
    ok = (
        f"cache warm run OK: output byte-identical, "
        f"{hits}/{lookups} hits ({hits / lookups:.1%}), "
        f"{misses} miss(es), {stale} stale"
        if lookups
        else ""
    )
    return cilib.report("CACHE", errors, ok)


if __name__ == "__main__":
    sys.exit(main())
