#!/usr/bin/env python3
"""Validates a cold-vs-warm `diffcode mine --cache-dir` pair.

CI runs `diffcode mine` twice against the same cache directory and
passes both stdout captures plus the warm run's `--metrics-json`
snapshot here. The gate enforces the cache's two acceptance criteria:

  1. byte-identical output: the warm run's stdout must equal the cold
     run's exactly (the report is deterministic by construction — any
     divergence means a cached outcome replayed differently);
  2. hit rate: cache.hit / (cache.hit + cache.miss +
     cache.stale_version) >= MIN_HIT_RATE on the warm run, i.e. at
     least 95% of per-change analysis work was skipped.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_cache_warm.py <cold_stdout> <warm_stdout> <warm_metrics.json>
"""

import json
import sys

MIN_HIT_RATE = 0.95


def check(cold_text, warm_text, snapshot):
    errors = []

    if cold_text != warm_text:
        cold_lines = cold_text.splitlines()
        warm_lines = warm_text.splitlines()
        detail = "line counts differ"
        for i, (c, w) in enumerate(zip(cold_lines, warm_lines), start=1):
            if c != w:
                detail = f"first divergence at line {i}: {c!r} != {w!r}"
                break
        errors.append(f"warm run output is not byte-identical to cold run ({detail})")

    counters = snapshot.get("counters", {})
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    stale = counters.get("cache.stale_version", 0)
    lookups = hits + misses + stale
    if lookups == 0:
        errors.append("warm run recorded no cache lookups (was --cache-dir passed?)")
    else:
        rate = hits / lookups
        if rate < MIN_HIT_RATE:
            errors.append(
                f"warm hit rate {rate:.1%} below {MIN_HIT_RATE:.0%} "
                f"(hit={hits} miss={misses} stale_version={stale})"
            )

    processed = counters.get("mine.code_changes", 0)
    if lookups and processed and lookups != processed:
        errors.append(
            f"cache lookups ({lookups}) != processed changes ({processed}): "
            "some changes bypassed the cache"
        )

    return errors, hits, misses, stale


def main():
    if len(sys.argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        cold_text = f.read()
    with open(sys.argv[2]) as f:
        warm_text = f.read()
    with open(sys.argv[3]) as f:
        snapshot = json.load(f)
    errors, hits, misses, stale = check(cold_text, warm_text, snapshot)
    for error in errors:
        print(f"CACHE GATE VIOLATED: {error}", file=sys.stderr)
    if not errors:
        lookups = hits + misses + stale
        print(
            f"cache warm run OK: output byte-identical, "
            f"{hits}/{lookups} hits ({hits / lookups:.1%}), "
            f"{misses} miss(es), {stale} stale"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
