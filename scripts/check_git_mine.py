#!/usr/bin/env python3
"""Validates the deterministic git-fixture mine (`diffcode mine --repo`).

CI builds the fixture repository with scripts/make_fixture_repo.sh
(fixed author/committer identities and dates -> reproducible hashes),
mines it twice against one cache directory, and passes the captures
here. The gate enforces the real-git ingestion acceptance criteria:

  1. golden stdout: the cold run's stdout must be byte-identical to
     the committed golden (tests/golden/git_mine.txt) — commit
     enumeration, rename following, quarantine accounting, and the
     result digest are all pinned;
  2. warm determinism: the warm run's stdout must equal the cold
     run's byte-for-byte;
  3. warm hit rate: cache.hit / lookups >= cilib.MIN_HIT_RATE on the
     warm run — re-mining an unchanged repository replays cached
     outcomes instead of re-analyzing;
  4. rename-aware extraction: the walk followed at least one rename
     to its pre-image (gitsrc.renames_followed >= 1) and extracted
     pre/post pairs (gitsrc.pairs >= 1);
  5. budget quarantine: the oversized fixture blob degraded into a
     typed skip (gitsrc.skipped.oversized >= 1) instead of aborting.

Exit code 0 on success, 1 with a message per violation otherwise.
Usage: check_git_mine.py <golden> <cold_stdout> <warm_stdout> <warm_metrics.json>
"""

import sys

import cilib


def check(golden_text, cold_text, warm_text, snapshot):
    errors = cilib.compare_texts(
        golden_text, cold_text, "cold --repo mine stdout (vs the committed golden)"
    )
    errors += cilib.compare_texts(
        cold_text, warm_text, "warm --repo mine stdout (vs the cold run)"
    )

    counters = snapshot.get("counters", {})
    rate_errors, hits, misses, stale = cilib.hit_rate_errors(
        counters, "cache", "--cache-dir"
    )
    errors += rate_errors

    if counters.get("gitsrc.pairs", 0) < 1:
        errors.append("walk extracted no pre/post pairs (gitsrc.pairs == 0)")
    if counters.get("gitsrc.renames_followed", 0) < 1:
        errors.append(
            "walk followed no renames (gitsrc.renames_followed == 0); "
            "the fixture contains a rename+edit commit"
        )
    if counters.get("gitsrc.skipped.oversized", 0) < 1:
        errors.append(
            "the oversized fixture blob was not quarantined "
            "(gitsrc.skipped.oversized == 0)"
        )
    walked = counters.get("gitsrc.commits_walked", 0)
    if walked < 25:
        errors.append(f"walk covered only {walked} commit(s); fixture has ~30")

    return errors, hits, misses, stale


def main():
    if len(sys.argv) != 5:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    golden_text = cilib.read_text(sys.argv[1])
    cold_text = cilib.read_text(sys.argv[2])
    warm_text = cilib.read_text(sys.argv[3])
    snapshot = cilib.read_json(sys.argv[4])
    errors, hits, misses, stale = check(golden_text, cold_text, warm_text, snapshot)
    lookups = hits + misses + stale
    ok = (
        f"git fixture mine OK: stdout matches golden, warm run byte-identical, "
        f"{hits}/{lookups} hits ({hits / lookups:.1%}), "
        f"{misses} miss(es), {stale} stale"
        if lookups
        else ""
    )
    return cilib.report("GITSRC", errors, ok)


if __name__ == "__main__":
    sys.exit(main())
