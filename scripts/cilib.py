"""Shared helpers for the CI gate scripts (check_*.py).

Every gate follows the same shape: load captured stdout/JSON artifacts,
accumulate violation messages, print them uniformly, exit non-zero when
any fired. The byte-compare and cache-hit-rate checks were copied
between gates before this module existed; they live here now so all
gates fail with the same diff context.
"""

import json

# Minimum warm-run cache hit rate every warm gate enforces.
MIN_HIT_RATE = 0.95

# Lines of surrounding context shown around the first divergence.
CONTEXT_LINES = 3


def read_text(path):
    with open(path) as f:
        return f.read()


def read_json(path):
    with open(path) as f:
        return json.load(f)


def first_divergence(expected_text, actual_text):
    """Returns a human-readable description of where two captures first
    differ, with CONTEXT_LINES of surrounding context from both sides,
    or None when the texts are byte-identical."""
    if expected_text == actual_text:
        return None
    expected = expected_text.splitlines()
    actual = actual_text.splitlines()
    line = None
    for i, (e, a) in enumerate(zip(expected, actual), start=1):
        if e != a:
            line = i
            break
    if line is None:
        # One capture is a strict prefix of the other.
        line = min(len(expected), len(actual)) + 1
    lo = max(0, line - 1 - CONTEXT_LINES)
    hi = line + CONTEXT_LINES

    def excerpt(lines, label):
        out = [f"  {label}:"]
        for n, text in enumerate(lines[lo:hi], start=lo + 1):
            marker = ">" if n == line else " "
            out.append(f"  {marker} {n:4} | {text}")
        if not lines[lo:hi]:
            out.append("    (no lines here)")
        return out

    detail = [
        f"first divergence at line {line} "
        f"(expected {len(expected)} line(s), got {len(actual)})"
    ]
    detail += excerpt(expected, "expected")
    detail += excerpt(actual, "actual")
    return "\n".join(detail)


def compare_texts(expected_text, actual_text, what):
    """One error message (with failing-diff context) when two captures
    are not byte-identical, else an empty list."""
    detail = first_divergence(expected_text, actual_text)
    if detail is None:
        return []
    return [f"{what} is not byte-identical\n{detail}"]


def cache_counters(counters, prefix):
    """(hits, misses, stale, lookups) for a `<prefix>.hit`-style
    counter family."""
    hits = counters.get(f"{prefix}.hit", 0)
    misses = counters.get(f"{prefix}.miss", 0)
    stale = counters.get(f"{prefix}.stale_version", 0)
    return hits, misses, stale, hits + misses + stale


def hit_rate_errors(counters, prefix, enabling_flag, min_rate=MIN_HIT_RATE):
    """The standard warm-run hit-rate check over a `<prefix>.*` counter
    family. Returns (errors, hits, misses, stale)."""
    hits, misses, stale, lookups = cache_counters(counters, prefix)
    errors = []
    if lookups == 0:
        errors.append(
            f"warm run recorded no {prefix} lookups (was {enabling_flag} passed?)"
        )
    else:
        rate = hits / lookups
        if rate < min_rate:
            errors.append(
                f"warm {prefix} hit rate {rate:.1%} below {min_rate:.0%} "
                f"(hit={hits} miss={misses} stale_version={stale})"
            )
    return errors, hits, misses, stale


# The v2 snapshot's quantile keys, in the order they must not decrease.
SPAN_QUANTILES = ["p50_ns", "p90_ns", "p95_ns", "p99_ns", "p999_ns"]


def histogram_errors(name, span):
    """Validates the version-2 histogram fields of one snapshot span.

    Checks: quantile keys present and non-decreasing; `buckets` is a
    sparse cumulative distribution of [upper_edge_ns, samples_le_edge]
    pairs with strictly increasing edges and strictly increasing
    cumulative counts (only hit buckets appear); the last cumulative
    count equals the span's `count`; `max_ns` lies at or below the last
    edge; every reported quantile is one of the bucket edges (quantiles
    are inclusive upper edges of hit buckets, never interpolated).
    """
    errors = []
    count = span.get("count", 0)
    missing = [key for key in SPAN_QUANTILES + ["buckets"] if key not in span]
    if missing:
        return [f"span {name}: missing v2 histogram fields: {', '.join(missing)}"]
    quantiles = [span[key] for key in SPAN_QUANTILES]
    if any(a > b for a, b in zip(quantiles, quantiles[1:])):
        errors.append(f"span {name}: quantiles not monotone: {quantiles}")
    buckets = span["buckets"]
    if not isinstance(buckets, list) or any(
        not (isinstance(pair, list) and len(pair) == 2) for pair in buckets
    ):
        errors.append(f"span {name}: buckets is not a list of [edge, cum] pairs")
        return errors
    edges = [pair[0] for pair in buckets]
    cums = [pair[1] for pair in buckets]
    if any(a >= b for a, b in zip(edges, edges[1:])):
        errors.append(f"span {name}: bucket edges not strictly increasing: {edges}")
    if any(a >= b for a, b in zip(cums, cums[1:])):
        errors.append(
            f"span {name}: cumulative counts not strictly increasing: {cums}"
        )
    if count == 0:
        if buckets:
            errors.append(f"span {name}: count=0 but buckets non-empty: {buckets}")
        return errors
    if not buckets:
        errors.append(f"span {name}: count={count} but no buckets recorded")
        return errors
    if cums[-1] != count:
        errors.append(
            f"span {name}: last cumulative count {cums[-1]} != count {count}"
        )
    if span.get("max_ns", 0) > edges[-1]:
        errors.append(
            f"span {name}: max_ns={span.get('max_ns')} above the last "
            f"bucket edge {edges[-1]}"
        )
    edge_set = set(edges)
    stray = [q for q in quantiles if q not in edge_set]
    if stray:
        errors.append(
            f"span {name}: quantile(s) {stray} are not bucket edges "
            f"(quantiles must be inclusive upper edges of hit buckets)"
        )
    return errors


def report(gate, errors, ok_message, out=None):
    """Prints violations (or the success line) uniformly and returns
    the process exit code."""
    import sys

    out = out or sys.stderr
    for error in errors:
        print(f"{gate} GATE VIOLATED: {error}", file=out)
    if not errors:
        print(ok_message)
    return 1 if errors else 0
