//! Offline stand-in for the `proptest` crate (no registry access in
//! the build environment). Provides deterministic randomized property
//! testing with the strategy combinators this workspace uses:
//! ranges, `Just`, `any`, regex-lite string patterns, tuples,
//! `prop_map`, `prop_oneof!`, collections, `option::of`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (failures report the full
//! input instead), and string patterns support the regex subset used
//! here (literals, escapes, character classes with ranges, and `{m,n}`
//! repetition).

#![warn(missing_docs)]

pub use rand;

/// Strategy trait and primitive strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (backs `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over the given alternatives.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    /// Full-range strategy for primitives (see [`any`]).
    #[derive(Debug, Default, Clone)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy for `T` (full range for ints, fair bool).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.random()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

/// Regex-lite string generation for `&str` strategies.
pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// One pattern element: a set of candidate chars and a repetition
    /// range.
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![*chars
                        .get(i - 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        atoms
    }

    /// Parses a `[...]` class starting after the `[`; returns the
    /// candidate set and the index after the closing `]`.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // A range `a-z` needs an unescaped `-` with both neighbours
            // inside the class.
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']' {
                let hi = if chars[i + 2] == '\\' {
                    i += 1;
                    chars[i + 2]
                } else {
                    chars[i + 2]
                };
                assert!(c <= hi, "inverted range in pattern {pattern:?}");
                set.extend(c..=hi);
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unclosed [ in pattern {pattern:?}");
        (set, i + 1)
    }

    /// Generates one string matching the regex-lite `pattern`.
    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let count = rng.random_range(atom.min..=atom.max);
            for _ in 0..count {
                let idx = rng.random_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// The element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive, matching upstream's `Range<usize>` conversion.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            rng.random_range(self.min..self.max)
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates may make the set
    /// smaller than the sampled target, matching upstream semantics.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of `element` values with up to `size`
    /// elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates shrink the result, never
            // loop forever.
            for _ in 0..target * 2 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Test execution: configuration, failure type, and the case loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps single-threaded debug
            // runs fast. Override with PROPTEST_CASES.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion rejected the case.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// The result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `body` for each case with a deterministic per-case RNG.
    /// `body` returns the rendered inputs (for the failure report) and
    /// the case result. Panics on the first failing case.
    pub fn run(
        config: &ProptestConfig,
        test_name: &str,
        mut body: impl FnMut(&mut StdRng) -> (String, TestCaseResult),
    ) {
        for case in 0..config.cases {
            // Seed from the test name and case index so every test has
            // an independent, reproducible stream.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes().chain(case.to_le_bytes()) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = StdRng::seed_from_u64(hash);
            let (inputs, result) = body(&mut rng);
            if let Err(err) = result {
                panic!(
                    "proptest '{test_name}' failed at case {case}/{}: {err}\ninputs:\n{inputs}",
                    config.cases
                );
            }
        }
    }
}

/// The common imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                    let inputs = String::new()
                        $(+ &format!("  {} = {:?}\n", stringify!($arg), &$arg))*;
                    let result: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    (inputs, result)
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Rejects the case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Rejects the case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

/// Uniform choice between alternative strategies with the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let s = crate::string::generate("arg[1-3]:[A-Za-z/\\-0-9]{1,14}", &mut rng);
            assert!(s.starts_with("arg"), "{s}");
            let digit = s.chars().nth(3).unwrap();
            assert!(('1'..='3').contains(&digit), "{s}");
            assert_eq!(s.chars().nth(4), Some(':'));
            let tail = &s[5..];
            assert!((1..=14).contains(&tail.chars().count()), "{s}");
            assert!(
                tail.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '/' || c == '-'),
                "{s}"
            );
        }
        let empty_ok = crate::string::generate("[a-z]{0,3}", &mut rng);
        assert!(empty_ok.chars().count() <= 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_inputs(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            Just("fixed".to_owned()),
            "[a-c]{1,2}".prop_map(|s| s + "!"),
        ]) {
            prop_assert!(v == "fixed" || v.ends_with('!'), "{v}");
        }
    }

    // Exercises the failure path the same way the `proptest!` macro
    // expands (the macro itself cannot be invoked inside a test fn:
    // its generated `#[test]` would be unnameable).
    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        let config = ProptestConfig::with_cases(4);
        crate::test_runner::run(&config, "always_fails", |rng| {
            let x = crate::strategy::Strategy::sample(&(0usize..2), rng);
            let inputs = format!("  x = {x:?}\n");
            let result: TestCaseResult = (|| {
                prop_assert!(x > 10, "x was {}", x);
                Ok(())
            })();
            (inputs, result)
        });
    }
}
