//! Offline stand-in for the `rand` crate (the build environment has no
//! registry access). Implements exactly the surface this workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods — over a xoshiro256++ generator seeded via
//! SplitMix64. Deterministic across platforms and runs; **not**
//! cryptographically secure and not stream-compatible with upstream
//! `rand` (the corpus generator only needs a stable, well-mixed
//! stream, not the upstream one).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled uniformly by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_range(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0, 1)`, full-range ints,
    /// fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let roll: f64 = self.random();
        roll < p
    }

    /// A uniform sample from `range`. Panics on empty ranges, like
    /// upstream `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `u64` below `bound` without modulo bias (Lemire's
/// multiply-and-reject method).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut low = m as u64;
    if low < bound {
        // `threshold` = 2^64 mod bound: reject the uneven stripe.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Pseudo-random generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0u8..4);
            assert!(z < 4);
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.random_range(0usize..6)] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "{counts:?}");
        }
    }
}
