//! Offline stand-in for the `criterion` crate (no registry access in
//! the build environment). Provides a minimal wall-clock benchmark
//! harness with the surface this workspace's benches use: groups,
//! per-input benchmarks, throughput annotation, and the standard
//! `--test` smoke mode (run every benchmark body once, no timing),
//! which CI uses to keep benches compiling and running.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over `sample_size` batches whose iteration count targets
//! `measurement_time / sample_size` apiece; the per-iteration mean,
//! minimum, and maximum batch averages are reported. No statistics
//! beyond that — this harness exists to keep relative comparisons and
//! CI smoke runs working offline, not to replace criterion's analysis.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away (re-export of
/// `std::hint::black_box` for criterion-API compatibility).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    report: &'a mut Vec<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run the body exactly once (`--test`).
    Smoke,
    /// Warm up, then time batches.
    Measure { sample_size: usize },
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Calls `body` repeatedly and records per-iteration timings.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        match self.mode {
            Mode::Smoke => {
                std_black_box(body());
            }
            Mode::Measure { sample_size } => {
                // Warm-up: estimate the per-iteration cost.
                let warmup_budget = Duration::from_millis(300);
                let started = Instant::now();
                let mut warmup_iters: u64 = 0;
                while started.elapsed() < warmup_budget {
                    std_black_box(body());
                    warmup_iters += 1;
                }
                let per_iter = started.elapsed() / warmup_iters.max(1) as u32;

                // Aim each batch at ~measurement_time / sample_size.
                let measurement_time = Duration::from_millis(1500);
                let batch_budget = measurement_time / sample_size.max(1) as u32;
                let batch_iters = if per_iter.is_zero() {
                    1000
                } else {
                    (batch_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000)
                        as u64
                };

                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                let mut max = Duration::ZERO;
                for _ in 0..sample_size.max(1) {
                    let batch_start = Instant::now();
                    for _ in 0..batch_iters {
                        std_black_box(body());
                    }
                    let batch = batch_start.elapsed() / batch_iters as u32;
                    total += batch;
                    min = min.min(batch);
                    max = max.max(batch);
                }
                self.report.push(Sample {
                    mean: total / sample_size.max(1) as u32,
                    min,
                    max,
                    iters: batch_iters * sample_size as u64,
                });
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure { sample_size: 10 },
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test` selects smoke
    /// mode; a bare filter argument is accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::Smoke;
        }
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher<'_>)) {
        run_one(self.mode, name, None, body);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            mode: self.mode,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs registered benchmark groups (called by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    mode: Mode,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if let Mode::Measure { sample_size } = &mut self.mode {
            *sample_size = n.max(2);
        }
        self
    }

    /// Annotates subsequent benchmarks with a throughput (printed
    /// only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `body` against one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.mode, &label, self.throughput, |b| body(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_one(self.mode, &label, self.throughput, body);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    mode: Mode,
    label: &str,
    throughput: Option<Throughput>,
    mut body: impl FnMut(&mut Bencher<'_>),
) {
    let mut report = Vec::new();
    let mut bencher = Bencher {
        mode,
        report: &mut report,
    };
    body(&mut bencher);
    match mode {
        Mode::Smoke => println!("test {label} ... ok"),
        Mode::Measure { .. } => {
            for sample in &report {
                let mut line = format!(
                    "{label:<50} time: [{} {} {}]",
                    format_duration(sample.min),
                    format_duration(sample.mean),
                    format_duration(sample.max),
                );
                if let Some(tp) = throughput {
                    let per_sec = match tp {
                        Throughput::Bytes(n) => format!(
                            "{:.1} MiB/s",
                            n as f64 / sample.mean.as_secs_f64() / (1024.0 * 1024.0)
                        ),
                        Throughput::Elements(n) => {
                            format!("{:.0} elem/s", n as f64 / sample.mean.as_secs_f64())
                        }
                    };
                    line.push_str(&format!(" thrpt: {per_sec}"));
                }
                line.push_str(&format!(" ({} iters)", sample.iters));
                println!("{line}");
            }
            if report.is_empty() {
                println!("{label:<50} (no samples)");
            }
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut count = 0;
        let mut report = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Smoke,
            report: &mut report,
        };
        bencher.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(report.is_empty());
    }

    #[test]
    fn measure_mode_records_a_sample() {
        let mut report = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Measure { sample_size: 2 },
            report: &mut report,
        };
        bencher.iter(|| black_box(3u64).wrapping_mul(5));
        assert_eq!(report.len(), 1);
        assert!(report[0].iters >= 2);
        assert!(report[0].min <= report[0].mean && report[0].mean <= report[0].max);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(80).id, "80");
        assert_eq!(BenchmarkId::new("parse", "small").id, "parse/small");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
