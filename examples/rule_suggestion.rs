//! Automatic rule suggestion (paper §6.3): derive a candidate security
//! rule from each curated fix pair and show that the rule matches the
//! *unfixed* code but not the fixed code.
//!
//! Run with: `cargo run --example rule_suggestion`

use analysis::TARGET_CLASSES;
use corpus::fixtures::all_fix_pairs;
use diffcode::DiffCode;
use rules::SuggestedRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dc = DiffCode::new();

    for pair in all_fix_pairs() {
        println!("=== {} — {} ===\n", pair.name, pair.description);
        print!("{}", corpus::render_patch(pair.old, pair.new));

        // Find the class whose usage actually changed.
        for class in TARGET_CLASSES {
            let changes = dc.usage_changes_from_pair(pair.old, pair.new, class)?;
            for (_, _, change) in changes {
                if change.is_same() || change.is_pure_addition() || change.is_pure_removal() {
                    continue;
                }
                let rule = SuggestedRule::from_change(&change);
                println!("\nsuggested rule:\n{rule}");

                let old_usages = dc.analyze_source(pair.old)?;
                let new_usages = dc.analyze_source(pair.new)?;
                println!("\n  matches unfixed code: {}", rule.matches(&old_usages));
                println!("  matches fixed code:   {}", rule.matches(&new_usages));
            }
        }
        println!();
    }
    Ok(())
}
