//! Mine a synthetic GitHub corpus, run the filtering funnel, and
//! cluster the surviving semantic usage changes — the end-to-end flow
//! of the paper's Figures 1, 6, and 8.
//!
//! Run with: `cargo run --release --example mine_and_cluster [n_projects]`

use corpus::{generate, GeneratorConfig};
use diffcode::Experiments;

fn main() {
    let n_projects: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    println!("Generating a corpus of {n_projects} projects (seeded, deterministic)...");
    let corpus = generate(&GeneratorConfig::small(n_projects, 0xD1FF_C0DE));
    println!(
        "  {} projects, {} commits",
        corpus.projects.len(),
        corpus.total_commits()
    );

    println!("\nMining and abstracting usage changes...");
    let exp = Experiments::new(corpus);
    println!(
        "  {} code changes -> {} usage changes",
        exp.code_changes(),
        exp.mined_changes().len()
    );

    println!("\n=== Filtering funnel (paper Figure 6) ===\n");
    print!("{}", exp.figure6_table());

    println!("\n=== Hierarchical clustering for Cipher (paper Figure 8) ===\n");
    let fig8 = exp.figure8("Cipher", 0.45);
    println!(
        "{} filtered Cipher changes, {} clusters at cut 0.45\n",
        fig8.filtered.len(),
        fig8.elicitation.clusters.len()
    );
    for (i, cluster) in fig8.elicitation.clusters.iter().take(6).enumerate() {
        println!(
            "--- cluster {} ({} members) ---",
            i + 1,
            cluster.members.len()
        );
        print!("{}", cluster.representative);
        println!("suggested rule:\n{}\n", cluster.suggested);
    }

    println!("=== Dendrogram (truncated) ===\n");
    for line in fig8.rendering.lines().take(40) {
        println!("{line}");
    }
}
