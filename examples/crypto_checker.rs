//! Run CryptoChecker (the 13 elicited rules of the paper's Figure 9)
//! over a corpus of projects and print the Figure 10 violation table.
//!
//! Run with: `cargo run --release --example crypto_checker [n_projects]`

use corpus::{generate, GeneratorConfig};
use diffcode::Experiments;
use rules::CryptoChecker;

fn main() {
    let n_projects: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);

    let corpus = generate(&GeneratorConfig::small(n_projects, 0x5EC0_11DE));
    let mut exp = Experiments::new(corpus);

    println!("=== CryptoChecker rules (paper Figure 9) ===\n");
    print!("{}", diffcode::figure9_table());

    println!("\n=== Rule violations (paper Figure 10) ===\n");
    let out = exp.figure10();
    print!("{}", out.table());
    println!(
        "\n{} of {} projects ({:.1}%) violate at least one rule (paper: >57%).",
        out.any_violation,
        out.total_projects,
        100.0 * out.any_violation as f64 / out.total_projects as f64
    );

    println!("\n=== Per-project findings (first 5 projects) ===\n");
    let checker = CryptoChecker::standard();
    let projects = exp.checked_projects();
    for project in projects.iter().take(5) {
        let violations = checker.violations(project);
        if violations.is_empty() {
            println!("{:<28} clean", project.name);
        } else {
            println!("{:<28} violates {}", project.name, violations.join(", "));
        }
    }
}
