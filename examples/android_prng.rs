//! Rule R6 in action: the Android 4.1–4.3 (API 16–18) PRNG
//! vulnerability. The same source is secure or vulnerable depending on
//! the *project context* — minSdkVersion and whether the Linux-PRNG fix
//! is installed — which CryptoChecker takes as input.
//!
//! Run with: `cargo run --example android_prng`

use analysis::{analyze, ApiModel};
use rules::{CheckedProject, CryptoChecker, ProjectContext};

const TOKEN_SOURCE: &str = r#"
class SessionTokens {
    byte[] newToken() {
        SecureRandom random = new SecureRandom();
        byte[] token = new byte[32];
        random.nextBytes(token);
        return token;
    }
}
"#;

fn check(name: &str, context: ProjectContext) {
    let unit = javalang::parse_compilation_unit(TOKEN_SOURCE).expect("parse");
    let project = CheckedProject {
        name: name.to_owned(),
        usages: vec![analyze(&unit, &ApiModel::standard())],
        context,
    };
    let checker = CryptoChecker::standard();
    let violations = checker.violations(&project);
    let r6 = violations.iter().any(|v| v == "R6");
    println!(
        "{name:<42} R6 {}   (all violations: {})",
        if r6 { "VULNERABLE" } else { "ok        " },
        if violations.is_empty() {
            "none".to_owned()
        } else {
            violations.join(", ")
        }
    );
}

fn main() {
    println!("Source under test:\n{TOKEN_SOURCE}");
    println!("Rule R6: the platform PRNG is vulnerable on Android API 16-18");
    println!("unless the app installs the Linux-PRNG fix.\n");

    check(
        "server project (no Android context)",
        ProjectContext::plain(),
    );
    check("Android app, minSdkVersion 17", ProjectContext::android(17));
    check(
        "Android app, minSdkVersion 17 + PRNG fix",
        ProjectContext {
            min_sdk_version: Some(17),
            has_lprng_fix: true,
        },
    );
    check("Android app, minSdkVersion 21", ProjectContext::android(21));

    println!(
        "\nNote: R3 fires everywhere (the default constructor does not request\n\
         SHA1PRNG) — exactly the high match rate the paper reports for R3."
    );
}
