//! Quickstart: run the full DiffCode abstraction on the paper's own
//! Figure 2 example — one code change to an `AESCipher` class — and
//! print the patch, the usage DAGs, the derived usage change, and the
//! automatically suggested rule.
//!
//! Run with: `cargo run --example quickstart`

use corpus::fixtures::{FIGURE2_NEW, FIGURE2_OLD};
use diffcode::DiffCode;
use rules::SuggestedRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== The code change (paper Figure 2a) ===\n");
    print!("{}", corpus::render_patch(FIGURE2_OLD, FIGURE2_NEW));

    let mut dc = DiffCode::new();
    let changes = dc.usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")?;

    for (i, (old_dag, new_dag, change)) in changes.iter().enumerate() {
        println!("\n=== Cipher object #{} ===", i + 1);
        println!("\nOld usage DAG (Figure 2b):");
        for path in &old_dag.paths {
            println!("  {path}");
        }
        println!("\nNew usage DAG (Figure 2c):");
        for path in &new_dag.paths {
            println!("  {path}");
        }
        println!(
            "\nDAG distance (paper reports 1/2 for enc): {:.3}",
            old_dag.distance(new_dag)
        );
        println!("\nUsage change (Figure 2d):");
        print!("{change}");

        println!("\nAuto-suggested rule (paper §6.3):");
        println!("{}", SuggestedRule::from_change(change));
    }
    Ok(())
}
