//! Byte-for-byte reproduction of the paper's Figure 2: the `AESCipher`
//! code change, the usage DAGs of the `enc` object before and after,
//! the DAG distance, and the removed/added features.

use corpus::fixtures::{FIGURE2_NEW, FIGURE2_OLD};
use diffcode::DiffCode;
use std::collections::BTreeSet;

fn paths_of(dag: &usagegraph::UsageDag) -> BTreeSet<String> {
    dag.paths.iter().map(|p| p.to_string()).collect()
}

#[test]
fn figure2b_old_enc_dag_node_set() {
    let mut dc = DiffCode::new();
    let changes = dc
        .usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")
        .unwrap();
    let enc = changes
        .iter()
        .find(|(old, _, _)| {
            old.paths
                .iter()
                .any(|p| p.to_string().contains("ENCRYPT_MODE"))
        })
        .expect("enc object");
    let expected: BTreeSet<String> = [
        "Cipher",
        "Cipher getInstance",
        "Cipher getInstance arg1:AES",
        "Cipher init",
        "Cipher init arg1:ENCRYPT_MODE",
        "Cipher init arg2:Secret",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    assert_eq!(paths_of(&enc.0), expected);
}

#[test]
fn figure2c_new_enc_dag_node_set() {
    let mut dc = DiffCode::new();
    let changes = dc
        .usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")
        .unwrap();
    let enc = changes
        .iter()
        .find(|(old, _, _)| {
            old.paths
                .iter()
                .any(|p| p.to_string().contains("ENCRYPT_MODE"))
        })
        .expect("enc object");
    let expected: BTreeSet<String> = [
        "Cipher",
        "Cipher getInstance",
        "Cipher getInstance arg1:AES/CBC/PKCS5Padding",
        "Cipher init",
        "Cipher init arg1:ENCRYPT_MODE",
        "Cipher init arg2:Secret",
        "Cipher init arg3:IvParameterSpec",
        "Cipher init arg3:IvParameterSpec <init>",
        "Cipher init arg3:IvParameterSpec <init> arg1:\u{22a4}byte[]",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();
    assert_eq!(paths_of(&enc.1), expected);
}

#[test]
fn figure2_distance_is_one_half() {
    let mut dc = DiffCode::new();
    let changes = dc
        .usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")
        .unwrap();
    let enc = &changes[0];
    assert!((enc.0.distance(&enc.1) - 0.5).abs() < 1e-9);
}

#[test]
fn figure2d_removed_and_added_features() {
    let mut dc = DiffCode::new();
    let changes = dc
        .usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")
        .unwrap();
    let (_, _, change) = changes
        .iter()
        .find(|(old, _, _)| {
            old.paths
                .iter()
                .any(|p| p.to_string().contains("ENCRYPT_MODE"))
        })
        .expect("enc object");

    let removed: Vec<String> = change.removed.iter().map(|p| p.to_string()).collect();
    let added: Vec<String> = change.added.iter().map(|p| p.to_string()).collect();

    assert_eq!(removed, vec!["Cipher getInstance arg1:AES".to_owned()]);
    assert!(added.contains(&"Cipher getInstance arg1:AES/CBC/PKCS5Padding".to_owned()));
    assert!(added.contains(&"Cipher init arg3:IvParameterSpec".to_owned()));
    // Shortest-path property: the <init> subtree of the IV spec must
    // NOT appear (its prefix is already an added feature).
    assert!(!added.iter().any(|p| p.contains("<init>")), "{added:?}");
}

#[test]
fn both_cipher_objects_change_identically_modulo_mode_constant() {
    let mut dc = DiffCode::new();
    let changes = dc
        .usage_changes_from_pair(FIGURE2_OLD, FIGURE2_NEW, "Cipher")
        .unwrap();
    assert_eq!(changes.len(), 2);
    for (_, _, change) in &changes {
        assert_eq!(change.removed.len(), 1);
        assert!(change.removed[0].to_string().ends_with("arg1:AES"));
    }
}
