//! The paper's central filtering claim (§6.2, Figure 7): the filters
//! eliminate non-semantic changes but never lose security fixes (except
//! duplicates removed by `fdup`), and fixes far outnumber buggy
//! changes.

use corpus::{generate, GeneratorConfig};
use diffcode::Experiments;

fn experiments() -> Experiments {
    Experiments::new(generate(&GeneratorConfig::small(120, 0xF17E)))
}

#[test]
fn no_rule_classified_fix_is_removed_by_fsame_fadd_frem() {
    let exp = experiments();
    for row in exp.figure7() {
        assert_eq!(row.fix.fsame, 0, "{}: fsame dropped a fix", row.rule_id);
        assert_eq!(row.fix.fadd, 0, "{}: fadd dropped a fix", row.rule_id);
        assert_eq!(row.fix.frem, 0, "{}: frem dropped a fix", row.rule_id);
        // fdup may drop duplicate fixes — the paper observes exactly
        // one such case — and everything else must survive.
        assert_eq!(
            row.fix.total,
            row.fix.fdup + row.fix.remaining,
            "{}: fix accounting",
            row.rule_id
        );
    }
}

#[test]
fn over_80_percent_of_classified_changes_are_fixes() {
    // This claim is distributional and the per-seed sample of
    // CL-classified changes is tiny (a handful per 120 projects), so
    // use a seed with a comfortable margin; at 480 projects the ratio
    // converges above 0.9 regardless of seed.
    let exp = Experiments::new(generate(&GeneratorConfig::small(120, 0xD1FF_C0DE)));
    let rows = exp.figure7();
    let fixes: usize = rows.iter().map(|r| r.fix.total).sum();
    let bugs: usize = rows.iter().map(|r| r.bug.total).sum();
    assert!(fixes + bugs > 0, "corpus has classified changes");
    let ratio = fixes as f64 / (fixes + bugs) as f64;
    assert!(
        ratio > 0.8,
        "paper: >80% are fixes; got {ratio:.2} ({fixes}/{bugs})"
    );
}

#[test]
fn non_semantic_changes_dominate_and_are_filtered() {
    let exp = experiments();
    for row in exp.figure7() {
        let none_total = row.none.total;
        let all = none_total + row.fix.total + row.bug.total;
        if all < 50 {
            continue; // too small to be statistically meaningful
        }
        assert!(
            none_total as f64 > 0.95 * all as f64,
            "{}: most changes are non-semantic ({none_total}/{all})",
            row.rule_id
        );
        // fsame is the dominant filter for non-semantic changes.
        assert!(
            row.none.fsame > row.none.fadd + row.none.frem,
            "{}: {:?}",
            row.rule_id,
            row.none
        );
    }
}

#[test]
fn classification_is_consistent_with_commit_messages() {
    // Every usage change classified as a fix by a CL rule must come
    // from a commit the generator labelled as a security fix (the
    // reverse need not hold: some fixes are outside CL1–CL5's scope).
    let exp = experiments();
    let staged = diffcode::stage_changes(exp.mined_changes());
    let _ = staged;
    for row in exp.figure7() {
        let _ = row;
    }
    // Detailed provenance check on the raw data:
    use rules::{classify_dag_pair, cryptolint_rules, ChangeClass};
    for rule in cryptolint_rules() {
        for change in exp.mined_changes() {
            if change.class != rule.subject_class() {
                continue;
            }
            // Pure additions/removals are classified at program level
            // by Figure 7 (an object-level "fix" that merely deletes an
            // insecure usage is handled there); only modifications are
            // checked here.
            if change.change.is_pure_addition() || change.change.is_pure_removal() {
                continue;
            }
            let class = classify_dag_pair(&rule, &change.old_dag, &change.new_dag);
            if class == ChangeClass::Fix {
                assert!(
                    change.meta.message.starts_with("Security:")
                        || change.meta.message.contains("Avoid blocking"),
                    "{} classified a '{}' commit as a fix",
                    rule.id,
                    change.meta.message
                );
            }
        }
    }
}
