//! Observability integration tests: the metrics registry must exactly
//! reconcile with the pipeline's own statistics, sharded mining plus
//! filtering must dedup identically to a sequential run, and the JSON
//! snapshot must carry the full funnel.

use corpus::{generate, GeneratorConfig};
use diffcode::{
    apply_filters, apply_filters_with_metrics, apply_filters_with_seen, mine_parallel_with_metrics,
    DiffCode, ErrorKind,
};
use obs::MetricsRegistry;

const SEED: u64 = 7;

fn corpus_under_test() -> corpus::Corpus {
    generate(&GeneratorConfig {
        n_projects: 10,
        seed: SEED,
        ..GeneratorConfig::default()
    })
}

/// Sharded mining + per-shard filtering with a shared dedup set keeps
/// exactly the same changes as mining and filtering in one sequential
/// pass. This is the bug the `stage_changes_with_seen` split fixes:
/// without shared `seen` state, fdup only dedups within a shard.
#[test]
fn sharded_filtering_with_shared_seen_matches_sequential() {
    let corpus = corpus_under_test();

    // Ground truth: one sequential mine + one-shot filtering.
    let sequential = DiffCode::new().mine(&corpus, &[]);
    let (kept_seq, stats_seq) = apply_filters(sequential.changes.clone());

    // Sharded: parallel mine, then filter the merged stream in batches
    // (as a shard-streaming consumer would) with one shared seen-set.
    let mut registry = MetricsRegistry::new();
    let parallel = mine_parallel_with_metrics(&corpus, &[], 4, &mut registry);
    assert_eq!(
        parallel.changes, sequential.changes,
        "mining must be shard-invariant"
    );

    let mut seen = diffcode::SeenDups::new();
    let mut kept_batched = Vec::new();
    let mut total_after_fdup = 0;
    for batch in parallel.changes.chunks(3) {
        let (kept, stats) = apply_filters_with_seen(batch.to_vec(), &mut seen);
        total_after_fdup += stats.after_fdup;
        kept_batched.extend(kept);
    }
    assert_eq!(
        kept_batched, kept_seq,
        "batched filtering must dedup like one pass"
    );
    assert_eq!(total_after_fdup, stats_seq.after_fdup);
}

/// Every counter the pipeline publishes must equal the corresponding
/// `MiningStats` / `FilterStats` field — the report and the stats are
/// two views of one run, never two bookkeeping systems drifting apart.
#[test]
fn metrics_counters_reconcile_with_pipeline_stats() {
    let corpus = corpus_under_test();
    let mut registry = MetricsRegistry::new();
    let result = mine_parallel_with_metrics(&corpus, &[], 4, &mut registry);

    assert_eq!(
        registry.counter("mine.code_changes"),
        result.stats.code_changes as u64
    );
    assert_eq!(registry.counter("mine.mined"), result.stats.mined as u64);
    assert_eq!(
        registry.counter("mine.skipped"),
        result.stats.skipped.total() as u64
    );
    assert_eq!(
        registry.counter("mine.usage_changes"),
        result.changes.len() as u64
    );
    for kind in ErrorKind::ALL {
        assert_eq!(
            registry.counter(&format!("mine.skipped.{}", kind.name())),
            result.stats.skipped.get(kind) as u64,
            "per-kind quarantine counter for {}",
            kind.name()
        );
    }
    assert!(obs::check_partition(
        &registry,
        "mine.code_changes",
        &["mine.mined", "mine.skipped"],
    )
    .is_ok());

    let (kept, stats) = apply_filters_with_metrics(result.changes, &mut registry);
    assert_eq!(registry.counter("filter.total"), stats.total as u64);
    assert_eq!(
        registry.counter("filter.after_fsame"),
        stats.after_fsame as u64
    );
    assert_eq!(
        registry.counter("filter.after_fadd"),
        stats.after_fadd as u64
    );
    assert_eq!(
        registry.counter("filter.after_frem"),
        stats.after_frem as u64
    );
    assert_eq!(registry.counter("filter.after_fdup"), kept.len() as u64);
    assert!(obs::check_funnel(
        &registry,
        &[
            "filter.total",
            "filter.after_fsame",
            "filter.after_fadd",
            "filter.after_frem",
            "filter.after_fdup"
        ],
    )
    .is_ok());
}

/// Parallel mining merges per-shard registries; the merged counters
/// must match a sequential run's counters exactly (spans aggregate the
/// same event counts, wall-clock aside).
#[test]
fn parallel_and_sequential_registries_agree_on_counts() {
    let corpus = corpus_under_test();

    let mut dc = DiffCode::new();
    let _ = dc.mine(&corpus, &[]);
    let sequential = dc.take_metrics();

    let mut parallel = MetricsRegistry::new();
    let _ = mine_parallel_with_metrics(&corpus, &[], 4, &mut parallel);

    let seq_counters: Vec<_> = sequential.counters().collect();
    let par_counters: Vec<_> = parallel.counters().collect();
    assert_eq!(seq_counters, par_counters);

    // Same number of per-change timing events, however they were sharded.
    let seq_span = sequential.span("mine.change").expect("sequential span");
    let par_span = parallel.span("mine.change").expect("parallel span");
    assert_eq!(seq_span.count, par_span.count);
}

/// The snapshot is versioned and carries every funnel stage, including
/// zero-valued ones — downstream checkers rely on their presence.
#[test]
fn json_snapshot_carries_the_funnel() {
    let corpus = corpus_under_test();
    let mut registry = MetricsRegistry::new();
    let result = mine_parallel_with_metrics(&corpus, &[], 2, &mut registry);
    let (_, _) = apply_filters_with_metrics(result.changes, &mut registry);

    let json = registry.to_json();
    assert!(json.contains("\"version\": 2"), "{json}");
    for stage in [
        "filter.total",
        "filter.after_fsame",
        "filter.after_fadd",
        "filter.after_frem",
        "filter.after_fdup",
    ] {
        assert!(
            json.contains(&format!("\"{stage}\":")),
            "snapshot missing {stage}"
        );
    }
    for counter in ["mine.code_changes", "mine.mined", "mine.skipped"] {
        assert!(
            json.contains(&format!("\"{counter}\":")),
            "snapshot missing {counter}"
        );
    }
    assert!(
        json.contains("\"mine.run\": {"),
        "snapshot missing mine.run span"
    );
    // v2: every span carries quantiles and its cumulative bucket list.
    for key in ["\"p50_ns\":", "\"p99_ns\":", "\"buckets\":"] {
        assert!(json.contains(key), "snapshot missing {key}: {json}");
    }
}

/// Span histograms obey the registry's shard-merge law: recording a
/// set of durations sharded across registries and merging gives
/// exactly the histogram of recording them all in one registry. (The
/// wall-clock spans of a parallel mining run differ run to run, so the
/// equality is checked over fixed synthetic durations — the same
/// absorb path `mine_parallel_with_metrics` uses on shard join.)
#[test]
fn sharded_histogram_merge_matches_sequential_recording() {
    use std::time::Duration;
    // Deterministic durations spanning several octaves of the layout.
    let durations: Vec<Duration> = (0..500u64)
        .map(|i| Duration::from_nanos((i * i * 997 + i * 31 + 1) % 10_000_000))
        .collect();

    let mut sequential = MetricsRegistry::new();
    for d in &durations {
        sequential.record_span("mine.change", *d);
    }

    let mut merged = MetricsRegistry::new();
    for shard in durations.chunks(137) {
        let mut worker = MetricsRegistry::new();
        for d in shard {
            worker.record_span("mine.change", *d);
        }
        merged.merge(&worker);
    }

    assert_eq!(
        merged.hist("mine.change"),
        sequential.hist("mine.change"),
        "merged shard histograms must equal a single-registry recording"
    );
    // And the quantiles the snapshot/status surfaces agree too.
    let (m, s) = (
        merged.hist("mine.change").unwrap(),
        sequential.hist("mine.change").unwrap(),
    );
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(m.quantile(q), s.quantile(q));
    }
}

/// A parallel mining run's merged histogram partitions the same
/// per-change samples as the sequential run: counts and sums agree
/// even though individual timings differ.
#[test]
fn parallel_histogram_count_matches_sequential() {
    let corpus = corpus_under_test();

    let mut dc = DiffCode::new();
    let _ = dc.mine(&corpus, &[]);
    let sequential = dc.take_metrics();

    let mut parallel = MetricsRegistry::new();
    let _ = mine_parallel_with_metrics(&corpus, &[], 4, &mut parallel);

    let seq = sequential.hist("mine.change").expect("sequential hist");
    let par = parallel.hist("mine.change").expect("parallel hist");
    assert_eq!(seq.count(), par.count(), "one histogram sample per change");
    assert_eq!(
        seq.count(),
        sequential.span("mine.change").unwrap().count,
        "histogram and span stats count the same events"
    );
}
