//! CryptoChecker over whole generated projects (the paper's §6.4),
//! including the Android-context rule R6 and the composite rule R13.

use corpus::{generate, GeneratorConfig};
use diffcode::Experiments;
use rules::CryptoChecker;

#[test]
fn figure10_headline_over_57_percent() {
    let mut exp = Experiments::new(generate(&GeneratorConfig::small(80, 0xC4EC)));
    let out = exp.figure10();
    assert_eq!(out.total_projects, 80);
    let pct = 100.0 * out.any_violation as f64 / out.total_projects as f64;
    assert!(pct > 57.0, "paper: >57%; got {pct:.1}%");
}

#[test]
fn figure10_rule_shape() {
    let mut exp = Experiments::new(generate(&GeneratorConfig::small(120, 0xC4ED)));
    let out = exp.figure10();
    let get = |id: &str| out.rows.iter().find(|r| r.rule_id == id).unwrap();

    // R3 (don't construct SecureRandom without SHA1PRNG): nearly all
    // applicable projects match (paper: 94.8%).
    let r3 = get("R3");
    assert!(r3.applicable > 0);
    assert!(r3.matching_pct() > 60.0, "R3: {:?}", r3);

    // R5 (BouncyCastle provider): nearly all Cipher users match
    // (paper: 97.6%).
    let r5 = get("R5");
    assert!(r5.matching_pct() > 80.0, "R5: {:?}", r5);

    // R12 (static seed) is rare (paper: 0.3%).
    let r12 = get("R12");
    assert!(r12.matching_pct() < 15.0, "R12: {:?}", r12);

    // R4 (getInstanceStrong) is rare (paper: 1%).
    let r4 = get("R4");
    assert!(r4.matching_pct() < 15.0, "R4: {:?}", r4);

    // R13 applies to few projects (paper: 1.5% of projects).
    let r13 = get("R13");
    assert!(
        (r13.applicable as f64) < 0.15 * out.total_projects as f64,
        "R13: {:?}",
        r13
    );

    // Rules sharing a subject class report identical applicability.
    assert_eq!(get("R3").applicable, get("R4").applicable);
    assert_eq!(get("R7").applicable, get("R8").applicable);
    assert_eq!(get("R2").applicable, get("R11").applicable);
}

#[test]
fn android_only_rule_needs_android_context() {
    let mut exp = Experiments::new(generate(&GeneratorConfig::small(100, 0xA11D)));
    let out = exp.figure10();
    let r6 = out.rows.iter().find(|r| r.rule_id == "R6").unwrap();
    let r3 = out.rows.iter().find(|r| r.rule_id == "R3").unwrap();
    // R6 applies only to Android projects, a strict subset of
    // SecureRandom users.
    assert!(r6.applicable < r3.applicable, "{r6:?} vs {r3:?}");
    assert!(r6.matching <= r6.applicable);
}

#[test]
fn violations_are_reported_per_project() {
    let mut exp = Experiments::new(generate(&GeneratorConfig::small(25, 0x77)));
    let checker = CryptoChecker::standard();
    let projects = exp.checked_projects();
    assert_eq!(projects.len(), 25);
    let mut any = 0;
    for project in &projects {
        let violations = checker.violations(project);
        // Violations are sorted rule ids from the known set.
        for v in &violations {
            assert!(v.starts_with('R'), "{v}");
        }
        if !violations.is_empty() {
            any += 1;
        }
    }
    assert!(any > 0);
}

#[test]
fn head_analysis_matches_final_commit_state() {
    // The checker sees the project as of HEAD: a project whose last
    // security state changed must be judged on the final state.
    let corpus = generate(&GeneratorConfig::small(10, 0xBEEF));
    let mut exp = Experiments::new(corpus.clone());
    let projects = exp.checked_projects();
    for (project, checked) in corpus.projects.iter().zip(&projects) {
        assert_eq!(project.full_name(), checked.name);
        assert_eq!(project.head_files().len(), checked.usages.len());
    }
}
