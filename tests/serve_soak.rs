//! Chaos soak harness for the resident server, over real sockets.
//!
//! Pins the full robustness envelope end to end:
//!
//! - zero aborts: every hostile payload in `corpus::chaos::HttpMutator`
//!   gets a clean 4xx/timeout and the process survives;
//! - exact accounting: `accepted = completed + shed + failed` at rest;
//! - verdict parity: `/mine` answers byte-identical tuple digests to
//!   the one-shot pipeline entry point (whose equivalence to
//!   `DiffCode::mine` the core test suite pins);
//! - warm cache: a repeated `/mine` is a cache hit under the deadline;
//! - load shedding: past the admission watermark, clients get `429` +
//!   `Retry-After`;
//! - graceful drain: shutdown answers what is queued and flushes the
//!   mining cache's append log.

use corpus::chaos::{HttpMutator, HttpPlan, HttpStep};
use proptest::prelude::*;
use serve::{Json, ServeConfig, ServeSummary, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn test_config(deadline_ms: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        cache_dir: None,
        deadline_ms,
        queue_depth: 64,
        drain_ms: 2_000,
        ring_capacity: 64,
        chaos_hooks: true,
        ..ServeConfig::default()
    }
}

fn spawn(config: ServeConfig) -> ServerHandle {
    Server::spawn(config).expect("server must start on an ephemeral port")
}

/// One full request/response exchange; returns (status, head, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send_request(&mut stream, method, path, headers, body);
    read_response(&mut stream).expect("server must answer")
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
}

/// Reads one `Connection: close` response to EOF. `None` if the server
/// closed without answering.
fn read_response(stream: &mut TcpStream) -> Option<(u16, String, Vec<u8>)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?.to_owned();
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    Some((status, head, raw[head_end + 4..].to_vec()))
}

fn json_body(body: &[u8]) -> Json {
    serve::json::parse(std::str::from_utf8(body).expect("UTF-8 body")).expect("JSON body")
}

fn mine_body(old: &str, new: &str) -> Vec<u8> {
    Json::Obj(vec![
        ("old".to_owned(), Json::Str(old.to_owned())),
        ("new".to_owned(), Json::Str(new.to_owned())),
    ])
    .render()
    .into_bytes()
}

/// Replays one wire-level fault plan; swallows transport errors (the
/// server is expected to cut hostile connections). Returns the status
/// the server managed to deliver, if any.
fn replay(addr: SocketAddr, plan: &HttpPlan) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    for step in &plan.steps {
        match step {
            HttpStep::Send(bytes) => {
                if stream.write_all(bytes).is_err() {
                    break;
                }
            }
            HttpStep::Pause(pause) => std::thread::sleep(*pause),
            HttpStep::Close => {
                let _ = stream.shutdown(std::net::Shutdown::Write);
                break;
            }
        }
    }
    read_response(&mut stream).map(|(status, _, _)| status)
}

/// Shuts the server down and asserts the accounting partition on the
/// final summary (all client sockets are closed by the time tests call
/// this, so the summary is at rest by construction: shutdown drains the
/// queue and joins every worker before counting).
fn settle_and_shutdown(handle: ServerHandle) -> ServeSummary {
    let summary = handle.shutdown();
    assert_eq!(
        summary.accepted,
        summary.completed + summary.shed + summary.failed,
        "accepted = completed + shed + failed must hold at rest: {summary:?}",
    );
    summary
}

fn figure2_pair() -> (&'static str, &'static str) {
    (
        r#"class F2 { void m() throws Exception {
            javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES");
        } }"#,
        r#"class F2 { void m() throws Exception {
            javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES/GCM/NoPadding");
        } }"#,
    )
}

// ---------------------------------------------------------------------
// Chaos soak: hostile wire payloads, zero aborts, exact accounting
// ---------------------------------------------------------------------

#[test]
fn soak_chaos_payloads_never_kill_workers_and_accounting_balances() {
    let handle = spawn(test_config(200));
    let addr = handle.addr();

    // Interleave hostile plans with honest traffic from client threads.
    let n_chaos = 48u64;
    let plans: Vec<HttpPlan> = {
        let mut m = HttpMutator::new(0xD1FF).with_pause(Duration::from_millis(20));
        (0..n_chaos).map(|_| m.plan()).collect()
    };
    let mut sent_ok = 0u64;
    std::thread::scope(|scope| {
        for shard in plans.chunks(12) {
            scope.spawn(move || {
                for plan in shard {
                    if let Some(status) = replay(addr, plan) {
                        assert!(
                            (400..=408).contains(&status) || status == 413 || status == 431,
                            "hostile plan {:?} must get a clean 4xx, got {status}",
                            plan.kind,
                        );
                    }
                }
            });
        }
        // Honest requests riding along on the same server.
        let (old, new) = figure2_pair();
        for _ in 0..8 {
            let (status, _, body) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
            assert_eq!(status, 200);
            let verdict = json_body(&body);
            assert_eq!(
                verdict.get("verdict").and_then(Json::as_str),
                Some("mined"),
                "honest traffic mines even under chaos"
            );
            sent_ok += 1;
        }
    });
    let (status, _, _) = request(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200, "server alive after the chaos barrage");
    sent_ok += 1;

    let summary = settle_and_shutdown(handle);
    assert_eq!(
        summary.accepted,
        n_chaos + sent_ok,
        "every connection was accepted and accounted"
    );
    assert_eq!(summary.failed, 0, "hostile *input* is never a 500");
    assert!(summary.completed >= sent_ok);
    // The failure modes were counted by kind.
    let recv_total: u64 = [
        "serve.recv_deadline",
        "serve.recv_head_too_large",
        "serve.recv_body_too_large",
        "serve.recv_malformed",
        "serve.recv_closed",
        "serve.recv_io",
    ]
    .iter()
    .map(|name| summary.registry.counter(name))
    .sum();
    assert!(
        recv_total > 0,
        "chaos plans must register in the recv-error counters"
    );
}

// ---------------------------------------------------------------------
// Verdict parity + warm cache + /explain
// ---------------------------------------------------------------------

#[test]
fn mine_verdicts_match_one_shot_pipeline_and_warm_cache_hits() {
    let dir = std::env::temp_dir().join(format!("serve_soak_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = spawn(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..test_config(2_000)
    });
    let addr = handle.addr();

    let generated = corpus::generate(&corpus::GeneratorConfig::small(2, 7));
    let pairs: Vec<(String, String)> = generated
        .code_changes()
        .take(6)
        .map(|c| (c.old.to_owned(), c.new.to_owned()))
        .collect();
    assert!(!pairs.is_empty(), "the generator must yield code changes");

    let mut fingerprints = Vec::new();
    for (old, new) in &pairs {
        // One-shot reference verdict: the same entry point the mining
        // loop uses (their equivalence is pinned in the core tests).
        let (expected, _) = diffcode::DiffCode::new().process_pair_cached(old, new, &[], None);
        let expected_tuples = diffcode::cli::outcome_digest_parts(&expected);

        let (status, _, body) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
        assert_eq!(status, 200);
        let verdict = json_body(&body);
        let served: Vec<String> = verdict
            .get("tuples")
            .and_then(Json::as_array)
            .expect("tuples array")
            .iter()
            .filter_map(|t| t.as_str().map(ToOwned::to_owned))
            .collect();
        assert_eq!(
            served, expected_tuples,
            "served /mine verdict must be byte-identical to the one-shot pipeline's"
        );
        fingerprints.push(
            verdict
                .get("fingerprint")
                .and_then(Json::as_str)
                .expect("fingerprint")
                .to_owned(),
        );
    }

    // Warm cache: repeating the first pair is a hit under the deadline,
    // with the identical verdict.
    let (old, new) = &pairs[0];
    let started = Instant::now();
    let (status, _, body) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
    assert_eq!(status, 200);
    let warm = json_body(&body);
    assert_eq!(warm.get("cache").and_then(Json::as_str), Some("hit"));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a warm hit answers well under the deadline"
    );

    // /explain serves the ring-buffered journal for a fingerprint.
    let fp = &fingerprints[0];
    let (status, _, body) = request(addr, "GET", &format!("/explain/{fp}"), &[], b"");
    assert_eq!(status, 200);
    let explained = json_body(&body);
    let records = explained
        .get("records")
        .and_then(Json::as_array)
        .expect("records");
    assert!(
        records.len() >= 2,
        "cold and warm verdicts are both journaled"
    );
    assert_eq!(records[0].get("cache").and_then(Json::as_str), Some("hit"));
    let (status, _, _) = request(addr, "GET", "/explain/ffffffffffffffff", &[], b"");
    assert_eq!(status, 404);

    let summary = settle_and_shutdown(handle);
    assert!(
        summary.registry.counter("cache.hit") >= 1,
        "the warm request hit the resident cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Load shedding at the admission watermark
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let handle = spawn(ServeConfig {
        threads: 1,
        queue_depth: 1,
        ..test_config(5_000)
    });
    let addr = handle.addr();

    // Park the single worker on a slow request, then flood: with a
    // queue watermark of 1, most of the flood must shed immediately.
    let slow = std::thread::spawn(move || {
        request(addr, "GET", "/healthz", &[("X-Chaos-Sleep-Ms", "600")], b"")
    });
    std::thread::sleep(Duration::from_millis(150));

    // Send the whole flood before reading any response, so the queue
    // actually fills instead of draining between sequential requests.
    let mut flood: Vec<TcpStream> = Vec::new();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        send_request(&mut stream, "GET", "/healthz", &[], b"");
        flood.push(stream);
    }
    let mut shed_seen = 0u64;
    let mut retry_after_seen = false;
    for mut stream in flood {
        if let Some((status, head, _)) = read_response(&mut stream) {
            if status == 429 {
                shed_seen += 1;
                if head.to_ascii_lowercase().contains("retry-after:") {
                    retry_after_seen = true;
                }
            }
        }
    }
    assert!(shed_seen >= 1, "the watermark must shed under overload");
    assert!(retry_after_seen, "shed responses carry Retry-After");
    let (status, _, _) = slow.join().expect("slow client");
    assert_eq!(status, 200, "the slow request itself completes");

    let summary = settle_and_shutdown(handle);
    assert!(summary.shed >= shed_seen);
    assert!(summary.registry.counter("serve.http_429") >= shed_seen);
}

// ---------------------------------------------------------------------
// Panic isolation: a poisoned request fails alone
// ---------------------------------------------------------------------

#[test]
fn handler_panic_is_a_500_and_the_worker_survives() {
    let handle = spawn(test_config(1_000));
    let addr = handle.addr();

    let (status, _, body) = request(addr, "GET", "/healthz", &[("X-Chaos-Panic", "1")], b"");
    assert_eq!(status, 500);
    let quarantine = json_body(&body);
    assert_eq!(
        quarantine
            .get("quarantine")
            .and_then(|q| q.get("kind"))
            .and_then(Json::as_str),
        Some("panic"),
        "a 500 carries quarantine provenance"
    );

    // The same worker pool keeps serving.
    let (status, _, _) = request(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    let (old, new) = figure2_pair();
    let (status, _, _) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
    assert_eq!(status, 200);

    let summary = settle_and_shutdown(handle);
    assert_eq!(summary.failed, 1, "exactly the panicking request failed");
}

// ---------------------------------------------------------------------
// Graceful drain: shutdown flushes the cache and closes the listener
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_and_flushes_the_cache_log() {
    let dir = std::env::temp_dir().join(format!("serve_drain_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = spawn(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..test_config(2_000)
    });
    let addr = handle.addr();

    let (status, _, _) = request(addr, "GET", "/readyz", &[], b"");
    assert_eq!(status, 200, "ready while serving");
    let (old, new) = figure2_pair();
    let (status, _, _) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
    assert_eq!(status, 200);

    let summary = settle_and_shutdown(handle);
    assert!(TcpStream::connect(addr).is_err(), "listener closed");

    // The flushed log replays: a fresh cache open sees the entry.
    let cache = diffcode::MiningCache::open(
        &dir,
        &[],
        &diffcode::PipelineLimits::DEFAULT,
        usagegraph::DEFAULT_MAX_DEPTH,
    )
    .expect("the drained log must reopen cleanly");
    assert!(
        cache.store().stats().current_entries >= 1,
        "the /mine verdict was flushed to the append log"
    );
    assert!(
        summary.registry.counter("cache.flushed_entries") >= 1,
        "flush accounting: {summary:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Observability: access-log partition, /status percentiles, /trace
// ---------------------------------------------------------------------

/// Every accepted connection produces exactly one structured access
/// record, and the records partition by outcome exactly like the
/// counters do: `accepted = (ok + deadline) + shed + panic`. `/status`
/// serves non-zero latency percentiles per endpoint and
/// `/trace/capture` serves valid Chrome-trace JSON.
#[test]
fn access_log_partitions_and_introspection_endpoints_work() {
    let log_path =
        std::env::temp_dir().join(format!("serve_soak_log_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let handle = spawn(ServeConfig {
        logger: obs::Logger::file(
            &log_path,
            16 * 1024 * 1024,
            obs::LogFormat::Json,
            obs::LogLevel::Info,
        ),
        ..test_config(1_000)
    });
    let addr = handle.addr();

    let (old, new) = figure2_pair();
    for _ in 0..3 {
        let (status, _, _) = request(addr, "POST", "/mine", &[], &mine_body(old, new));
        assert_eq!(status, 200);
    }
    let (status, _, _) = request(addr, "GET", "/healthz", &[("X-Chaos-Panic", "1")], b"");
    assert_eq!(status, 500);

    // /status: live accounting plus the per-endpoint percentile table.
    let (status, _, body) = request(addr, "GET", "/status", &[], b"");
    assert_eq!(status, 200);
    let page = json_body(&body);
    assert!(
        matches!(page.get("draining"), Some(Json::Bool(false))),
        "not draining while serving"
    );
    let accepted = page
        .get("requests")
        .and_then(|r| r.get("accepted"))
        .and_then(Json::as_num)
        .expect("requests.accepted");
    assert!(accepted >= 4.0, "status sees the traffic: {accepted}");
    for endpoint in ["all", "mine", "healthz"] {
        let row = page
            .get("endpoints")
            .and_then(|e| e.get(endpoint))
            .unwrap_or_else(|| panic!("endpoints.{endpoint} missing"));
        assert!(
            row.get("count").and_then(Json::as_num).expect("count") >= 1.0,
            "endpoints.{endpoint}.count"
        );
        for key in ["p50_ns", "p90_ns", "p95_ns", "p99_ns", "p999_ns"] {
            let v = row
                .get(key)
                .and_then(Json::as_num)
                .unwrap_or_else(|| panic!("endpoints.{endpoint}.{key} missing"));
            assert!(v > 0.0, "endpoints.{endpoint}.{key} must be non-zero");
        }
    }

    // /trace/capture: a valid Chrome-trace snapshot of recent requests.
    let (status, _, body) = request(addr, "GET", "/trace/capture?events=50", &[], b"");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("UTF-8 trace");
    assert!(
        text.contains("serve.request"),
        "trace names requests: {text}"
    );
    serve::json::parse(text).expect("trace capture is valid JSON");
    let (status, _, _) = request(addr, "GET", "/trace/capture?events=zero", &[], b"");
    assert_eq!(status, 400, "malformed capture query is rejected");

    let summary = settle_and_shutdown(handle);

    // Drain ran Logger::sync, so the file is complete. Every line must
    // be valid JSON with the documented schema, and access records must
    // partition exactly like the counters.
    let text = std::fs::read_to_string(&log_path).expect("log file written");
    let (mut access, mut ok, mut shed, mut deadline, mut panicked) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut boots, mut lifecycle) = (0u64, 0u64);
    for line in text.lines() {
        let rec = serve::json::parse(line).expect("every log line is one valid JSON record");
        for key in ["ts_ms", "level", "event"] {
            assert!(rec.get(key).is_some(), "record missing {key}: {line}");
        }
        match rec.get("event").and_then(Json::as_str).expect("event name") {
            "serve.access" => {
                access += 1;
                for key in [
                    "request_id",
                    "method",
                    "path",
                    "endpoint",
                    "status",
                    "latency_ns",
                    "bytes",
                    "outcome",
                ] {
                    assert!(
                        rec.get(key).is_some(),
                        "access record missing {key}: {line}"
                    );
                }
                match rec.get("outcome").and_then(Json::as_str).expect("outcome") {
                    "ok" => ok += 1,
                    "shed" => shed += 1,
                    "deadline" => deadline += 1,
                    "panic" => panicked += 1,
                    other => panic!("unknown outcome {other}: {line}"),
                }
            }
            "serve.boot" => boots += 1,
            "serve.drain" | "serve.drained" | "serve.cache_flush" => lifecycle += 1,
            _ => {}
        }
    }
    assert_eq!(access, summary.accepted, "one access record per request");
    assert_eq!(ok + deadline, summary.completed, "completed partition");
    assert_eq!(shed, summary.shed, "shed partition");
    assert_eq!(panicked, summary.failed, "failed partition");
    assert_eq!(boots, 1, "exactly one boot event");
    assert!(lifecycle >= 2, "drain + drained events logged");
    assert_eq!(
        summary.registry.gauge("serve.log_dropped"),
        Some(0.0),
        "nothing overflowed the log queue"
    );
    let _ = std::fs::remove_file(&log_path);
}

// ---------------------------------------------------------------------
// Property: any interleaving of ok/slow/panicking/oversized requests
// keeps the partition exact and /metrics deterministic
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ok,
    Slow,
    Panicking,
    Oversized,
}

fn kind() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Ok),
        Just(Kind::Slow),
        Just(Kind::Panicking),
        Just(Kind::Oversized),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn any_interleaving_keeps_accounting_exact(
        kinds in proptest::collection::vec(kind(), 1..10),
    ) {
        let handle = spawn(test_config(1_000));
        let addr = handle.addr();
        let mut expected_failed = 0u64;
        std::thread::scope(|scope| {
            for k in &kinds {
                let k = *k;
                scope.spawn(move || match k {
                    Kind::Ok => {
                        let (old, new) = figure2_pair();
                        let (status, _, _) =
                            request(addr, "POST", "/mine", &[], &mine_body(old, new));
                        assert_eq!(status, 200);
                    }
                    Kind::Slow => {
                        let (status, _, _) = request(
                            addr,
                            "GET",
                            "/healthz",
                            &[("X-Chaos-Sleep-Ms", "40")],
                            b"",
                        );
                        assert_eq!(status, 200);
                    }
                    Kind::Panicking => {
                        let (status, _, _) =
                            request(addr, "GET", "/healthz", &[("X-Chaos-Panic", "1")], b"");
                        assert_eq!(status, 500);
                    }
                    Kind::Oversized => {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        let head = format!(
                            "POST /mine HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                            64 * 1024 * 1024
                        );
                        stream.write_all(head.as_bytes()).expect("write");
                        let (status, _, _) =
                            read_response(&mut stream).expect("413 must come back");
                        assert_eq!(status, 413);
                    }
                });
                if k == Kind::Panicking {
                    expected_failed += 1;
                }
            }
        });
        let summary = settle_and_shutdown(handle);
        prop_assert_eq!(summary.accepted, kinds.len() as u64);
        prop_assert_eq!(summary.failed, expected_failed);
        prop_assert_eq!(summary.shed, 0, "queue depth 64 never sheds here");
        // /metrics is deterministic: same registry state, same bytes.
        let once = obs::to_prometheus_text(&summary.registry);
        let again = obs::to_prometheus_text(&summary.registry);
        prop_assert_eq!(once, again);
    }
}
