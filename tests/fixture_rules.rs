//! Every curated fixture pair must be classified as a *security fix*
//! by the rule it exercises (rule triggers before, not after), tying
//! the fixture corpus to the Figure 9 rule set.

use analysis::{analyze, ApiModel, Usages};
use corpus::fixtures;
use rules::{all_rules, classify_change, ChangeClass, ProjectContext};

fn usages(src: &str) -> Usages {
    let unit = javalang::parse_compilation_unit(src).unwrap();
    analyze(&unit, &ApiModel::standard())
}

/// (fixture name, rule id it fixes)
const PAIR_RULES: [(&str, &str); 10] = [
    ("ecb-to-cbc", "R7"),
    ("ecb-to-gcm", "R7"),
    ("default-aes-to-cbc", "R7"),
    ("sha1-to-sha256", "R1"),
    ("static-iv-to-random", "R9"),
    ("raise-pbe-iterations", "R2"),
    ("des-to-aes", "R8"),
    ("add-bc-provider", "R5"),
    ("avoid-get-instance-strong", "R4"),
    ("hardcoded-key-to-param", "R10"),
];

#[test]
fn every_fixture_is_a_fix_for_its_rule() {
    let rules = all_rules();
    let ctx = ProjectContext::plain();
    for pair in fixtures::all_fix_pairs() {
        let (_, rule_id) = PAIR_RULES
            .iter()
            .find(|(name, _)| *name == pair.name)
            .unwrap_or_else(|| panic!("no rule mapping for fixture {}", pair.name));
        let rule = rules
            .iter()
            .find(|r| r.id == *rule_id)
            .expect("known rule id");
        let old = usages(pair.old);
        let new = usages(pair.new);
        assert_eq!(
            classify_change(rule, &old, &new, &ctx),
            ChangeClass::Fix,
            "{} should be a fix for {}",
            pair.name,
            rule.id
        );
    }
}

#[test]
fn fixture_rules_do_not_misfire_on_other_fixtures_after_fix() {
    // After each fix, the fixed code must not violate the rule it fixed.
    let rules = all_rules();
    let ctx = ProjectContext::plain();
    for pair in fixtures::all_fix_pairs() {
        let (_, rule_id) = PAIR_RULES
            .iter()
            .find(|(name, _)| *name == pair.name)
            .unwrap();
        let rule = rules.iter().find(|r| r.id == *rule_id).unwrap();
        let new = usages(pair.new);
        assert!(
            !rule.matches(&new, &ctx),
            "{} still violates {} after the fix",
            pair.name,
            rule.id
        );
    }
}

#[test]
fn reversed_fixtures_are_buggy_changes() {
    let rules = all_rules();
    let ctx = ProjectContext::plain();
    for pair in fixtures::all_fix_pairs() {
        let (_, rule_id) = PAIR_RULES
            .iter()
            .find(|(name, _)| *name == pair.name)
            .unwrap();
        let rule = rules.iter().find(|r| r.id == *rule_id).unwrap();
        let old = usages(pair.old);
        let new = usages(pair.new);
        assert_eq!(
            classify_change(rule, &new, &old, &ctx),
            ChangeClass::Bug,
            "reversing {} should be a buggy change for {}",
            pair.name,
            rule.id
        );
    }
}

#[test]
fn suggested_rules_from_all_fixtures_separate_old_from_new() {
    // The §6.3 automation works on every fixture, not just Figure 2.
    // `add-bc-provider` only *adds* a feature (`arg2:BC`) under the
    // abstraction, so it yields a pure addition rather than a
    // modification — exactly why the paper's R5 is phrased as a
    // missing-feature rule.
    let mut dc = diffcode::DiffCode::new();
    for pair in fixtures::all_fix_pairs() {
        let mut modifications = 0usize;
        let mut pure_additions = 0usize;
        for class in analysis::TARGET_CLASSES {
            let changes = dc
                .usage_changes_from_pair(pair.old, pair.new, class)
                .unwrap();
            for (_, _, change) in changes {
                if change.is_same() || change.is_pure_removal() {
                    continue;
                }
                if change.is_pure_addition() {
                    pure_additions += 1;
                    continue;
                }
                let rule = rules::SuggestedRule::from_change(&change);
                let old = usages(pair.old);
                let new = usages(pair.new);
                assert!(rule.matches(&old), "{}: rule must match old", pair.name);
                assert!(!rule.matches(&new), "{}: rule must reject new", pair.name);
                modifications += 1;
            }
        }
        if pair.name == "add-bc-provider" {
            assert_eq!(modifications, 0, "provider fix is addition-only");
            assert!(pure_additions > 0, "{}", pair.name);
        } else {
            assert!(
                modifications > 0,
                "{} produced no modification changes",
                pair.name
            );
        }
    }
}
