//! Clustering integration: the Figure 8 scenario on curated fixtures
//! and on mined corpus data.

use corpus::fixtures;
use diffcode::{elicit, DiffCode, MinedUsageChange};

fn mined(pair: &fixtures::FixPair, class: &str) -> Vec<MinedUsageChange> {
    let mut dc = DiffCode::new();
    dc.usage_changes_from_pair(pair.old, pair.new, class)
        .unwrap()
        .into_iter()
        .filter(|(_, _, c)| !c.is_same())
        .map(|(old_dag, new_dag, change)| MinedUsageChange {
            meta: diffcode::ChangeMeta {
                project: format!("fixtures/{}", pair.name),
                commit: pair.name.to_owned(),
                author: String::new(),
                message: pair.description.to_owned(),
                path: "A.java".into(),
                fingerprint: diffcode::change_fingerprint(pair.old, pair.new),
            },
            class: class.to_owned(),
            old_dag,
            new_dag,
            change,
        })
        .collect()
}

#[test]
fn figure8_ecb_fix_cluster_identifies_rule_r7() {
    let mut changes = Vec::new();
    changes.extend(mined(&fixtures::ECB_TO_CBC, "Cipher"));
    changes.extend(mined(&fixtures::ECB_TO_GCM, "Cipher"));
    changes.extend(mined(&fixtures::DEFAULT_AES_TO_CBC, "Cipher"));
    changes.extend(mined(&fixtures::SHA1_TO_SHA256, "MessageDigest"));
    changes.extend(mined(&fixtures::RAISE_PBE_ITERATIONS, "PBEKeySpec"));
    assert_eq!(changes.len(), 5);

    let elicitation = elicit(&changes, 0.45);
    // The largest cluster groups the three ECB-style fixes (Figure 8).
    let largest = &elicitation.clusters[0];
    assert_eq!(largest.members.len(), 3, "{:?}", elicitation.clusters);
    for &m in &largest.members {
        assert_eq!(changes[m].class, "Cipher");
        assert!(
            changes[m]
                .change
                .removed
                .iter()
                .any(|p| p.to_string().contains("AES")),
            "{}",
            changes[m].change
        );
    }

    // The suggested rule from the cluster representative flags ECB-mode
    // usage — the data-driven analogue of rule R7.
    let suggested = &largest.suggested;
    assert!(
        suggested
            .must_have
            .iter()
            .any(|p| p.to_string().contains("AES")),
        "{suggested}"
    );
}

#[test]
fn unrelated_fixes_stay_in_separate_clusters() {
    let mut changes = Vec::new();
    changes.extend(mined(&fixtures::SHA1_TO_SHA256, "MessageDigest"));
    changes.extend(mined(&fixtures::RAISE_PBE_ITERATIONS, "PBEKeySpec"));
    changes.extend(mined(&fixtures::STATIC_IV_TO_RANDOM, "IvParameterSpec"));
    let n = changes.len();
    assert!(n >= 3);
    let elicitation = elicit(&changes, 0.4);
    assert_eq!(
        elicitation.clusters.len(),
        n,
        "cross-class fixes never merge below a 0.4 cut: {:?}",
        elicitation.clusters
    );
}

#[test]
fn dendrogram_renders_every_change() {
    let mut changes = Vec::new();
    for pair in fixtures::all_fix_pairs() {
        for class in analysis::TARGET_CLASSES {
            changes.extend(mined(&pair, class));
        }
    }
    let elicitation = elicit(&changes, 0.5);
    let rendering = diffcode::render_dendrogram(&changes, &elicitation.dendrogram);
    let leaf_lines = rendering
        .lines()
        .filter(|l| l.trim_start().starts_with("- "))
        .count();
    assert_eq!(leaf_lines, changes.len());
}

#[test]
fn duplicate_fixes_cluster_at_distance_zero() {
    let mut changes = Vec::new();
    changes.extend(mined(&fixtures::ECB_TO_CBC, "Cipher"));
    changes.extend(mined(&fixtures::ECB_TO_CBC, "Cipher"));
    assert_eq!(changes.len(), 2);
    let elicitation = elicit(&changes, 0.0);
    assert_eq!(elicitation.clusters.len(), 1);
    assert!(elicitation.dendrogram.merges[0].distance.abs() < 1e-12);
}
