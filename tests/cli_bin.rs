//! End-to-end tests of the compiled `diffcode` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn diffcode(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_diffcode"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diffcode-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const INSECURE: &str = r#"
class Demo {
    byte[] encrypt(byte[] data, javax.crypto.SecretKey key) throws Exception {
        Cipher c = Cipher.getInstance("AES");
        c.init(Cipher.ENCRYPT_MODE, key);
        return c.doFinal(data);
    }
}
"#;

const SECURE: &str = r#"
class Demo {
    byte[] encrypt(byte[] data, javax.crypto.SecretKey key, byte[] iv) throws Exception {
        Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC");
        c.init(Cipher.ENCRYPT_MODE, key, new GCMParameterSpec(128, iv));
        return c.doFinal(data);
    }
}
"#;

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = diffcode(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_errors() {
    let out = diffcode(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn chaos_prints_exact_accounting() {
    let out = diffcode(&["chaos", "--seed", "7", "--rate", "0.5", "--projects", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chaos run: seed 7"), "{stdout}");
    assert!(stdout.contains("quarantine rate:"), "{stdout}");
    assert!(stdout.contains("accounting exact"), "{stdout}");
}

#[test]
fn chaos_rejects_bad_rate() {
    let out = diffcode(&["chaos", "--rate", "1.5"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not in 0..1"));
}

#[test]
fn rules_prints_figure9() {
    let out = diffcode(&["rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R7"));
    assert!(stdout.contains("R13"));
    assert!(stdout.contains("References:"));
}

#[test]
fn analyze_prints_dag() {
    let path = write_temp("Analyze.java", INSECURE);
    let out = diffcode(&["analyze", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Cipher getInstance arg1:AES"), "{stdout}");
}

#[test]
fn diff_prints_usage_change() {
    let old = write_temp("Old.java", INSECURE);
    let new = write_temp("New.java", SECURE);
    let out = diffcode(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("- Cipher getInstance arg1:AES"), "{stdout}");
    assert!(
        stdout.contains("+ Cipher getInstance arg1:AES/GCM/NoPadding"),
        "{stdout}"
    );
}

#[test]
fn check_exit_codes_reflect_findings() {
    let insecure = write_temp("Insecure.java", INSECURE);
    let out = diffcode(&["check", insecure.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "violations -> exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R7"), "{stdout}");

    let secure = write_temp("Secure.java", SECURE);
    let out = diffcode(&["check", secure.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "clean -> exit 0");
}

#[test]
fn check_android_context_enables_r6() {
    let src = r#"
    class T {
        byte[] token() {
            SecureRandom r = new SecureRandom();
            byte[] b = new byte[16];
            r.nextBytes(b);
            return b;
        }
    }
    "#;
    let path = write_temp("Token.java", src);
    let plain = diffcode(&["check", path.to_str().unwrap()]);
    assert!(!String::from_utf8_lossy(&plain.stdout).contains("R6"));
    let android = diffcode(&["check", path.to_str().unwrap(), "--android", "17"]);
    assert!(
        String::from_utf8_lossy(&android.stdout).contains("R6"),
        "{}",
        String::from_utf8_lossy(&android.stdout)
    );
}

#[test]
fn check_walks_directories() {
    let dir = std::env::temp_dir().join(format!("diffcode-cli-dirtest-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("nested")).unwrap();
    std::fs::write(dir.join("A.java"), INSECURE).unwrap();
    std::fs::write(dir.join("nested/B.java"), SECURE).unwrap();
    std::fs::write(dir.join("README.md"), "not java").unwrap();
    let out = diffcode(&["check", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 file(s)"), "{stdout}");
}

#[test]
fn bad_flag_reports_error() {
    let out = diffcode(&["check", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn check_materialized_generated_project() {
    // Generated corpus -> real files on disk -> the CLI checks them.
    let corpus = corpus::generate(&corpus::GeneratorConfig::small(6, 0xD15C));
    let dir = std::env::temp_dir().join(format!("diffcode-materialize-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let project = &corpus.projects[0];
    let written = project.materialize(&dir).unwrap();
    assert!(!written.is_empty());

    let out = diffcode(&["check", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Exit code 0 or 1 depending on the project's state; never a usage
    // error, and the report must count the right number of files.
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "{stdout} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&format!("{} file(s)", written.len())),
        "{stdout}"
    );
}
