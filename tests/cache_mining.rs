//! Integration tests for the persistent mining cache: warm runs replay
//! identically, version bumps invalidate, mixed corpora re-mine only
//! the new work, and the `processed = mined + skipped` accounting holds
//! under every combination.

use diffcode::{mine_parallel_cached, CachedLookup, MiningCache, MiningResult, ANALYSIS_VERSION};
use obs::MetricsRegistry;
use std::path::PathBuf;

/// A unique, cleaned-up-on-drop temp dir per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "diffcode-cache-mining-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn generated(n_projects: usize, seed: u64) -> corpus::Corpus {
    corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed))
}

/// A corpus whose single commit mixes one minable change with one
/// lex-failing change, so cached runs exercise both outcome variants.
fn corpus_with_skips() -> corpus::Corpus {
    corpus::Corpus {
        projects: vec![corpus::Project {
            user: "u".into(),
            name: "p".into(),
            facts: corpus::ProjectFacts::default(),
            commits: vec![corpus::Commit {
                id: "c1".into(),
                author: String::new(),
                message: "harden crypto".into(),
                changes: vec![
                    corpus::FileChange {
                        path: "Enc.java".into(),
                        old: Some(corpus::fixtures::FIGURE2_OLD.into()),
                        new: Some(corpus::fixtures::FIGURE2_NEW.into()),
                    },
                    corpus::FileChange {
                        path: "Broken.java".into(),
                        old: Some("class A { String s = \"open".into()),
                        new: Some("class A {}".into()),
                    },
                ],
            }],
        }],
    }
}

fn open_cache(dir: &std::path::Path) -> MiningCache {
    MiningCache::open(
        dir,
        &[],
        &diffcode::PipelineLimits::DEFAULT,
        usagegraph::DEFAULT_MAX_DEPTH,
    )
    .expect("open cache")
}

fn mine_with(
    corpus: &corpus::Corpus,
    n_threads: usize,
    cache: Option<&mut MiningCache>,
) -> (MiningResult, MetricsRegistry) {
    let mut registry = MetricsRegistry::new();
    let result = mine_parallel_cached(corpus, &[], n_threads, &mut registry, cache);
    (result, registry)
}

/// The observable content of a mining run, for equality checks across
/// cold/warm and sequential/parallel runs.
fn run_signature(result: &MiningResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:?}", result.stats);
    for mined in &result.changes {
        let _ = writeln!(
            out,
            "{}|{}|{}|{}|{:?}|{:?}|{}",
            mined.meta.project,
            mined.meta.commit,
            mined.meta.path,
            mined.class,
            mined.old_dag,
            mined.new_dag,
            mined.change,
        );
    }
    for report in &result.quarantine {
        let _ = writeln!(
            out,
            "Q {}|{}|{}|{}|{}",
            report.kind, report.meta.project, report.meta.commit, report.meta.path, report.error,
        );
    }
    out
}

#[test]
fn warm_run_is_identical_and_hits_everything() {
    let tmp = TempDir::new("warm");
    let corpus = generated(6, 42);

    let mut cache = open_cache(&tmp.0);
    let (cold, cold_reg) = mine_with(&corpus, 4, Some(&mut cache));
    cache.flush().unwrap();
    assert_eq!(
        cold_reg.counter("cache.miss"),
        cold.stats.code_changes as u64,
        "cold run misses everything"
    );
    assert_eq!(cold_reg.counter("cache.hit"), 0);

    let mut cache = open_cache(&tmp.0);
    let (warm, warm_reg) = mine_with(&corpus, 4, Some(&mut cache));
    assert_eq!(
        warm_reg.counter("cache.hit"),
        warm.stats.code_changes as u64,
        "warm run hits everything"
    );
    assert_eq!(warm_reg.counter("cache.miss"), 0);
    assert_eq!(run_signature(&cold), run_signature(&warm));

    // The acceptance bar: ≥95% of analysis work skipped on the warm run.
    let lookups = warm_reg.counter("cache.hit")
        + warm_reg.counter("cache.miss")
        + warm_reg.counter("cache.stale_version");
    assert!(
        warm_reg.counter("cache.hit") as f64 >= 0.95 * lookups as f64,
        "hit rate below 95%: {warm_reg:?}"
    );
}

#[test]
fn version_bump_invalidates_every_entry() {
    let tmp = TempDir::new("version");
    let corpus = generated(4, 7);

    let mut cache = open_cache(&tmp.0);
    let (cold, _) = mine_with(&corpus, 2, Some(&mut cache));
    cache.flush().unwrap();
    let old_entries = cache.store().stats().current_entries;
    assert!(old_entries > 0);
    assert_eq!(old_entries, cold.stats.code_changes);

    // Same store, next analysis version: every cached entry is stale.
    let mut bumped = MiningCache::open_at_version(
        &tmp.0,
        &[],
        &diffcode::PipelineLimits::DEFAULT,
        usagegraph::DEFAULT_MAX_DEPTH,
        ANALYSIS_VERSION + 1,
    )
    .unwrap();
    let (rerun, reg) = mine_with(&corpus, 2, Some(&mut bumped));
    assert_eq!(
        reg.counter("cache.stale_version"),
        old_entries as u64,
        "every old entry must be reported stale, not silently missed"
    );
    assert_eq!(reg.counter("cache.hit"), 0);
    assert_eq!(run_signature(&cold), run_signature(&rerun));

    // The recomputed outcomes were re-recorded under the new version
    // and supersede the stale entries in the index (last-write-wins);
    // the old records survive only on disk until vacuum drops them.
    bumped.flush().unwrap();
    let stats = bumped.store().stats();
    assert_eq!(stats.current_entries, old_entries);
    assert_eq!(stats.stale_entries, 0);
    let report = bumped.store_mut().vacuum().unwrap();
    assert_eq!(report.kept, old_entries);
    assert_eq!(
        report.dropped_records, old_entries,
        "one superseded old-version record per key"
    );
    assert!(report.bytes_after < report.bytes_before);
}

#[test]
fn mixed_corpus_only_mines_the_new_work() {
    let tmp = TempDir::new("mixed");
    let known = generated(4, 11);
    let fresh = generated(3, 1213);

    let mut cache = open_cache(&tmp.0);
    let (first, _) = mine_with(&known, 2, Some(&mut cache));
    cache.flush().unwrap();

    let mut combined = known.clone();
    combined.projects.extend(fresh.projects.clone());

    let mut cache = open_cache(&tmp.0);
    let (second, reg) = mine_with(&combined, 2, Some(&mut cache));
    cache.flush().unwrap();

    // Every change from the known half replays from the cache; only the
    // fresh half (minus any cross-corpus duplicate file pairs, which
    // also hit) is recomputed.
    assert!(
        reg.counter("cache.hit") >= first.stats.code_changes as u64,
        "known half must hit: {reg:?}"
    );
    assert_eq!(
        reg.counter("cache.hit") + reg.counter("cache.miss"),
        second.stats.code_changes as u64
    );

    // The combined run's result is what an uncached run produces.
    let (uncached, _) = mine_with(&combined, 2, None);
    assert_eq!(run_signature(&second), run_signature(&uncached));
}

#[test]
fn editing_one_project_remines_only_its_changes() {
    let tmp = TempDir::new("edit");
    let corpus = generated(5, 23);

    let mut cache = open_cache(&tmp.0);
    let (_, _) = mine_with(&corpus, 2, Some(&mut cache));
    cache.flush().unwrap();

    // Touch every file change of the first project (a trailing comment
    // changes the bytes, hence the key, of each pair).
    let mut edited = corpus.clone();
    let mut touched = 0u64;
    for commit in &mut edited.projects[0].commits {
        for change in &mut commit.changes {
            if let Some(new) = &mut change.new {
                new.push_str("\n// touched\n");
                touched += 1;
            }
        }
    }
    assert!(touched > 0);

    let mut cache = open_cache(&tmp.0);
    let (result, reg) = mine_with(&edited, 2, Some(&mut cache));
    let misses = reg.counter("cache.miss");
    // At most the touched changes recompute (identical template pairs
    // inside the edited project dedupe below that), and nothing else.
    assert!(
        misses > 0 && misses <= touched,
        "only the edited project's changes recompute: {misses} vs {touched}"
    );
    assert_eq!(
        reg.counter("cache.hit"),
        result.stats.code_changes as u64 - misses
    );
    assert!(result.stats.is_balanced());
}

#[test]
fn cached_skips_stay_skipped_and_accounting_balances() {
    let tmp = TempDir::new("skips");
    let corpus = corpus_with_skips();

    let mut cache = open_cache(&tmp.0);
    let (cold, cold_reg) = mine_with(&corpus, 1, Some(&mut cache));
    cache.flush().unwrap();
    assert!(cold.stats.is_balanced());
    assert_eq!(cold.stats.code_changes, 2);
    assert_eq!(cold.stats.mined, 1);
    assert_eq!(cold.stats.skipped.total(), 1);
    assert_eq!(cold.quarantine.len(), 1);

    let mut cache = open_cache(&tmp.0);
    let (warm, warm_reg) = mine_with(&corpus, 1, Some(&mut cache));
    assert_eq!(warm_reg.counter("cache.hit"), 2, "the skip is cached too");
    assert!(warm.stats.is_balanced());
    assert_eq!(run_signature(&cold), run_signature(&warm));
    assert_eq!(warm.quarantine.len(), 1, "cached skips stay quarantined");
    assert_eq!(warm.quarantine[0].kind, cold.quarantine[0].kind);

    // The registry partition holds on both runs.
    for reg in [&cold_reg, &warm_reg] {
        assert_eq!(
            reg.counter("mine.code_changes"),
            reg.counter("mine.mined") + reg.counter("mine.skipped"),
            "{reg:?}"
        );
    }
}

#[test]
fn sequential_and_parallel_agree_through_the_cache() {
    let tmp_seq = TempDir::new("seq");
    let tmp_par = TempDir::new("par");
    let corpus = generated(5, 99);

    let mut seq_cache = open_cache(&tmp_seq.0);
    let (seq, _) = mine_with(&corpus, 1, Some(&mut seq_cache));
    seq_cache.flush().unwrap();

    let mut par_cache = open_cache(&tmp_par.0);
    let (par, _) = mine_with(&corpus, 4, Some(&mut par_cache));
    par_cache.flush().unwrap();

    assert_eq!(run_signature(&seq), run_signature(&par));

    // Both caches saw the same work; a warm cross-read agrees: replay
    // the sequential run against the cache the parallel run built.
    let seq_store = open_cache(&tmp_seq.0);
    let par_store = open_cache(&tmp_par.0);
    assert_eq!(
        seq_store.store().stats().current_entries,
        par_store.store().stats().current_entries
    );
    let (cross, reg) = mine_with(&corpus, 1, Some(&mut open_cache(&tmp_par.0)));
    assert_eq!(reg.counter("cache.hit"), cross.stats.code_changes as u64);
    assert_eq!(run_signature(&seq), run_signature(&cross));
}

#[test]
fn view_lookup_roundtrips_through_flushed_store() {
    let tmp = TempDir::new("view");
    let corpus = corpus_with_skips();
    let mut cache = open_cache(&tmp.0);
    let (_, _) = mine_with(&corpus, 1, Some(&mut cache));
    cache.flush().unwrap();

    // Re-open and probe one known change directly through a view.
    let cache = open_cache(&tmp.0);
    let view = cache.view();
    let key = view.change_key(corpus::fixtures::FIGURE2_OLD, corpus::fixtures::FIGURE2_NEW);
    match view.get(key) {
        CachedLookup::Hit(diffcode::ChangeOutcome::Mined(tuples)) => {
            assert!(!tuples.is_empty());
            assert_eq!(tuples[0].0, "Cipher");
        }
        other => panic!("expected a mined hit, got {other:?}"),
    }
}
