//! End-to-end ground truth: the entire pipeline on the hand-written
//! golden corpus (no generator involved).

use corpus::golden_corpus;
use diffcode::{elicit, stage_changes, Experiments, FilterStage};
use rules::CryptoChecker;

#[test]
fn mining_counts_match_hand_counted_truth() {
    let exp = Experiments::new(golden_corpus());
    // messenger: 3 evolution commits; vault: 2; gateway: 1 → 6 code changes.
    assert_eq!(exp.code_changes(), 6);
}

#[test]
fn refactoring_and_doc_commits_are_fully_filtered() {
    let exp = Experiments::new(golden_corpus());
    for (stage, change) in stage_changes(exp.mined_changes()) {
        let msg = &change.meta.message;
        if msg.starts_with("Rename") || msg.starts_with("Document") {
            assert_eq!(
                stage,
                FilterStage::FSame,
                "'{msg}' must be non-semantic, got {stage:?} for {}",
                change.change
            );
        }
    }
}

#[test]
fn every_modification_fix_survives() {
    let exp = Experiments::new(golden_corpus());
    let mut surviving_fix_commits = std::collections::BTreeSet::new();
    let mut added_usage_fix = false;
    for (stage, change) in stage_changes(exp.mined_changes()) {
        if !change.meta.message.starts_with("Security:") {
            continue;
        }
        match stage {
            FilterStage::Remaining => {
                surviving_fix_commits.insert(change.meta.commit.clone());
            }
            FilterStage::FAdd => added_usage_fix = true,
            _ => {}
        }
    }
    // The three *modification* fixes (GCM switch, SHA-256 switch, PBE
    // fix) survive filtering.
    assert_eq!(surviving_fix_commits.len(), 3, "{surviving_fix_commits:?}");
    // The HMAC fix *adds* a usage, so — exactly like the paper's fadd —
    // it is filtered as a pure addition. (R13 is elicited from
    // cipher-switch changes, not from Mac additions.)
    assert!(added_usage_fix, "the gateway HMAC fix is a pure addition");
}

#[test]
fn gcm_fix_has_expected_features() {
    let exp = Experiments::new(golden_corpus());
    let gcm_fix = exp
        .mined_changes()
        .iter()
        .find(|c| c.meta.message.contains("AES/GCM") && c.class == "Cipher" && !c.change.is_same())
        .expect("the messenger GCM fix");
    let removed: Vec<String> = gcm_fix
        .change
        .removed
        .iter()
        .map(|p| p.to_string())
        .collect();
    let added: Vec<String> = gcm_fix.change.added.iter().map(|p| p.to_string()).collect();
    assert!(
        removed.contains(&"Cipher getInstance arg1:AES".to_owned()),
        "{removed:?}"
    );
    assert!(
        added.contains(&"Cipher getInstance arg1:AES/GCM/NoPadding".to_owned()),
        "{added:?}"
    );
    assert!(
        added.iter().any(|p| p.contains("arg3:GCMParameterSpec")),
        "{added:?}"
    );
}

#[test]
fn checker_verdicts_before_and_after_history() {
    let corpus = golden_corpus();
    let checker = CryptoChecker::standard();

    // At HEAD, messenger is fixed (no R7, no R1), vault is fixed
    // (no R2/R11), and gateway has an HMAC (no R13).
    let mut exp = Experiments::new(corpus.clone());
    let projects = exp.checked_projects();
    let by_name = |name: &str| {
        projects
            .iter()
            .find(|p| p.name.contains(name))
            .unwrap_or_else(|| panic!("project {name}"))
    };

    let messenger = checker.violations(by_name("messenger"));
    assert!(!messenger.contains(&"R7".to_owned()), "{messenger:?}");
    assert!(!messenger.contains(&"R1".to_owned()), "{messenger:?}");
    // The default-constructed SecureRandom still trips R3 — by design.
    assert!(messenger.contains(&"R3".to_owned()), "{messenger:?}");

    let vault = checker.violations(by_name("vault"));
    assert!(!vault.contains(&"R2".to_owned()), "{vault:?}");
    assert!(!vault.contains(&"R11".to_owned()), "{vault:?}");

    let gateway = checker.violations(by_name("gateway"));
    assert!(!gateway.contains(&"R13".to_owned()), "{gateway:?}");

    // On the *initial* versions the violations are all present.
    let initial = corpus::Corpus {
        projects: corpus
            .projects
            .iter()
            .map(|p| corpus::Project {
                user: p.user.clone(),
                name: p.name.clone(),
                facts: p.facts,
                commits: vec![p.commits[0].clone()],
            })
            .collect(),
    };
    let mut exp0 = Experiments::new(initial);
    let projects0 = exp0.checked_projects();
    let by_name0 = |name: &str| projects0.iter().find(|p| p.name.contains(name)).unwrap();
    let messenger0 = checker.violations(by_name0("messenger"));
    assert!(messenger0.contains(&"R7".to_owned()), "{messenger0:?}");
    assert!(messenger0.contains(&"R1".to_owned()), "{messenger0:?}");
    assert!(
        messenger0.contains(&"R9".to_owned()),
        "static IV: {messenger0:?}"
    );
    let vault0 = checker.violations(by_name0("vault"));
    assert!(vault0.contains(&"R2".to_owned()), "{vault0:?}");
    assert!(vault0.contains(&"R11".to_owned()), "{vault0:?}");
    let gateway0 = checker.violations(by_name0("gateway"));
    assert!(gateway0.contains(&"R13".to_owned()), "{gateway0:?}");
}

#[test]
fn fixes_cluster_by_kind() {
    let exp = Experiments::new(golden_corpus());
    let semantic: Vec<_> = exp
        .mined_changes()
        .iter()
        .filter(|c| {
            !c.change.is_same() && !c.change.is_pure_addition() && !c.change.is_pure_removal()
        })
        .cloned()
        .collect();
    assert!(semantic.len() >= 3, "{}", semantic.len());
    let elicitation = elicit(&semantic, 0.45);
    // Distinct fix kinds (GCM switch, SHA-256 switch, PBE fix) do not
    // collapse into one cluster.
    assert!(
        elicitation.clusters.len() >= 3,
        "{:?}",
        elicitation
            .clusters
            .iter()
            .map(|c| c.members.clone())
            .collect::<Vec<_>>()
    );
}
