//! End-to-end pipeline integration: corpus generation → mining →
//! abstraction → filtering → clustering → checking, on a mid-sized
//! seeded corpus.

use corpus::{generate, GeneratorConfig};
use diffcode::{Experiments, FilterStage};

fn experiments() -> Experiments {
    Experiments::new(generate(&GeneratorConfig::small(30, 0xE2E)))
}

#[test]
fn mining_is_deterministic() {
    let a = experiments();
    let b = experiments();
    assert_eq!(a.mined_changes().len(), b.mined_changes().len());
    assert_eq!(a.code_changes(), b.code_changes());
    for (x, y) in a.mined_changes().iter().zip(b.mined_changes()) {
        assert_eq!(x.change, y.change);
        assert_eq!(x.meta.commit, y.meta.commit);
    }
}

#[test]
fn every_code_change_is_processed() {
    let exp = experiments();
    // 30 projects × (1 initial + 18..=32 evolution commits), each with
    // exactly one old+new pair per evolution commit.
    assert!(exp.code_changes() >= 30 * 18);
    assert!(exp.code_changes() <= 30 * 33);
}

#[test]
fn filter_funnel_shape_matches_paper() {
    let exp = experiments();
    let rows = exp.figure6();
    let total: usize = rows.iter().map(|r| r.stats.total).sum();
    let semantic: usize = rows.iter().map(|r| r.stats.after_fsame).sum();
    let surviving: usize = rows.iter().map(|r| r.stats.after_fdup).sum();
    assert!(
        total > 500,
        "corpus yields plenty of usage changes: {total}"
    );
    // fsame removes the overwhelming majority (paper: >97%).
    assert!(
        (semantic as f64) < 0.2 * total as f64,
        "semantic={semantic} total={total}"
    );
    // The full funnel removes >99%-ish and leaves a small reviewable set.
    assert!(surviving < semantic);
    assert!(surviving > 0);
}

#[test]
fn security_fix_commits_survive_filtering() {
    let exp = experiments();
    let staged = diffcode::stage_changes(exp.mined_changes());
    // Every commit whose message marks it as a security fix must have
    // at least one usage change that is NOT filtered as non-semantic.
    use std::collections::{BTreeMap, BTreeSet};
    let mut fix_commits: BTreeSet<&str> = BTreeSet::new();
    let mut semantic_commits: BTreeMap<&str, usize> = BTreeMap::new();
    for (stage, change) in &staged {
        if change.meta.message.starts_with("Security:") {
            fix_commits.insert(change.meta.commit.as_str());
            if !matches!(stage, FilterStage::FSame) {
                *semantic_commits
                    .entry(change.meta.commit.as_str())
                    .or_default() += 1;
            }
        }
    }
    assert!(!fix_commits.is_empty(), "corpus contains security fixes");
    for commit in &fix_commits {
        assert!(
            semantic_commits.contains_key(commit),
            "fix commit {commit} was entirely filtered by fsame"
        );
    }
}

#[test]
fn refactoring_commits_are_fully_non_semantic() {
    let exp = experiments();
    let staged = diffcode::stage_changes(exp.mined_changes());
    let mut refactor_total = 0usize;
    let mut refactor_semantic = 0usize;
    for (stage, change) in &staged {
        if change.meta.message.starts_with("Refactor") {
            refactor_total += 1;
            if !matches!(stage, FilterStage::FSame) {
                refactor_semantic += 1;
            }
        }
    }
    assert!(refactor_total > 50, "corpus contains refactorings");
    assert_eq!(
        refactor_semantic, 0,
        "the abstraction must see refactorings as identical"
    );
}

#[test]
fn clustering_filtered_changes_terminates_with_sane_tree() {
    let exp = experiments();
    let fig8 = exp.figure8("Cipher", 0.45);
    let n = fig8.filtered.len();
    if n > 1 {
        assert_eq!(fig8.elicitation.dendrogram.merges.len(), n - 1);
    }
    let in_clusters: usize = fig8
        .elicitation
        .clusters
        .iter()
        .map(|c| c.members.len())
        .sum();
    assert_eq!(in_clusters, n, "clusters partition the leaves");
}
