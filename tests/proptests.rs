//! Property-based tests over the core data structures and invariants.

use absdomain::AValue;
use cluster::{agglomerate, label_similarity, levenshtein, path_dist, paths_dist};
use proptest::prelude::*;
use usagegraph::matching::min_cost_assignment;
use usagegraph::{FeaturePath, UsageDag};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn avalue() -> impl Strategy<Value = AValue> {
    prop_oneof![
        any::<i64>().prop_map(AValue::Int),
        Just(AValue::TopInt),
        "[a-zA-Z/]{0,12}".prop_map(|s| AValue::Str(s.into())),
        Just(AValue::TopStr),
        Just(AValue::ConstByte),
        Just(AValue::TopByte),
        Just(AValue::ConstByteArray),
        Just(AValue::TopByteArray),
        any::<bool>().prop_map(AValue::Bool),
        Just(AValue::Null),
        Just(AValue::Unknown),
        ("[A-Z][a-zA-Z]{0,8}", "[A-Z_]{1,10}").prop_map(|(class, name)| AValue::ApiConst {
            class: class.into(),
            name: name.into(),
        }),
    ]
}

fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("getInstance".to_owned()),
        Just("init".to_owned()),
        Just("<init>".to_owned()),
        "arg[1-3]:[A-Za-z/\\-0-9]{1,14}",
        Just("arg1:\u{22a4}byte[]".to_owned()),
        Just("arg1:constbyte[]".to_owned()),
    ]
}

fn feature_path() -> impl Strategy<Value = FeaturePath> {
    proptest::collection::vec(label(), 1..5).prop_map(|mut labels| {
        labels.insert(0, "Cipher".to_owned());
        FeaturePath(labels.into_iter().map(usagegraph::Label::from).collect())
    })
}

fn usage_dag() -> impl Strategy<Value = UsageDag> {
    proptest::collection::btree_set(feature_path(), 0..8).prop_map(|mut paths| {
        paths.insert(FeaturePath(vec![usagegraph::Label::from("Cipher")]));
        UsageDag {
            root_type: "Cipher".into(),
            paths,
        }
    })
}

// ---------------------------------------------------------------------
// absdomain: join is a semilattice (on the value level)
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn join_is_idempotent(v in avalue()) {
        prop_assert_eq!(v.clone().join(v.clone()), v);
    }

    #[test]
    fn join_is_commutative(a in avalue(), b in avalue()) {
        prop_assert_eq!(a.clone().join(b.clone()), b.join(a));
    }

    #[test]
    fn join_is_associative(a in avalue(), b in avalue(), c in avalue()) {
        let left = a.clone().join(b.clone()).join(c.clone());
        let right = a.join(b.join(c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn join_absorbs_toward_top(a in avalue(), b in avalue()) {
        let joined = a.clone().join(b);
        // Joining again with one operand changes nothing.
        prop_assert_eq!(joined.clone().join(a), joined);
    }
}

// ---------------------------------------------------------------------
// Levenshtein / label similarity
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-z]{0,12}",
        b in "[a-z]{0,12}",
        c in "[a-z]{0,12}",
    ) {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let cv: Vec<char> = c.chars().collect();
        let ab = levenshtein(&av, &bv);
        let ba = levenshtein(&bv, &av);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(levenshtein(&av, &av), 0, "identity");
        let ac = levenshtein(&av, &cv);
        let cb = levenshtein(&cv, &bv);
        prop_assert!(ab <= ac + cb, "triangle: {} > {} + {}", ab, ac, cb);
        prop_assert!(ab <= av.len().max(bv.len()), "upper bound");
    }

    #[test]
    fn label_similarity_bounded_symmetric(a in label(), b in label()) {
        let ab = label_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - label_similarity(&b, &a)).abs() < 1e-12);
        prop_assert!((label_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------
// Path and path-set distances
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn path_dist_bounded_symmetric_identity(p in feature_path(), q in feature_path()) {
        let pq = path_dist(&p, &q);
        prop_assert!((0.0..=1.0).contains(&pq));
        prop_assert!((pq - path_dist(&q, &p)).abs() < 1e-12);
        prop_assert!(path_dist(&p, &p).abs() < 1e-12);
        if p != q {
            prop_assert!(pq > 0.0, "distinct paths have positive distance");
        }
    }

    #[test]
    fn paths_dist_zero_iff_permutation(
        paths in proptest::collection::vec(feature_path(), 0..5)
    ) {
        let mut shuffled = paths.clone();
        shuffled.reverse();
        prop_assert!(paths_dist(&paths, &shuffled).abs() < 1e-9);
    }

    #[test]
    fn paths_dist_unmatched_costs_one(
        paths in proptest::collection::vec(feature_path(), 1..5)
    ) {
        let d = paths_dist(&paths, &[]);
        prop_assert!((d - paths.len() as f64).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Usage DAGs: IoU distance
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dag_distance_is_bounded_symmetric(a in usage_dag(), b in usage_dag()) {
        let ab = a.distance(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - b.distance(&a)).abs() < 1e-12);
        prop_assert!(a.distance(&a).abs() < 1e-12);
    }

    #[test]
    fn dag_distance_never_one_for_same_root(a in usage_dag(), b in usage_dag()) {
        // Both share the root path, so the intersection is non-empty.
        prop_assert!(a.distance(&b) < 1.0);
    }
}

// ---------------------------------------------------------------------
// Hungarian assignment
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn assignment_is_permutation_and_not_worse_than_samples(
        n in 1usize..6,
        values in proptest::collection::vec(0.0f64..1.0, 36),
    ) {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| values[i * 6 + j]).collect())
            .collect();
        let (assignment, total) = min_cost_assignment(&cost);
        let mut sorted = assignment.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "permutation");

        // Identity and reverse permutations can never beat the optimum.
        let identity: f64 = (0..n).map(|i| cost[i][i]).sum();
        let reverse: f64 = (0..n).map(|i| cost[i][n - 1 - i]).sum();
        prop_assert!(total <= identity + 1e-9);
        prop_assert!(total <= reverse + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Hierarchical clustering
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dendrogram_structure(coords in proptest::collection::vec(0.0f64..100.0, 1..12)) {
        let n = coords.len();
        let d = agglomerate(n, |i, j| (coords[i] - coords[j]).abs());
        prop_assert_eq!(d.n_leaves, n);
        prop_assert_eq!(d.merges.len(), n - 1);
        // Complete linkage produces monotone merge distances.
        for w in d.merges.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-9);
        }
        // Any cut partitions the leaves.
        for threshold in [0.0, 1.0, 50.0, f64::INFINITY] {
            let clusters = d.cut(threshold);
            let total: usize = clusters.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
        }
        prop_assert_eq!(d.cut(f64::INFINITY).len(), 1);
    }
}

// ---------------------------------------------------------------------
// Parser: printing and re-parsing generated corpus code is stable
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn corpus_sources_roundtrip_through_printer(seed in 0u64..5000) {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(1, seed));
        let change = corpus.code_changes().next();
        if let Some(change) = change {
            let unit1 = javalang::parse_compilation_unit(change.new).unwrap();
            let printed1 = javalang::pretty_print(&unit1);
            let unit2 = javalang::parse_compilation_unit(&printed1).unwrap();
            let printed2 = javalang::pretty_print(&unit2);
            prop_assert_eq!(printed1, printed2);
        }
    }

    #[test]
    fn printed_normal_form_is_arena_fixed_point(seed in 0u64..5000) {
        // Once a unit has been printed and re-parsed, it has reached the
        // printer's normal form: parsing that form again must be a true
        // fixed point *at the arena level* — identical text AND
        // identical expression/statement arena sizes. This pins the
        // arena representation against silently accumulating orphan
        // slots (from speculative parses) or dropping nodes on a
        // round-trip: normal-form text must always re-parse into an
        // arena of the same shape.
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(1, seed));
        let change = corpus.code_changes().next();
        if let Some(change) = change {
            let unit1 = javalang::parse_compilation_unit(change.old).unwrap();
            let unit2 = javalang::parse_compilation_unit(
                &javalang::pretty_print(&unit1)).unwrap();
            let printed2 = javalang::pretty_print(&unit2);
            let unit3 = javalang::parse_compilation_unit(&printed2).unwrap();
            prop_assert_eq!(&javalang::pretty_print(&unit3), &printed2);
            prop_assert_eq!(unit3.ast.expr_count(), unit2.ast.expr_count());
            prop_assert_eq!(unit3.ast.stmt_count(), unit2.ast.stmt_count());
        }
    }

    #[test]
    fn filter_funnel_is_monotone(seed in 0u64..3000, n_projects in 1usize..4) {
        // Figure 6's funnel only ever narrows: every stage passes a
        // subset of its input, and the final count is what callers get.
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed));
        let mut dc = diffcode::DiffCode::new();
        let mined = dc.mine(&corpus, &["Cipher", "SecureRandom", "MessageDigest"]);
        let (kept, stats) = diffcode::apply_filters(mined.changes);
        prop_assert!(stats.total >= stats.after_fsame);
        prop_assert!(stats.after_fsame >= stats.after_fadd);
        prop_assert!(stats.after_fadd >= stats.after_frem);
        prop_assert!(stats.after_frem >= stats.after_fdup);
        prop_assert_eq!(stats.after_fdup, kept.len());
        prop_assert!(stats.is_monotone());

        // And the metrics-publishing variant reports the same funnel.
        let mined = diffcode::DiffCode::new()
            .mine(&corpus, &["Cipher", "SecureRandom", "MessageDigest"]);
        let mut registry = obs::MetricsRegistry::new();
        let (kept2, stats2) =
            diffcode::apply_filters_with_metrics(mined.changes, &mut registry);
        prop_assert_eq!(kept2.len(), kept.len());
        prop_assert_eq!(stats2.total, stats.total);
        prop_assert_eq!(registry.counter("filter.total"), stats.total as u64);
        prop_assert_eq!(registry.counter("filter.after_fdup"), stats.after_fdup as u64);
        prop_assert!(obs::check_funnel(
            &registry,
            &["filter.total", "filter.after_fsame", "filter.after_fadd",
              "filter.after_frem", "filter.after_fdup"],
        ).is_ok());
    }

    #[test]
    fn filters_are_idempotent(seed in 0u64..2000) {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(2, seed));
        let mut dc = diffcode::DiffCode::new();
        let mined = dc.mine(&corpus, &["Cipher", "SecureRandom"]);
        let (once, stats1) = diffcode::apply_filters(mined.changes);
        let n_once = once.len();
        let (twice, stats2) = diffcode::apply_filters(once);
        prop_assert_eq!(n_once, twice.len());
        prop_assert_eq!(stats1.after_fdup, stats2.total);
        prop_assert_eq!(stats2.total, stats2.after_fdup, "already filtered");
    }
}

// ---------------------------------------------------------------------
// Robustness: the front end and analyzer never panic on mangled input
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn parser_never_panics_on_mutated_sources(
        seed in 0u64..500,
        cut_start in 0usize..2000,
        cut_len in 0usize..200,
        splice in proptest::option::of("[ -~]{0,40}"),
    ) {
        let corpus = corpus::generate(&corpus::GeneratorConfig::small(1, seed));
        let Some(change) = corpus.code_changes().next() else { return Ok(()) };
        let mut source = change.new.to_owned();
        // Cut a byte range (clamped to char boundaries).
        let start = source
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|i| *i <= cut_start.min(source.len()))
            .last()
            .unwrap_or(0);
        let end = source
            .char_indices()
            .map(|(i, _)| i)
            .find(|i| *i >= (start + cut_len).min(source.len()))
            .unwrap_or(source.len());
        source.replace_range(start..end, splice.as_deref().unwrap_or(""));

        // Must not panic; errors and diagnostics are fine.
        if let Ok(unit) = javalang::parse_snippet(&source) {
            let _ = analysis::analyze(&unit, &analysis::ApiModel::standard());
        }
    }

    #[test]
    fn analyzer_never_panics_on_random_ascii(source in "[ -~\n]{0,300}") {
        if let Ok(unit) = javalang::parse_snippet(&source) {
            let usages = analysis::analyze(&unit, &analysis::ApiModel::standard());
            // And the downstream DAG construction holds up too.
            for class in analysis::TARGET_CLASSES {
                for site in usages.objects_of_type(class) {
                    let _ = usagegraph::build_dag(&usages, site, 5);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Robustness: the budgeted pipeline is total on raw byte soup
// ---------------------------------------------------------------------

/// Tight budgets: any hang or blow-up under these is a bug, not load.
fn soup_limits() -> javalang::Limits {
    javalang::Limits {
        max_source_bytes: 4096,
        max_tokens: 512,
        max_token_bytes: 64,
        max_nesting: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn budgeted_pipeline_is_total_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        // Arbitrary bytes, including invalid UTF-8 (lossily replaced),
        // NULs, and control characters. Every stage must return — Ok or
        // a typed Err — never panic, hang, or overflow the stack.
        let source = String::from_utf8_lossy(&bytes);
        let _ = javalang::lex(&source);
        let limits = analysis::AnalysisLimits { max_steps: 10_000, max_ast_depth: 64 };
        if let Ok(unit) = javalang::parse_snippet_with_limits(&source, soup_limits()) {
            if let Ok(usages) =
                analysis::try_analyze(&unit, &analysis::ApiModel::standard(), &limits)
            {
                let dag_limits = usagegraph::DagLimits {
                    max_paths: 256,
                    max_objects: 32,
                    ..usagegraph::DagLimits::DEFAULT
                };
                for class in analysis::TARGET_CLASSES {
                    let _ = usagegraph::try_dags_for_class(&usages, class, &dag_limits);
                }
            }
        }
    }

    #[test]
    fn mining_is_total_on_byte_soup_pairs(
        old in proptest::collection::vec(any::<u8>(), 0..400),
        new in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        // Same property one level up: a whole corpus made of garbage
        // mines to an exactly-accounted result, never an abort.
        let corpus = corpus::Corpus {
            projects: vec![corpus::Project {
                user: "soup".into(),
                name: "soup".into(),
                facts: corpus::ProjectFacts::default(),
                commits: vec![corpus::Commit {
                    id: "deadbeef".into(),
                    author: String::new(),
                    message: "garbage".into(),
                    changes: vec![corpus::FileChange {
                        path: "A.java".into(),
                        old: Some(String::from_utf8_lossy(&old).into_owned()),
                        new: Some(String::from_utf8_lossy(&new).into_owned()),
                    }],
                }],
            }],
        };
        let result = diffcode::DiffCode::new().mine(&corpus, &[]);
        prop_assert!(result.stats.is_balanced());
        prop_assert_eq!(result.quarantine.len(), result.stats.skipped.total());
    }
}

// ---------------------------------------------------------------------
// Quarantine excerpts: UTF-8 safe on any byte soup
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// `quarantine::excerpt` truncates on char boundaries: for any
    /// input — including multibyte scalars straddling the 80-char cap
    /// and lossily-decoded byte soup — the excerpt is one sanitized
    /// line of at most 80 chars (81 with the ellipsis), never a panic
    /// from slicing mid-scalar and never a control character.
    #[test]
    fn excerpt_is_utf8_safe_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        multibyte in "[\u{e9}\u{4e2d}\u{1F510}a \n]{0,200}",
    ) {
        for source in [String::from_utf8_lossy(&bytes).into_owned(), multibyte] {
            let e = diffcode::quarantine::excerpt(&source);
            let n = e.chars().count();
            prop_assert!(n <= 81, "{n} chars from {source:?}");
            if n == 81 {
                prop_assert!(e.ends_with('…'));
            }
            prop_assert!(
                e.chars().all(|c| !c.is_control()),
                "control char leaked into {e:?}"
            );
            prop_assert!(!e.contains('\n'), "excerpt is a single line");
            // Truncation preserved the line's leading chars verbatim
            // (modulo control-char replacement).
            let line: String = source
                .lines()
                .find(|l| !l.trim().is_empty())
                .unwrap_or("")
                .trim_end()
                .chars()
                .take(80)
                .map(|c| if c.is_control() { '\u{b7}' } else { c })
                .collect();
            prop_assert!(e.strip_suffix('…').unwrap_or(&e) == line);
        }
    }
}

// ---------------------------------------------------------------------
// Budget boundaries are exact: a budget of N passes, N-1 rejects
// ---------------------------------------------------------------------

#[test]
fn nesting_budget_boundary_is_exact() {
    // Find the minimal nesting budget under which the source parses
    // *cleanly* (a type, no recovery diagnostics), then pin the
    // boundary: one level less must reject the deep expression — as a
    // hard NestingTooDeep error or an error-tolerant recovery that
    // records it — and one more paren pair in the source must shift
    // the boundary by exactly one level.
    let source_at = |parens: usize| {
        format!(
            "class A {{ int x = {}1{}; }}",
            "(".repeat(parens),
            ")".repeat(parens)
        )
    };
    let parse = |source: &str, n: usize| {
        javalang::parse_compilation_unit_with_limits(
            source,
            javalang::Limits {
                max_nesting: n,
                ..javalang::Limits::UNBOUNDED
            },
        )
    };
    let min_clean_budget = |source: &str| {
        (1..512)
            .find(|n| {
                parse(source, *n).is_ok_and(|u| !u.types.is_empty() && u.diagnostics.is_empty())
            })
            .expect("source must parse under some budget")
    };
    let shallow = source_at(8);
    let n = min_clean_budget(&shallow);
    match parse(&shallow, n - 1) {
        Err(e) => assert_eq!(e.kind(), javalang::ParseErrorKind::NestingTooDeep),
        Ok(unit) => {
            assert!(
                unit.diagnostics
                    .iter()
                    .any(|d| d.message.contains("nesting")),
                "recovery must record the overrun: {:?}",
                unit.diagnostics
            );
        }
    }
    assert_eq!(
        min_clean_budget(&source_at(9)),
        n + 1,
        "one extra paren pair costs exactly one nesting level"
    );
}

#[test]
fn token_budget_boundary_is_exact() {
    let source = "class A { int x = 1; int y = 2; }";
    let tokens = javalang::lex(source).unwrap().len();
    let at = javalang::Limits {
        max_tokens: tokens,
        ..javalang::Limits::UNBOUNDED
    };
    assert!(javalang::parse_compilation_unit_with_limits(source, at).is_ok());
    let under = javalang::Limits {
        max_tokens: tokens - 1,
        ..javalang::Limits::UNBOUNDED
    };
    let reject = javalang::parse_compilation_unit_with_limits(source, under).unwrap_err();
    assert_eq!(reject.kind(), javalang::ParseErrorKind::TokenBudgetExceeded);
}

#[test]
fn source_size_boundary_is_exact() {
    let source = "class A { int x = 1; }";
    let at = javalang::Limits {
        max_source_bytes: source.len(),
        ..javalang::Limits::UNBOUNDED
    };
    assert!(javalang::parse_compilation_unit_with_limits(source, at).is_ok());
    let under = javalang::Limits {
        max_source_bytes: source.len() - 1,
        ..javalang::Limits::UNBOUNDED
    };
    let reject = javalang::parse_compilation_unit_with_limits(source, under).unwrap_err();
    assert_eq!(reject.kind(), javalang::ParseErrorKind::SourceTooLarge);
}

#[test]
fn token_length_boundary_is_exact() {
    let ident = "a".repeat(40);
    let source = format!("class A {{ int {ident} = 1; }}");
    let at = javalang::Limits {
        max_token_bytes: ident.len(),
        ..javalang::Limits::UNBOUNDED
    };
    assert!(javalang::parse_compilation_unit_with_limits(&source, at).is_ok());
    let under = javalang::Limits {
        max_token_bytes: ident.len() - 1,
        ..javalang::Limits::UNBOUNDED
    };
    let reject = javalang::parse_compilation_unit_with_limits(&source, under).unwrap_err();
    assert_eq!(reject.kind(), javalang::ParseErrorKind::TokenTooLong);
}

// ---------------------------------------------------------------------
// mcache: the cached-outcome codec is lossless and total
// ---------------------------------------------------------------------

fn usage_change() -> impl Strategy<Value = usagegraph::UsageChange> {
    (
        proptest::collection::vec(feature_path(), 0..5),
        proptest::collection::vec(feature_path(), 0..5),
    )
        .prop_map(|(removed, added)| usagegraph::UsageChange {
            class: "Cipher".to_owned(),
            removed,
            added,
        })
}

fn error_kind() -> impl Strategy<Value = diffcode::ErrorKind> {
    prop_oneof![
        Just(diffcode::ErrorKind::Lex),
        Just(diffcode::ErrorKind::Parse),
        Just(diffcode::ErrorKind::AnalysisBudget),
        Just(diffcode::ErrorKind::DagBudget),
        Just(diffcode::ErrorKind::Panic),
    ]
}

fn change_outcome() -> impl Strategy<Value = diffcode::ChangeOutcome> {
    prop_oneof![
        proptest::collection::vec(
            (
                "[A-Z][a-zA-Z]{0,10}",
                usage_dag(),
                usage_dag(),
                usage_change()
            ),
            0..4
        )
        .prop_map(diffcode::ChangeOutcome::Mined),
        (error_kind(), "[ -~]{0,40}", "[ -~]{0,40}").prop_map(|(kind, error, excerpt)| {
            diffcode::ChangeOutcome::Skipped {
                kind,
                error,
                excerpt,
            }
        }),
    ]
}

proptest! {
    /// Round-tripping any outcome — mined tuples or quarantined skips —
    /// through the cache payload codec is lossless. This is what makes
    /// a warm mining run byte-identical to a cold one.
    #[test]
    fn cached_outcome_round_trip_is_lossless(outcome in change_outcome()) {
        let bytes = diffcode::mcache::encode_outcome(&outcome);
        prop_assert_eq!(diffcode::mcache::decode_outcome(&bytes).unwrap(), outcome);
    }

    /// Decoding is total: every strict prefix of a valid payload is a
    /// typed error, never a panic and never a wrong outcome.
    #[test]
    fn cached_outcome_decode_rejects_every_truncation(outcome in change_outcome()) {
        let bytes = diffcode::mcache::encode_outcome(&outcome);
        for cut in 0..bytes.len() {
            prop_assert!(diffcode::mcache::decode_outcome(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes;
        trailing.push(0);
        prop_assert!(diffcode::mcache::decode_outcome(&trailing).is_err());
    }
}
