//! Integration tests for the persistent cluster cache: warm re-clusters
//! replay prior distance cells bit-exactly and produce output identical
//! to a cold run, config flips and version bumps invalidate, the
//! incremental path scales to thousands of changes computing only the
//! new rows, and the bucketed two-level scheme matches the dense path
//! on well-separated corpora.

use cluster::Linkage;
use diffcode::{
    apply_filters, elicit_auto_cached, mine_parallel, CellLookup, ClusterCache, Elicitation,
    MinedUsageChange, CLUSTERING_VERSION,
};
use obs::{MetricsRegistry, TraceSink};
use proptest::prelude::*;
use std::path::PathBuf;
use usagegraph::{FeaturePath, Label, UsageChange};

/// A unique, cleaned-up-on-drop temp dir per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "diffcode-cluster-cache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn generated(n_projects: usize, seed: u64) -> corpus::Corpus {
    corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed))
}

/// Mines and filters a corpus — the changes the clustering stage sees.
fn kept(corpus: &corpus::Corpus) -> Vec<MinedUsageChange> {
    let result = mine_parallel(corpus, &[], 2);
    apply_filters(result.changes).0
}

/// Runs the cached clustering path and returns the elicitation plus
/// the run's counters.
fn cluster_with(
    changes: &[MinedUsageChange],
    cache: Option<&mut ClusterCache>,
) -> (Elicitation, MetricsRegistry) {
    let mut registry = MetricsRegistry::new();
    let mut trace = TraceSink::disabled();
    let elicitation = elicit_auto_cached(changes, cache, &mut registry, &mut trace);
    (elicitation, registry)
}

/// The observable content of a clustering run: every merge with its
/// exact height bits, plus every cluster's members and suggested rule.
/// Two equal signatures mean byte-identical output.
fn signature(e: &Elicitation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "leaves {}", e.dendrogram.n_leaves);
    for m in &e.dendrogram.merges {
        let _ = writeln!(out, "{} {} {:016x}", m.left, m.right, m.distance.to_bits());
    }
    for c in &e.clusters {
        let _ = writeln!(
            out,
            "{:?} | {} | {}",
            c.members, c.representative, c.suggested
        );
    }
    out
}

fn pairs(n: usize) -> u64 {
    cluster::pair_count(n)
}

#[test]
fn warm_recluster_is_byte_identical_and_reuses_prior_cells() {
    let tmp = TempDir::new("warm");
    let base = generated(120, 7);
    let mut grown = base.clone();
    grown.projects.extend(generated(30, 991).projects);

    let kept_base = kept(&base);
    let kept_grown = kept(&grown);
    let (nb, ng) = (kept_base.len(), kept_grown.len());
    assert!(nb >= 2, "base corpus too small: {nb}");
    assert!(ng > nb, "growth added no kept changes: {nb} -> {ng}");
    // Appending projects does not disturb earlier filter decisions, so
    // the grown corpus keeps the base changes unchanged (their cells
    // must all hit below).
    for (a, b) in kept_base.iter().zip(&kept_grown) {
        assert_eq!(a.change, b.change);
    }

    // Cold prime: everything misses, every cell is recorded.
    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (cold_base, reg) = cluster_with(&kept_base, Some(&mut cache));
    assert_eq!(reg.counter("cluster.cache.hit"), 0);
    assert_eq!(reg.counter("cluster.cache.miss"), pairs(nb));
    assert_eq!(cold_base.dendrogram.n_leaves, nb);
    cache.flush().unwrap();

    // Warm re-cluster of the grown corpus: only the new rows compute.
    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (warm, reg) = cluster_with(&kept_grown, Some(&mut cache));
    assert_eq!(reg.counter("cluster.cache.hit"), pairs(nb));
    assert_eq!(
        reg.counter("cluster.cache.miss"),
        pairs(ng) - pairs(nb),
        "exactly the cells touching a new change recompute"
    );
    assert_eq!(reg.counter("cluster.cache.stale_version"), 0);
    cache.flush().unwrap();

    // Byte-identical to a cold run over the same changes.
    let (cold_grown, _) = cluster_with(&kept_grown, None);
    assert_eq!(signature(&warm), signature(&cold_grown));

    // A second warm run hits everything.
    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (rewarm, reg) = cluster_with(&kept_grown, Some(&mut cache));
    assert_eq!(reg.counter("cluster.cache.hit"), pairs(ng));
    assert_eq!(reg.counter("cluster.cache.miss"), 0);
    assert_eq!(signature(&rewarm), signature(&cold_grown));
}

#[test]
fn config_flip_triggers_a_full_recompute() {
    let tmp = TempDir::new("config");
    let changes = kept(&generated(200, 42));
    let n = changes.len();
    assert!(n >= 2);

    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (primed, _) = cluster_with(&changes, Some(&mut cache));
    cache.flush().unwrap();

    // Same directory, different linkage config: every key changes, so
    // nothing hits — a config flip can never replay stale geometry.
    let mut flipped = ClusterCache::open(&tmp.0, Linkage::Average).unwrap();
    let (reflipped, reg) = cluster_with(&changes, Some(&mut flipped));
    assert_eq!(reg.counter("cluster.cache.hit"), 0);
    assert_eq!(reg.counter("cluster.cache.miss"), pairs(n));
    assert_eq!(signature(&primed), signature(&reflipped));
    flipped.flush().unwrap();

    // The original config's cells were not clobbered: reopening under
    // Complete still hits everything.
    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (_, reg) = cluster_with(&changes, Some(&mut cache));
    assert_eq!(reg.counter("cluster.cache.hit"), pairs(n));
}

#[test]
fn version_bump_invalidates_every_cell() {
    let tmp = TempDir::new("version");
    let changes = kept(&generated(200, 42));
    let n = changes.len();
    assert!(n >= 2);

    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (primed, _) = cluster_with(&changes, Some(&mut cache));
    cache.flush().unwrap();

    let mut bumped =
        ClusterCache::open_at_version(&tmp.0, Linkage::Complete, CLUSTERING_VERSION + 1).unwrap();
    let (rerun, reg) = cluster_with(&changes, Some(&mut bumped));
    assert_eq!(
        reg.counter("cluster.cache.stale_version"),
        pairs(n),
        "every old cell must be reported stale, not silently missed"
    );
    assert_eq!(reg.counter("cluster.cache.hit"), 0);
    assert_eq!(signature(&primed), signature(&rerun));
}

#[test]
fn cell_lookup_roundtrips_through_the_flushed_store() {
    let tmp = TempDir::new("roundtrip");
    let changes = kept(&generated(120, 7));
    assert!(changes.len() >= 2);

    let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let (_, _) = cluster_with(&changes, Some(&mut cache));
    cache.flush().unwrap();

    // Re-open and probe one known pair directly.
    let cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
    let a = ClusterCache::change_fingerprint(&changes[0].change);
    let b = ClusterCache::change_fingerprint(&changes[1].change);
    let expected = cluster::usage_dist(&changes[0].change, &changes[1].change);
    match cache.cell(a, b) {
        CellLookup::Hit(d) => assert_eq!(d.to_bits(), expected.to_bits()),
        other => panic!("expected a hit, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: grow a corpus by a few projects, warm
    /// re-cluster through the cache, and the dendrogram and cut are
    /// identical to clustering the grown corpus from scratch — while
    /// every previously-seen pair hits.
    #[test]
    fn warm_recluster_equals_cold_for_any_growth(
        seed in 0u64..500,
        base_projects in 2usize..40,
        extra_projects in 1usize..10,
    ) {
        let tmp = TempDir::new(&format!("prop-{seed}-{base_projects}-{extra_projects}"));
        let base = generated(base_projects, seed);
        let mut grown = base.clone();
        grown.projects.extend(generated(extra_projects, seed.wrapping_add(1000)).projects);

        let kept_base = kept(&base);
        let kept_grown = kept(&grown);
        let (nb, ng) = (kept_base.len(), kept_grown.len());

        let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
        let (_, reg) = cluster_with(&kept_base, Some(&mut cache));
        prop_assert_eq!(reg.counter("cluster.cache.miss"), pairs(nb));
        cache.flush().unwrap();

        let mut cache = ClusterCache::open(&tmp.0, Linkage::Complete).unwrap();
        let (warm, reg) = cluster_with(&kept_grown, Some(&mut cache));
        prop_assert_eq!(reg.counter("cluster.cache.hit"), pairs(nb));
        prop_assert_eq!(reg.counter("cluster.cache.miss"), pairs(ng) - pairs(nb));

        let (cold, _) = cluster_with(&kept_grown, None);
        prop_assert_eq!(signature(&warm), signature(&cold));
    }
}

// ---------------------------------------------------------------------
// Scale: the incremental path on a corpus of thousands of changes.
// ---------------------------------------------------------------------

fn feature(labels: &[&str]) -> FeaturePath {
    FeaturePath(labels.iter().copied().map(Label::from).collect())
}

/// A synthetic single-path usage change; `i` varies the labels so every
/// change is distinct but near its neighbours.
fn synthetic_change(class: &str, i: usize) -> UsageChange {
    UsageChange {
        class: class.into(),
        removed: vec![feature(&[
            class,
            "getInstance",
            &format!("arg1:W{}", i % 17),
        ])],
        added: vec![feature(&[
            class,
            "getInstance",
            &format!("arg1:S{}", i % 13),
        ])],
    }
}

/// The acceptance bar of the incremental scheme, at the matrix layer
/// (no silhouette search, which dominates wall-clock at this size): a
/// +1% growth of an n = 2000 corpus computes only the new-row cells —
/// a ≥ 95% hit rate — and the warm matrix and dendrogram are
/// bit-identical to a cold dense run.
#[test]
fn warm_matrix_on_a_two_thousand_change_corpus_computes_only_new_rows() {
    const N: usize = 2000;
    const GROWN: usize = 2020; // +1%

    let changes: Vec<UsageChange> = (0..GROWN)
        .map(|i| {
            synthetic_change(
                if i % 2 == 0 {
                    "Cipher"
                } else {
                    "MessageDigest"
                },
                i,
            )
        })
        .collect();

    // Cold pass over the first N changes, with every cell "missing".
    let label_cache = cluster::LabelCache::default();
    let dist =
        |i: usize, j: usize| cluster::usage_dist_cached(&changes[i], &changes[j], &label_cache);
    let prior_none: Vec<f64> = vec![f64::NAN; pairs(N) as usize];
    let cold = cluster::matrix_from_prior(N, &prior_none, None, dist).unwrap();
    assert_eq!(cold.reused, 0);
    assert_eq!(cold.computed.len(), pairs(N) as usize);

    // Grow to GROWN: the prior carries every old cell, NaN for rows
    // touching a new change (what a cache replay materializes).
    let mut prior = Vec::with_capacity(pairs(GROWN) as usize);
    for i in 0..GROWN {
        for j in i + 1..GROWN {
            prior.push(if j < N {
                cold.matrix.get(i, j)
            } else {
                f64::NAN
            });
        }
    }
    let warm = cluster::matrix_from_prior(GROWN, &prior, None, dist).unwrap();
    let new_cells = (pairs(GROWN) - pairs(N)) as usize;
    assert_eq!(warm.reused, pairs(N) as usize);
    assert_eq!(warm.computed.len(), new_cells, "only new-row cells compute");
    let hit_rate = warm.reused as f64 / pairs(GROWN) as f64;
    assert!(hit_rate >= 0.95, "hit rate {hit_rate:.3} below the 95% bar");

    // Bit-identical to the cold dense run over all GROWN changes.
    let cold_grown = cluster::DistanceMatrix::from_fn(GROWN, dist);
    for i in 0..GROWN {
        for j in i + 1..GROWN {
            assert_eq!(
                warm.matrix.get(i, j).to_bits(),
                cold_grown.get(i, j).to_bits(),
                "cell ({i},{j}) differs"
            );
        }
    }
    let warm_dendrogram = cluster::agglomerate_matrix(&warm.matrix, Linkage::Complete);
    let cold_dendrogram = cluster::agglomerate_matrix(&cold_grown, Linkage::Complete);
    assert_eq!(warm_dendrogram, cold_dendrogram);
}

// ---------------------------------------------------------------------
// Bucketed-vs-dense equivalence on a well-separated corpus.
// ---------------------------------------------------------------------

/// Sorts a clustering into a canonical form for set comparison.
fn canonical(mut clusters: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort();
    clusters
}

/// On a corpus whose classes are far apart (inter-class distance is
/// maximal) and whose per-class groups are tight, the two-level
/// bucketed scheme recovers the same clusters as the dense path — the
/// documented equivalence bound of `cluster_bucketed`.
#[test]
fn bucketed_matches_dense_on_a_well_separated_corpus() {
    let mut changes = Vec::new();
    // Two tight groups per class, three changes each: enough structure
    // that both paths cut each class into the same two groups.
    for class in ["Cipher", "MessageDigest", "SecureRandom"] {
        for i in 0..3 {
            changes.push(UsageChange {
                class: class.into(),
                removed: vec![feature(&[class, "getInstance", &format!("arg1:WEAK-A{i}")])],
                added: vec![feature(&[
                    class,
                    "getInstance",
                    &format!("arg1:STRONG-A{i}"),
                ])],
            });
        }
        for i in 0..3 {
            changes.push(UsageChange {
                class: class.into(),
                removed: vec![feature(&[class, "init", &format!("arg1:OLDKEY-B{i}")])],
                added: vec![feature(&[class, "init", &format!("arg1:FRESHKEY-B{i}")])],
            });
        }
    }

    let bucketed = cluster::cluster_bucketed(&changes, 1 << 20, 64).unwrap();
    assert_eq!(bucketed.buckets.len(), 3, "one bucket per class");

    let (dense, matrix) = cluster::cluster_usage_changes_matrix(&changes);
    let (_, dense_clusters, _) = dense.best_cut(&matrix, 64);

    assert_eq!(
        canonical(bucketed.clusters.clone()),
        canonical(dense_clusters),
        "bucketed and dense clusters must agree on a well-separated corpus"
    );

    // The bucketed path never materialized more than one bucket's
    // matrix at a time.
    let largest_bucket = bucketed.buckets.iter().map(Vec::len).max().unwrap();
    assert!(bucketed.peak_cells <= pairs(largest_bucket).max(pairs(3)) as usize);
}
