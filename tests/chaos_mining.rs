//! Chaos integration test: mining is *total* under fault injection.
//!
//! Generates a pristine corpus, corrupts a large fraction of its code
//! changes with `corpus::chaos::Mutator` (truncation, byte flips,
//! unbalanced braces, 10k-deep nesting, megabyte tokens, injected
//! panics), and asserts the three robustness guarantees:
//!
//! 1. **No aborts** — mining returns normally on every input.
//! 2. **Exact accounting** — `code_changes == mined + skipped.total()`
//!    and one quarantine report per skip, each attributable to an
//!    injected fault.
//! 3. **Blast-radius zero** — every code change the mutator did *not*
//!    touch produces byte-identical mined results to a fault-free run.

use corpus::{generate, FaultKind, GeneratorConfig, Mutator};
use diffcode::{mine_parallel, DiffCode, ErrorKind, MinedUsageChange};

const SEED: u64 = 2024;
const FAULT_RATE: f64 = 0.4;

#[test]
fn chaos_fault_injection_is_total() {
    let pristine = generate(&GeneratorConfig::small(6, SEED));

    // Fault-free baseline: the generator emits only valid Java, so
    // nothing is skipped and the accounting is trivially balanced.
    let baseline = DiffCode::new().mine(&pristine, &[]);
    assert!(baseline.stats.is_balanced());
    assert_eq!(
        baseline.stats.skipped.total(),
        0,
        "pristine corpus must mine cleanly"
    );

    let mut faulted = pristine.clone();
    let log = Mutator::new(99, FAULT_RATE).inject(&mut faulted);
    let fraction = log.faults.len() as f64 / log.code_changes as f64;
    assert!(
        fraction >= 0.3,
        "need >=30% malformed inputs, got {fraction:.2} \
         ({} of {})",
        log.faults.len(),
        log.code_changes
    );

    // Guarantee 1: this call returning at all is the no-abort claim —
    // truncated sources, control-character soup, 10k-deep nesting and
    // megabyte tokens all flow through the release pipeline.
    let result = DiffCode::new().mine(&faulted, &[]);

    // Guarantee 2: exact accounting.
    assert!(result.stats.is_balanced());
    assert_eq!(result.stats.code_changes, log.code_changes);
    assert_eq!(result.quarantine.len(), result.stats.skipped.total());
    assert!(
        result.stats.skipped.lex + result.stats.skipped.parse > 0,
        "fuzzed corpus must trip frontend errors"
    );
    assert_eq!(
        result.stats.parse_failures,
        result.stats.skipped.lex + result.stats.skipped.parse,
        "legacy aggregate must track the per-kind counters"
    );
    // Every quarantined change is one the mutator touched (the
    // baseline proved untouched changes cannot fail), and carries
    // provenance plus a bounded excerpt.
    for report in &result.quarantine {
        assert!(
            log.touched(&report.meta.project, &report.meta.commit, &report.meta.path),
            "quarantined untouched change {:?}",
            report.meta
        );
        assert!(!report.error.is_empty());
        assert!(report.excerpt.chars().count() <= 81);
        assert!(report.excerpt.chars().all(|c| !c.is_control()));
    }

    // Guarantee 3: untouched changes mine byte-identically.
    let untouched =
        |m: &&MinedUsageChange| !log.touched(&m.meta.project, &m.meta.commit, &m.meta.path);
    let base_kept: Vec<&MinedUsageChange> = baseline.changes.iter().filter(untouched).collect();
    let fault_kept: Vec<&MinedUsageChange> = result.changes.iter().filter(untouched).collect();
    assert_eq!(base_kept, fault_kept, "fault blast radius leaked");

    // And the parallel path degrades identically to the sequential one.
    let parallel = mine_parallel(&faulted, &[], 4);
    assert_eq!(parallel, result);
}

#[test]
fn chaos_panic_faults_are_isolated_per_change() {
    const MARKER: &str = "@@DIFFCODE_CHAOS_MINING_PANIC@@";
    // Routes panics through `DiffCode::try_analyze_source` for sources
    // containing MARKER. The sibling test is unaffected: its corpus
    // never contains the marker, so the hook never fires there.
    std::env::set_var("DIFFCODE_CHAOS_PANIC_MARKER", MARKER);

    let mut corpus = generate(&GeneratorConfig::small(4, SEED + 1));
    let log = Mutator::new(7, 0.5)
        .with_panic_marker(MARKER)
        .inject(&mut corpus);
    let panic_faults = log
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::PanicMarker)
        .count();
    assert!(panic_faults > 0, "seed must produce panic faults");

    // Keep the test log readable: each injected panic prints a
    // backtrace-less message through the default hook otherwise.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let sequential = DiffCode::new().mine(&corpus, &[]);
    let parallel = mine_parallel(&corpus, &[], 3);
    std::panic::set_hook(prev_hook);

    for result in [&sequential, &parallel] {
        assert!(result.stats.is_balanced());
        assert_eq!(
            result.stats.skipped.panic, panic_faults,
            "each marker fault must become exactly one isolated panic skip"
        );
        for report in result
            .quarantine
            .iter()
            .filter(|r| r.kind == ErrorKind::Panic)
        {
            assert!(
                report.error.contains("chaos"),
                "payload lost: {}",
                report.error
            );
        }
    }
    assert_eq!(sequential, parallel);
}
