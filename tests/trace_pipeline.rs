//! Trace ≡ pipeline property tests (the decision-provenance
//! invariants): every change produces exactly one decision per stage
//! that rules on it, per-reason counts reconcile with the accounting
//! structs (`MiningStats`, `FilterStats`) and the metrics counters,
//! sampling never drops a decision, and sequential and parallel runs
//! produce identical decision sets.

use diffcode::{
    apply_filters_traced, elicit_auto_traced, mine_parallel_traced, ErrorKind, MiningCache,
    SeenDups,
};
use obs::{MetricsRegistry, TraceKind, TraceSink};
use std::path::PathBuf;

/// A unique, cleaned-up-on-drop temp dir per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "diffcode-trace-pipeline-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn generated(n_projects: usize, seed: u64) -> corpus::Corpus {
    corpus::generate(&corpus::GeneratorConfig::small(n_projects, seed))
}

/// All decision events as `(fingerprint, stage, reason)` triples, in
/// trace order.
fn decisions(trace: &TraceSink) -> Vec<(String, String, String)> {
    trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Decision)
        .map(|e| {
            assert_eq!(trace.name(e.name), diffcode::DECISION_EVENT);
            (
                trace.attr_str(e, "fingerprint").unwrap_or("").to_owned(),
                trace.attr_str(e, "stage").unwrap_or("").to_owned(),
                trace.attr_str(e, "reason").unwrap_or("").to_owned(),
            )
        })
        .collect()
}

/// Runs the full traced funnel (mine → filter → elicit) and returns
/// the trace together with the mining result and registry.
fn run_traced(
    corpus: &corpus::Corpus,
    n_threads: usize,
    sample: u64,
) -> (TraceSink, diffcode::MiningResult, MetricsRegistry) {
    let mut registry = MetricsRegistry::new();
    let mut trace = TraceSink::enabled(sample);
    let result = mine_parallel_traced(corpus, &[], n_threads, &mut registry, None, &mut trace);
    let (kept, _) = apply_filters_traced(
        result.changes.clone(),
        &mut SeenDups::new(),
        &mut registry,
        &mut trace,
        0,
    );
    if kept.len() >= 2 {
        let _ = elicit_auto_traced(&kept, &mut registry, &mut trace);
    }
    (trace, result, registry)
}

#[test]
fn one_mine_decision_per_code_change_reasons_match_stats() {
    // Fault injection makes quarantined(...) reasons appear alongside
    // mined ones, so the per-kind reconciliation is not vacuous.
    let mut corpus = generated(8, 7);
    let _ = corpus::Mutator::new(7, 0.3).inject(&mut corpus);
    for threads in [1, 4] {
        let mut registry = MetricsRegistry::new();
        let mut trace = TraceSink::enabled(1);
        let result = mine_parallel_traced(&corpus, &[], threads, &mut registry, None, &mut trace);
        let mine: Vec<_> = decisions(&trace)
            .into_iter()
            .filter(|(_, stage, _)| stage == "mine")
            .collect();
        assert_eq!(mine.len(), result.stats.code_changes);
        let count = |reason: &str| mine.iter().filter(|(_, _, r)| r == reason).count();
        assert_eq!(count("mined"), result.stats.mined);
        for kind in ErrorKind::ALL {
            assert_eq!(
                count(&format!("quarantined({})", kind.name())),
                result.stats.skipped.get(kind),
                "kind {} at {threads} thread(s)",
                kind.name()
            );
        }
        assert_eq!(registry.counter("mine.mined"), count("mined") as u64);
        assert_eq!(
            registry.counter("mine.skipped") as usize,
            result.stats.skipped.total()
        );
    }
}

#[test]
fn filter_decisions_reconcile_with_filter_stats() {
    let corpus = generated(10, 42);
    let mut registry = MetricsRegistry::new();
    let mut trace = TraceSink::enabled(1);
    let result = mine_parallel_traced(&corpus, &[], 1, &mut registry, None, &mut trace);
    let (kept, stats) = apply_filters_traced(
        result.changes,
        &mut SeenDups::new(),
        &mut registry,
        &mut trace,
        0,
    );
    let filter: Vec<_> = decisions(&trace)
        .into_iter()
        .filter(|(_, stage, _)| stage == "filter")
        .collect();
    assert_eq!(filter.len(), stats.total);
    let count = |pred: &dyn Fn(&str) -> bool| filter.iter().filter(|(_, _, r)| pred(r)).count();
    assert_eq!(count(&|r| r == "kept"), stats.after_fdup);
    assert_eq!(kept.len(), stats.after_fdup);
    assert_eq!(
        count(&|r| r == "filtered(refactoring)"),
        stats.total - stats.after_fsame
    );
    assert_eq!(
        count(&|r| r == "filtered(pure_addition)"),
        stats.after_fsame - stats.after_fadd
    );
    assert_eq!(
        count(&|r| r == "filtered(pure_removal)"),
        stats.after_fadd - stats.after_frem
    );
    assert_eq!(
        count(&|r| r.starts_with("dup_of(")),
        stats.after_frem - stats.after_fdup
    );
    // Every dup points at a change that was itself kept.
    for (_, _, reason) in &filter {
        if let Some(target) = reason
            .strip_prefix("dup_of(")
            .and_then(|r| r.strip_suffix(')'))
        {
            assert!(
                filter.iter().any(|(fp, _, r)| fp == target && r == "kept"),
                "dup target {target} has no kept decision"
            );
        }
    }
    // The trace agrees with the metrics registry's own funnel.
    assert_eq!(registry.counter("filter.total"), stats.total as u64);
    assert_eq!(
        registry.counter("filter.after_fdup"),
        stats.after_fdup as u64
    );
}

#[test]
fn sequential_and_parallel_runs_produce_identical_decisions() {
    let corpus = generated(12, 42);
    let (seq_trace, _, _) = run_traced(&corpus, 1, 1);
    let (par_trace, _, _) = run_traced(&corpus, 4, 1);
    // Shard sinks are absorbed in shard order, so even the unsorted
    // decision lists line up; sort anyway to pin only the multiset.
    let mut seq = decisions(&seq_trace);
    let mut par = decisions(&par_trace);
    seq.sort();
    par.sort();
    assert_eq!(seq, par);
}

#[test]
fn cluster_decisions_cover_exactly_the_kept_changes() {
    let corpus = generated(12, 42);
    let (trace, _, registry) = run_traced(&corpus, 2, 1);
    let all = decisions(&trace);
    let kept: Vec<&String> = all
        .iter()
        .filter(|(_, stage, r)| stage == "filter" && r == "kept")
        .map(|(fp, _, _)| fp)
        .collect();
    let clustered: Vec<_> = all
        .iter()
        .filter(|(_, stage, _)| stage == "cluster")
        .collect();
    assert!(kept.len() >= 2, "seed 42 must keep enough changes");
    assert_eq!(clustered.len(), kept.len());
    for (fp, _, reason) in &clustered {
        assert!(reason.starts_with("cluster("), "{reason}");
        assert!(kept.contains(&fp), "clustered change {fp} was not kept");
    }
    // As many distinct cluster ids as elicited clusters.
    let mut ids: Vec<&str> = clustered.iter().map(|(_, _, r)| r.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, registry.counter("elicit.clusters"));
}

#[test]
fn sampling_thins_spans_but_never_decisions() {
    let corpus = generated(8, 42);
    let (full, _, _) = run_traced(&corpus, 2, 1);
    let (sampled, _, _) = run_traced(&corpus, 2, 1000);
    assert!(
        sampled.len() < full.len(),
        "sampling 1/1000 must drop spans ({} vs {})",
        sampled.len(),
        full.len()
    );
    let mut a = decisions(&full);
    let mut b = decisions(&sampled);
    a.sort();
    b.sort();
    assert_eq!(a, b, "decisions must survive sampling verbatim");
}

#[test]
fn warm_run_decisions_carry_cache_hit_status() {
    let tmp = TempDir::new("warm");
    let corpus = generated(6, 42);
    let registry_hits = |trace: &TraceSink| {
        trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Decision && trace.attr_str(e, "cache") == Some("hit"))
            .count()
    };
    let mut cache = MiningCache::open(
        &tmp.0,
        &[],
        &diffcode::PipelineLimits::DEFAULT,
        usagegraph::DEFAULT_MAX_DEPTH,
    )
    .expect("open cache");
    let mut registry = MetricsRegistry::new();
    let mut cold_trace = TraceSink::enabled(1);
    let cold = mine_parallel_traced(
        &corpus,
        &[],
        2,
        &mut registry,
        Some(&mut cache),
        &mut cold_trace,
    );
    cache.flush().expect("flush");
    assert_eq!(registry_hits(&cold_trace), 0, "cold run cannot hit");

    let mut registry = MetricsRegistry::new();
    let mut warm_trace = TraceSink::enabled(1);
    let warm = mine_parallel_traced(
        &corpus,
        &[],
        2,
        &mut registry,
        Some(&mut cache),
        &mut warm_trace,
    );
    assert_eq!(warm.stats.code_changes, cold.stats.code_changes);
    assert_eq!(
        registry_hits(&warm_trace) as u64,
        registry.counter("cache.hit"),
        "decision cache attrs must agree with the cache.hit counter"
    );
    assert_eq!(registry_hits(&warm_trace), warm.stats.code_changes);
    // Same decisions either way — the cache changes how a result is
    // obtained, never what was decided.
    let strip = |t: &TraceSink| {
        let mut d = decisions(t);
        d.sort();
        d
    };
    assert_eq!(strip(&cold_trace), strip(&warm_trace));
}
