//! Byte-identical behavioral pin for the front-end performance work.
//!
//! The arena/zero-copy refactor of `javalang` (and the copy-on-write
//! `absdomain::Env`) must not change *anything* observable: the mining
//! report (including the `result digest:` line), the per-change
//! decision trace, and the change fingerprints that key the mining
//! cache. These tests compare a fresh run against golden files
//! committed **before** the refactor started, so any behavioral drift
//! — a different parse error, a reordered allocation site, a changed
//! join — fails CI with a diff instead of silently shifting results.
//!
//! Regenerate (only when the pipeline is *intentionally* changed) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_frontend
//! ```

use diffcode::cli::{run_mine, run_mine_traced, MineSource};
use diffcode::DECISION_EVENT;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 42;
const PROJECTS: usize = 12;
/// Single-threaded: shard merge order can never be a variable here.
const THREADS: usize = 1;

fn golden_path(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the goldens live in the
    // workspace-root tests/ directory next to this file.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {} missing: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from the pre-refactor golden run.\n\
         The front end must stay byte-identical; if this change is \
         intentional, regenerate with UPDATE_GOLDEN=1.\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn mine_stdout_matches_prerefactor_golden() {
    let (report, _metrics) = run_mine(SEED, PROJECTS, THREADS, None).expect("mine runs");
    check_golden("mine_seed42_p12.stdout", &report);
}

#[test]
fn decision_trace_matches_prerefactor_golden() {
    let source = MineSource::Seeded {
        seed: SEED,
        n_projects: PROJECTS,
    };
    let (_, _, trace) = run_mine_traced(&source, THREADS, None, None, 1).expect("traced mine runs");
    let mut lines = String::new();
    for event in trace.events() {
        if trace.name(event.name) != DECISION_EVENT {
            continue;
        }
        let attr = |key: &str| trace.attr_str(event, key).unwrap_or("");
        writeln!(
            lines,
            "{}|{}|{}|{}|{}|{}",
            attr("stage"),
            attr("reason"),
            attr("project"),
            attr("commit"),
            attr("path"),
            attr("fingerprint"),
        )
        .unwrap();
    }
    check_golden("decisions_seed42_p12.txt", &lines);
}
