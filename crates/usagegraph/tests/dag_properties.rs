//! Structural properties of usage-DAG construction: depth bounds,
//! cycle prevention, nested expansion, and pairing stability.

use analysis::{analyze, ApiModel, Usages};
use usagegraph::{build_dag, dags_for_class, pair_dags, usage_changes_with_depth, UsageDag};

fn usages(src: &str) -> Usages {
    let unit = javalang::parse_compilation_unit(src).unwrap();
    analyze(&unit, &ApiModel::standard())
}

fn dag(src: &str, class: &str, depth: usize) -> UsageDag {
    let u = usages(src);
    let site = u.objects_of_type(class).next().expect("object");
    build_dag(&u, site, depth)
}

const NESTED: &str = r#"
    class C {
        void m(Key key, byte[] ivBytes) throws Exception {
            IvParameterSpec iv = new IvParameterSpec(ivBytes);
            Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
            c.init(Cipher.ENCRYPT_MODE, key, iv);
        }
    }
"#;

#[test]
fn paths_respect_depth_bound() {
    for depth in 1..=6 {
        let d = dag(NESTED, "Cipher", depth);
        assert!(
            d.paths.iter().all(|p| p.len() <= depth),
            "depth {depth}: {:?}",
            d.paths
        );
    }
}

#[test]
fn deeper_dags_are_supersets() {
    let shallow = dag(NESTED, "Cipher", 3);
    let deep = dag(NESTED, "Cipher", 5);
    assert!(shallow.paths.is_subset(&deep.paths));
    assert!(shallow.paths.len() < deep.paths.len());
}

#[test]
fn every_non_root_path_extends_a_parent() {
    let d = dag(NESTED, "Cipher", 5);
    for p in &d.paths {
        if p.len() <= 1 {
            continue;
        }
        let parent = usagegraph::FeaturePath(p.labels()[..p.len() - 1].to_vec());
        assert!(
            d.paths.contains(&parent),
            "path {p} has no parent in the DAG"
        );
    }
}

#[test]
fn root_path_always_present() {
    let d = dag(NESTED, "Cipher", 5);
    assert!(d
        .paths
        .contains(&usagegraph::FeaturePath(vec!["Cipher".into()])));
}

#[test]
fn mutual_usage_does_not_loop() {
    // The IV spec flows into two ciphers, which both reference it; the
    // construction must terminate and not re-expand the same event.
    let src = r#"
        class C {
            void m(Key key, byte[] ivBytes) throws Exception {
                IvParameterSpec iv = new IvParameterSpec(ivBytes);
                Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
                a.init(Cipher.ENCRYPT_MODE, key, iv);
                Cipher b = Cipher.getInstance("AES/CBC/PKCS5Padding");
                b.init(Cipher.DECRYPT_MODE, key, iv);
            }
        }
    "#;
    let u = usages(src);
    for site in u.objects_of_type("Cipher") {
        let d = build_dag(&u, site, 8);
        assert!(d.paths.len() < 60, "expansion exploded: {}", d.paths.len());
    }
    // The IvParameterSpec root DAG carries the foreign Cipher.init usage.
    let iv_site = u.objects_of_type("IvParameterSpec").next().unwrap();
    let iv_dag = build_dag(&u, iv_site, 5);
    assert!(
        iv_dag
            .paths
            .iter()
            .any(|p| p.to_string().contains("Cipher.init")),
        "{:?}",
        iv_dag.paths
    );
}

#[test]
fn pairing_is_stable_under_reordering() {
    let old_u = usages(NESTED);
    let old = dags_for_class(&old_u, "Cipher", 5);
    let new = old.clone();
    let pairs = pair_dags(old.clone(), new, "Cipher");
    for (a, b) in &pairs {
        assert_eq!(a, b, "identical versions must pair each DAG with itself");
    }
}

#[test]
fn usage_changes_with_smaller_depth_lose_nested_features() {
    let old = usages(
        r#"class C { void m(Key k) throws Exception {
            Cipher c = Cipher.getInstance("AES");
            c.init(Cipher.ENCRYPT_MODE, k);
        } }"#,
    );
    let new = usages(NESTED);
    let at5 = usage_changes_with_depth(&old, &new, "Cipher", 5);
    let at2 = usage_changes_with_depth(&old, &new, "Cipher", 2);
    let f5: Vec<String> = at5[0].added.iter().map(|p| p.to_string()).collect();
    let f2: Vec<String> = at2[0].added.iter().map(|p| p.to_string()).collect();
    assert!(
        f5.iter().any(|p| p.contains("arg3:IvParameterSpec")),
        "{f5:?}"
    );
    assert!(
        !f2.iter().any(|p| p.contains("arg3")),
        "depth 2 cannot see argument features: {f2:?}"
    );
}

#[test]
fn distance_monotone_under_feature_removal() {
    // Removing a differing feature cannot increase the distance.
    let a = dag(NESTED, "Cipher", 5);
    let mut b = a.clone();
    let extra = usagegraph::FeaturePath(vec![
        "Cipher".into(),
        "getInstance".into(),
        "arg2:BC".into(),
    ]);
    b.paths.insert(extra.clone());
    let with_extra = a.distance(&b);
    b.paths.remove(&extra);
    let without = a.distance(&b);
    assert!(without <= with_extra);
    assert_eq!(without, 0.0);
}
