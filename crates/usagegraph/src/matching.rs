//! Minimum-cost assignment (Hungarian algorithm, O(n³)).
//!
//! Used twice in the pipeline: to pair old-version DAGs with
//! new-version DAGs (paper §3.5), and to match removed/added feature
//! paths when computing `pathsDist` (paper §4.3).

/// Solves the assignment problem on a square cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col`.
///
/// # Panics
///
/// Panics if `cost` is not square or is empty in a ragged way.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }

    const INF: f64 = f64::INFINITY;
    // Potentials-based Hungarian algorithm with 1-based sentinel row/col.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row assigned to col
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(row, &col)| cost[row][col])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn empty_matrix() {
        let (a, c) = min_cost_assignment(&[]);
        assert!(a.is_empty());
        assert_close(c, 0.0);
    }

    #[test]
    fn singleton() {
        let (a, c) = min_cost_assignment(&[vec![3.5]]);
        assert_eq!(a, vec![0]);
        assert_close(c, 3.5);
    }

    #[test]
    fn picks_off_diagonal_when_cheaper() {
        let cost = vec![vec![10.0, 1.0], vec![1.0, 10.0]];
        let (a, c) = min_cost_assignment(&cost);
        assert_eq!(a, vec![1, 0]);
        assert_close(c, 2.0);
    }

    #[test]
    fn three_by_three_known_optimum() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (_, c) = min_cost_assignment(&cost);
        assert_close(c, 5.0); // 1 + 2 + 2
    }

    #[test]
    fn assignment_is_a_permutation() {
        let cost = vec![
            vec![0.3, 0.9, 0.1, 0.7],
            vec![0.8, 0.2, 0.6, 0.4],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.0, 1.0, 0.9, 0.2],
        ];
        let (a, _) = min_cost_assignment(&cost);
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn optimal_vs_brute_force() {
        // Deterministic pseudo-random matrices, checked against brute
        // force over all permutations.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for n in 1..=5 {
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let (_, got) = min_cost_assignment(&cost);
            let best = permutations(n)
                .into_iter()
                .map(|perm| {
                    perm.iter()
                        .enumerate()
                        .map(|(i, &j)| cost[i][j])
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min);
            assert_close(got, best);
        }
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for rest in permutations(n - 1) {
            for pos in 0..=rest.len() {
                let mut p = rest.clone();
                p.insert(pos, n - 1);
                out.push(p);
            }
        }
        out
    }
}
