//! Resource budgets for usage-DAG construction.
//!
//! A DAG's path set can grow combinatorially: every event contributes
//! `1 + arity` paths per prefix, and nested objects multiply prefixes
//! at each of the (up to) `max_depth` levels. Real crypto usages stay
//! in the tens of paths, but an adversarial analysis result — many
//! events on one site, deeply chained object arguments — can explode.
//! The budgets below turn that into a typed [`DagError`] instead of an
//! out-of-memory abort, and cap the Hungarian matching's cubic cost in
//! the object count.

use std::fmt;

/// Budgets applied by the `try_*` DAG constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagLimits {
    /// Maximum number of root-to-node paths in one DAG
    /// ([`DagError::PathBudgetExceeded`]).
    pub max_paths: usize,
    /// Maximum path length in labels — the paper's construction depth
    /// `n` (default 5).
    pub max_depth: usize,
    /// Maximum number of abstract objects per class side when pairing
    /// DAGs across versions; the min-cost matching is `O(n³)`
    /// ([`DagError::TooManyObjects`]).
    pub max_objects: usize,
}

impl DagLimits {
    /// Default budgets: 16 384 paths per DAG, depth 5, 512 objects per
    /// class — orders of magnitude above anything the corpus produces.
    pub const DEFAULT: DagLimits = DagLimits {
        max_paths: 1 << 14,
        max_depth: crate::DEFAULT_MAX_DEPTH,
        max_objects: 512,
    };

    /// No caps (depth stays at the paper's default): the legacy
    /// behaviour of [`crate::build_dag`] and [`crate::usage_changes`].
    pub const UNBOUNDED: DagLimits = DagLimits {
        max_paths: usize::MAX,
        max_depth: crate::DEFAULT_MAX_DEPTH,
        max_objects: usize::MAX,
    };
}

impl Default for DagLimits {
    fn default() -> Self {
        DagLimits::DEFAULT
    }
}

/// Why DAG construction refused to finish.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// One DAG accumulated more than `max_paths` root-to-node paths.
    PathBudgetExceeded {
        /// The exceeded budget.
        max_paths: usize,
    },
    /// One version side has more than `max_objects` abstract objects
    /// of the class being paired.
    TooManyObjects {
        /// Objects found on the larger side.
        objects: usize,
        /// The configured ceiling.
        max_objects: usize,
    },
}

impl DagError {
    /// Stable machine-readable name of the error kind, used for
    /// per-kind quarantine accounting.
    pub fn name(&self) -> &'static str {
        match self {
            DagError::PathBudgetExceeded { .. } => "dag-paths",
            DagError::TooManyObjects { .. } => "dag-objects",
        }
    }
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::PathBudgetExceeded { max_paths } => {
                write!(f, "usage DAG exceeded its budget of {max_paths} paths")
            }
            DagError::TooManyObjects {
                objects,
                max_objects,
            } => {
                write!(
                    f,
                    "{objects} abstract objects exceed the pairing maximum of {max_objects}"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}
