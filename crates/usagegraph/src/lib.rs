//! Usage DAGs and usage changes (paper §3.4–3.5).
//!
//! Pipeline stage: given the abstract usages of an old and a new
//! program version, build one DAG per abstract object, pair the DAGs
//! across versions with a minimum-cost matching under the
//! intersection-over-union distance, and diff each pair into a
//! [`UsageChange`] — the `(F⁻, F⁺)` feature sets that all later stages
//! (filtering, clustering, rule elicitation) operate on.
//!
//! # Example
//!
//! ```
//! use analysis::{analyze, ApiModel};
//! use usagegraph::usage_changes;
//!
//! let api = ApiModel::standard();
//! let old = analyze(
//!     &javalang::parse_compilation_unit(
//!         r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
//!     )?,
//!     &api,
//! );
//! let new = analyze(
//!     &javalang::parse_compilation_unit(
//!         r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding"); } }"#,
//!     )?,
//!     &api,
//! );
//! let changes = usage_changes(&old, &new, "Cipher");
//! assert_eq!(changes.len(), 1);
//! assert_eq!(changes[0].removed[0].to_string(), "Cipher getInstance arg1:AES");
//! # Ok::<(), javalang::ParseError>(())
//! ```

#![warn(missing_docs)]

mod dag;
mod diff;
mod limits;
pub mod matching;

pub use dag::{
    build_dag, dags_for_class, pair_dags, try_build_dag, try_dags_for_class, FeaturePath, Label,
    UsageDag, DEFAULT_MAX_DEPTH,
};
pub use diff::{diff_dags, removed, shortest, UsageChange};
pub use limits::{DagError, DagLimits};

use analysis::Usages;

/// Derives all usage changes of `class` between two program versions:
/// build DAGs → pair → diff (Figure 4 of the paper).
pub fn usage_changes(old: &Usages, new: &Usages, class: &str) -> Vec<UsageChange> {
    usage_changes_with_depth(old, new, class, DEFAULT_MAX_DEPTH)
}

/// [`usage_changes`] with an explicit DAG construction depth.
pub fn usage_changes_with_depth(
    old: &Usages,
    new: &Usages,
    class: &str,
    max_depth: usize,
) -> Vec<UsageChange> {
    let old_dags = dags_for_class(old, class, max_depth);
    let new_dags = dags_for_class(new, class, max_depth);
    pair_dags(old_dags, new_dags, class)
        .iter()
        .map(|(a, b)| diff_dags(a, b))
        .collect()
}

/// [`usage_changes`] under explicit resource budgets — the variant the
/// mining pipeline uses on untrusted analysis results.
///
/// # Errors
///
/// Any [`DagError`] raised while building or counting the DAGs of
/// either version side.
pub fn try_usage_changes(
    old: &Usages,
    new: &Usages,
    class: &str,
    limits: &DagLimits,
) -> Result<Vec<UsageChange>, DagError> {
    let old_dags = try_dags_for_class(old, class, limits)?;
    let new_dags = try_dags_for_class(new, class, limits)?;
    Ok(pair_dags(old_dags, new_dags, class)
        .iter()
        .map(|(a, b)| diff_dags(a, b))
        .collect())
}
