//! Usage DAGs (paper §3.4).
//!
//! A node's identity is its root-to-node **label path** — this respects
//! the edge structure, makes the node-set intersection/union of the
//! distance metric well-defined across graphs, and directly yields the
//! feature paths of §3.5. On the paper's Figure 2 example this
//! representation reproduces the published distance (`1/2`) and the
//! published removed/added features exactly.

use crate::limits::{DagError, DagLimits};
use crate::matching::min_cost_assignment;
use absdomain::{AValue, AllocSite};
use analysis::Usages;
use intern::intern;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Default maximum path length (the paper's construction depth n = 5).
pub const DEFAULT_MAX_DEPTH: usize = 5;

/// One node label of a feature path.
///
/// Shared (`Arc<str>`) rather than owned: every path in a DAG repeats
/// its ancestors' labels, so path construction, DAG pairing, and diffs
/// clone labels constantly — with shared labels those clones are
/// refcount bumps instead of string copies. `Arc` (not `Rc`) because
/// mining results cross the pipeline's shard-thread joins.
pub type Label = Arc<str>;

/// One root-to-node label path, e.g.
/// `["Cipher", "getInstance", "arg1:AES"]`.
///
/// Equality and ordering are by label *content* (the order every
/// `BTreeSet` of paths, and therefore every digest, is built on), but
/// the implementations take a pointer-equality fast path first:
/// interned labels with equal content are usually the same `Arc`, so
/// the common case in set intersection/difference and pairing distance
/// is a pointer compare, not a `memcmp`. Pointer inequality proves
/// nothing (labels interned on different threads are distinct `Arc`s)
/// and falls through to the content compare.
#[derive(Debug, Clone, Eq)]
pub struct FeaturePath(pub Vec<Label>);

// Hash by label content, like the derive would: `eq`'s pointer check is
// only a shortcut for content equality (`Arc::ptr_eq` implies equal
// strings), so content hashing stays consistent with it.
impl std::hash::Hash for FeaturePath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialEq for FeaturePath {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl Ord for FeaturePath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            if Arc::ptr_eq(a, b) {
                continue;
            }
            match a.cmp(b) {
                std::cmp::Ordering::Equal => {}
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for FeaturePath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl FeaturePath {
    /// The labels of the path.
    pub fn labels(&self) -> &[Label] {
        &self.0
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the path has no labels (never produced by builders).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `true` if `self` is a strict prefix of `other`.
    pub fn is_strict_prefix_of(&self, other: &FeaturePath) -> bool {
        self.0.len() < other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl fmt::Display for FeaturePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join(" "))
    }
}

/// A rooted usage DAG, represented by its set of root-to-node label
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageDag {
    /// The root object's type (the root node label).
    pub root_type: Label,
    /// All root-to-node label paths, including the trivial root path.
    pub paths: BTreeSet<FeaturePath>,
}

impl UsageDag {
    /// The empty DAG for `root_type`: just the root node. Used to pad
    /// version sides with unequal object counts (paper §3.5).
    pub fn empty(root_type: impl Into<Label>) -> Self {
        let root_type = root_type.into();
        let mut paths = BTreeSet::new();
        paths.insert(FeaturePath(vec![root_type.clone()]));
        UsageDag { root_type, paths }
    }

    /// `true` if this DAG is just a root node.
    pub fn is_trivial(&self) -> bool {
        self.paths.len() <= 1
    }

    /// The intersection-over-union node distance of §3.5:
    /// `1 − |N₁∩N₂| / |N₁∪N₂|`.
    ///
    /// # Example
    ///
    /// ```
    /// use usagegraph::UsageDag;
    ///
    /// let a = UsageDag::empty("Cipher");
    /// assert_eq!(a.distance(&a), 0.0);
    /// let b = UsageDag::empty("MessageDigest");
    /// assert_eq!(a.distance(&b), 1.0, "disjoint node sets");
    /// ```
    pub fn distance(&self, other: &UsageDag) -> f64 {
        // One sorted-merge walk counts the intersection; the union size
        // follows from |A| + |B| − |A∩B|. Equivalent to
        // `intersection().count()` + `union().count()` at half the
        // comparisons — this is the inner loop of DAG pairing.
        let mut inter = 0usize;
        let mut a_iter = self.paths.iter();
        let mut b_iter = other.paths.iter();
        let (mut a, mut b) = (a_iter.next(), b_iter.next());
        while let (Some(x), Some(y)) = (a, b) {
            match x.cmp(y) {
                std::cmp::Ordering::Less => a = a_iter.next(),
                std::cmp::Ordering::Greater => b = b_iter.next(),
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    a = a_iter.next();
                    b = b_iter.next();
                }
            }
        }
        let union = self.paths.len() + other.paths.len() - inter;
        if union == 0 {
            return 0.0;
        }
        1.0 - inter as f64 / union as f64
    }
}

/// Builds the usage DAG for the abstract object at `root`, expanding
/// nested abstract objects breadth-first up to `max_depth` labels per
/// path. No path cap — for analysis results of trusted provenance; the
/// mining pipeline uses [`try_build_dag`].
pub fn build_dag(usages: &Usages, root: AllocSite, max_depth: usize) -> UsageDag {
    let limits = DagLimits {
        max_depth,
        ..DagLimits::UNBOUNDED
    };
    match try_build_dag(usages, root, &limits) {
        Ok(dag) => dag,
        // Unreachable with max_paths == usize::MAX; an empty DAG is the
        // graceful degradation if that ever changes.
        Err(_) => UsageDag::empty(intern(usages.type_of(root).unwrap_or("<unknown>"))),
    }
}

/// Builds the usage DAG for the abstract object at `root` under
/// explicit budgets.
///
/// # Errors
///
/// [`DagError::PathBudgetExceeded`] when the path set outgrows
/// `limits.max_paths`.
pub fn try_build_dag(
    usages: &Usages,
    root: AllocSite,
    limits: &DagLimits,
) -> Result<UsageDag, DagError> {
    try_build_dag_with(usages, root, limits, &mut DagScratch::default())
}

/// Reusable working memory for DAG construction. One instance serves
/// any number of [`try_build_dag_with`] calls over the same `Usages`,
/// so per-site builds don't re-allocate the path prefix, label buffer,
/// and cycle stack.
#[derive(Default)]
struct DagScratch<'u> {
    on_path: Vec<(&'u absdomain::MethodSig, &'u [AValue])>,
}

/// Lifetime-free working buffers for one DAG build: the root-to-here
/// label prefix, the label composition buffer, and the flat path list
/// of unbounded builds. Kept in a thread-local pool so consecutive
/// builds — including across *different* `Usages`, which the
/// lifetime-carrying [`DagScratch`] cannot outlive — reuse the same
/// three allocations. `take()` leaves `None` behind, so a re-entrant
/// build (impossible today, cheap to stay safe against) falls back to
/// fresh buffers instead of aliasing.
struct BuildBufs {
    prefix: Vec<Label>,
    label_buf: String,
    flat: Vec<FeaturePath>,
}

thread_local! {
    static BUILD_BUFS: std::cell::Cell<Option<BuildBufs>> = const { std::cell::Cell::new(None) };
}

/// Where [`expand`] deposits paths. Unbounded builds collect into a
/// `Vec` and bulk-build the `BTreeSet` once at the end — DFS emits
/// paths nearly sorted, so the set's sort-and-build `FromIterator` is
/// close to linear, where per-path `insert` pays tree rebalancing.
/// Budgeted builds keep the incremental set: the path budget counts
/// *distinct* paths, which only the set itself can tell.
enum PathSink<'a> {
    Counted(&'a mut BTreeSet<FeaturePath>),
    Flat(&'a mut Vec<FeaturePath>),
}

impl PathSink<'_> {
    fn push(&mut self, path: FeaturePath, limits: &DagLimits) -> Result<(), DagError> {
        match self {
            PathSink::Counted(paths) => {
                paths.insert(path);
                if paths.len() > limits.max_paths {
                    return Err(DagError::PathBudgetExceeded {
                        max_paths: limits.max_paths,
                    });
                }
                Ok(())
            }
            PathSink::Flat(paths) => {
                paths.push(path);
                Ok(())
            }
        }
    }
}

fn try_build_dag_with<'u>(
    usages: &'u Usages,
    root: AllocSite,
    limits: &DagLimits,
    scratch: &mut DagScratch<'u>,
) -> Result<UsageDag, DagError> {
    let root_type = intern(usages.type_of(root).unwrap_or("<unknown>"));
    let mut bufs = BUILD_BUFS
        .with(|cell| cell.take())
        .unwrap_or_else(|| BuildBufs {
            prefix: Vec::new(),
            label_buf: String::new(),
            flat: Vec::new(),
        });
    bufs.prefix.clear();
    bufs.prefix.push(root_type.clone());
    scratch.on_path.clear();
    let unbounded = limits.max_paths == usize::MAX;
    let mut dag = if unbounded {
        // The path set is bulk-built below; starting from the empty set
        // avoids a root-path insert that the rebuild would discard.
        UsageDag {
            root_type: root_type.clone(),
            paths: BTreeSet::new(),
        }
    } else {
        UsageDag::empty(root_type.clone())
    };
    let mut sink = if unbounded {
        bufs.flat.clear();
        bufs.flat.push(FeaturePath(bufs.prefix.clone()));
        PathSink::Flat(&mut bufs.flat)
    } else {
        PathSink::Counted(&mut dag.paths)
    };
    let expanded = expand(
        usages,
        root,
        &root_type,
        &mut bufs.prefix,
        &mut bufs.label_buf,
        limits,
        &mut sink,
        &mut scratch.on_path,
        /*is_root=*/ true,
    );
    if unbounded && expanded.is_ok() {
        // `FromIterator` sorts (near-linear on the almost-sorted DFS
        // emission) and bulk-builds the tree; equal-content duplicates
        // (repeated identical events) collapse exactly as per-path
        // `insert` would. `drain` keeps the flat buffer's allocation
        // for the next build.
        dag.paths = bufs.flat.drain(..).collect();
    }
    BUILD_BUFS.with(|cell| cell.set(Some(bufs)));
    expanded?;
    Ok(dag)
}

#[allow(clippy::too_many_arguments)]
fn expand<'u>(
    usages: &'u Usages,
    site: AllocSite,
    owner_type: &str,
    scratch: &mut Vec<Label>,
    label_buf: &mut String,
    limits: &DagLimits,
    sink: &mut PathSink<'_>,
    on_path: &mut Vec<(&'u absdomain::MethodSig, &'u [AValue])>,
    is_root: bool,
) -> Result<(), DagError> {
    // `scratch` holds the labels of the current root-to-here prefix;
    // labels are pushed/popped in place and each inserted path is one
    // `scratch.clone()` — refcount bumps, not string copies.
    if scratch.len() >= limits.max_depth {
        return Ok(());
    }
    for event in usages.events_of(site) {
        // Nested objects expand only with their own class's methods
        // (creation and self-calls); the methods of *other* classes they
        // are passed to already appear above them in the DAG. This is
        // what keeps Figure 2(c)'s IvParameterSpec node to a single
        // `<init>` child.
        if !is_root && &*event.method.class != owner_type {
            continue;
        }
        // Cycle prevention (paper: "add an edge … if it does not
        // introduce a cycle"): an event already on the current expansion
        // path is the same (m, σ) node. Compared by reference into the
        // usages table — no per-event key clone.
        if on_path
            .iter()
            .any(|&(m, a)| m == &event.method && a == &event.args[..])
        {
            continue;
        }
        // Same as `MethodSig::label_for`, but composing the qualified
        // label in the reusable buffer instead of a fresh `format!`
        // String per event occurrence.
        scratch.push(if &*event.method.class == owner_type {
            event.method.name.clone()
        } else {
            label_buf.clear();
            label_buf.push_str(&event.method.class);
            label_buf.push('.');
            label_buf.push_str(&event.method.name);
            intern(label_buf)
        });
        sink.push(FeaturePath(scratch.clone()), limits)?;

        if scratch.len() < limits.max_depth {
            for (index, arg) in event.args.iter().enumerate() {
                label_buf.clear();
                label_buf.push_str("arg");
                // Positional indices are tiny; pushing the digit directly
                // skips `write!`'s formatting machinery, which is
                // measurable at this call frequency.
                if index < 9 {
                    label_buf.push((b'1' + index as u8) as char);
                } else {
                    let _ = write!(label_buf, "{}", index + 1);
                }
                label_buf.push(':');
                arg.write_label(label_buf);
                scratch.push(intern(label_buf));
                sink.push(FeaturePath(scratch.clone()), limits)?;

                if let AValue::Obj { site: arg_site, ty } = arg {
                    if *arg_site != site {
                        on_path.push((&event.method, &event.args));
                        let result = expand(
                            usages, *arg_site, ty, scratch, label_buf, limits, sink, on_path,
                            /*is_root=*/ false,
                        );
                        on_path.pop();
                        result?;
                    }
                }
                scratch.pop();
            }
        }
        scratch.pop();
    }
    Ok(())
}

/// Builds one DAG per abstract object of type `class` in `usages`,
/// ordered by allocation site.
pub fn dags_for_class(usages: &Usages, class: &str, max_depth: usize) -> Vec<UsageDag> {
    let limits = DagLimits {
        max_depth,
        ..DagLimits::UNBOUNDED
    };
    let mut scratch = DagScratch::default();
    usages
        .objects_of_type(class)
        .map(|site| {
            try_build_dag_with(usages, site, &limits, &mut scratch).unwrap_or_else(|_| {
                // Unreachable with max_paths == usize::MAX; an empty DAG
                // is the graceful degradation if that ever changes.
                UsageDag::empty(intern(usages.type_of(site).unwrap_or("<unknown>")))
            })
        })
        .collect()
}

/// [`dags_for_class`] under explicit budgets: the object count and
/// every DAG's path set must stay within `limits`.
///
/// # Errors
///
/// [`DagError::TooManyObjects`] when the class has more than
/// `limits.max_objects` allocation sites, and any error of
/// [`try_build_dag`] for the individual DAGs.
pub fn try_dags_for_class(
    usages: &Usages,
    class: &str,
    limits: &DagLimits,
) -> Result<Vec<UsageDag>, DagError> {
    let objects = usages.objects_of_type(class).count();
    if objects > limits.max_objects {
        return Err(DagError::TooManyObjects {
            objects,
            max_objects: limits.max_objects,
        });
    }
    let mut scratch = DagScratch::default();
    usages
        .objects_of_type(class)
        .map(|site| try_build_dag_with(usages, site, limits, &mut scratch))
        .collect()
}

/// Pairs old-version DAGs with new-version DAGs by solving a min-cost
/// matching under the IoU distance (§3.5). Sides of unequal size are
/// padded with [`UsageDag::empty`].
///
/// Returns the paired DAGs (old, new) — padded entries appear as
/// trivial DAGs.
pub fn pair_dags(old: Vec<UsageDag>, new: Vec<UsageDag>, class: &str) -> Vec<(UsageDag, UsageDag)> {
    let n = old.len().max(new.len());
    if n == 0 {
        return Vec::new();
    }
    // One DAG per side (or one side absent) — the overwhelmingly common
    // shape per (change, class) — has a forced assignment: skip the
    // cost matrix and Hungarian solve entirely.
    if n == 1 {
        let a = old
            .into_iter()
            .next()
            .unwrap_or_else(|| UsageDag::empty(class));
        let b = new
            .into_iter()
            .next()
            .unwrap_or_else(|| UsageDag::empty(class));
        return vec![(a, b)];
    }
    let pad = UsageDag::empty(class);
    let cost: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let a = old.get(i).unwrap_or(&pad);
            (0..n)
                .map(|j| a.distance(new.get(j).unwrap_or(&pad)))
                .collect()
        })
        .collect();
    let (assignment, _) = min_cost_assignment(&cost);
    // The inputs are consumed: each DAG moves into its assigned pair,
    // and only padding slots (unequal version sides) allocate.
    let mut old_slots: Vec<Option<UsageDag>> = old.into_iter().map(Some).collect();
    let mut new_slots: Vec<Option<UsageDag>> = new.into_iter().map(Some).collect();
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| {
            let a = old_slots.get_mut(i).and_then(Option::take);
            let b = new_slots.get_mut(j).and_then(Option::take);
            (
                a.unwrap_or_else(|| pad.clone()),
                b.unwrap_or_else(|| pad.clone()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{analyze, ApiModel};

    fn dag_of(src: &str, class: &str) -> Vec<UsageDag> {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        dags_for_class(&usages, class, DEFAULT_MAX_DEPTH)
    }

    const FIGURE2_OLD: &str = r#"
        class AESCipher {
            Cipher enc, dec;
            final String algorithm = "AES";
            protected void setKey(Secret key) {
                try {
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key);
                    dec = Cipher.getInstance(algorithm);
                    dec.init(Cipher.DECRYPT_MODE, key);
                } catch (Exception e) { }
            }
        }
    "#;

    const FIGURE2_NEW: &str = r#"
        class AESCipher {
            Cipher enc, dec;
            final String algorithm = "AES/CBC/PKCS5Padding";
            protected void setKeyAndIV(Secret key, String iv) {
                byte[] ivBytes;
                IvParameterSpec ivSpec;
                try {
                    ivBytes = Hex.decodeHex(iv.toCharArray());
                    ivSpec = new IvParameterSpec(ivBytes);
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                    dec = Cipher.getInstance(algorithm);
                    dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
                } catch (Exception e) { }
            }
        }
    "#;

    fn paths_of(dag: &UsageDag) -> Vec<String> {
        dag.paths.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn figure2b_old_enc_dag() {
        let dags = dag_of(FIGURE2_OLD, "Cipher");
        assert_eq!(dags.len(), 2);
        let enc = &dags[0];
        let expected: BTreeSet<String> = [
            "Cipher",
            "Cipher getInstance",
            "Cipher getInstance arg1:AES",
            "Cipher init",
            "Cipher init arg1:ENCRYPT_MODE",
            "Cipher init arg2:Secret",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        let got: BTreeSet<String> = paths_of(enc).into_iter().collect();
        assert_eq!(got, expected, "Figure 2(b) node set");
    }

    #[test]
    fn figure2c_new_enc_dag() {
        let dags = dag_of(FIGURE2_NEW, "Cipher");
        let enc = &dags[0];
        let expected: BTreeSet<String> = [
            "Cipher",
            "Cipher getInstance",
            "Cipher getInstance arg1:AES/CBC/PKCS5Padding",
            "Cipher init",
            "Cipher init arg1:ENCRYPT_MODE",
            "Cipher init arg2:Secret",
            "Cipher init arg3:IvParameterSpec",
            "Cipher init arg3:IvParameterSpec <init>",
            "Cipher init arg3:IvParameterSpec <init> arg1:\u{22a4}byte[]",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        let got: BTreeSet<String> = paths_of(enc).into_iter().collect();
        assert_eq!(got, expected, "Figure 2(c) node set with cycle-free <init>");
    }

    #[test]
    fn figure2_distance_is_one_half() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        let d = old[0].distance(&new[0]);
        assert!((d - 0.5).abs() < 1e-9, "paper reports dist = 1/2, got {d}");
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        for a in old.iter().chain(new.iter()) {
            assert!(a.distance(a).abs() < 1e-9, "d(x,x) = 0");
            for b in old.iter().chain(new.iter()) {
                let ab = a.distance(b);
                assert!((ab - b.distance(a)).abs() < 1e-9, "symmetry");
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn pairing_matches_like_with_like() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        let pairs = pair_dags(old, new, "Cipher");
        assert_eq!(pairs.len(), 2);
        // enc pairs with enc (both use ENCRYPT_MODE), dec with dec.
        let enc_pair = &pairs[0];
        assert!(enc_pair
            .0
            .paths
            .iter()
            .any(|p| p.to_string().contains("ENCRYPT")));
        assert!(enc_pair
            .1
            .paths
            .iter()
            .any(|p| p.to_string().contains("ENCRYPT")));
    }

    #[test]
    fn pairing_pads_unequal_sides() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let pairs = pair_dags(old, Vec::new(), "Cipher");
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|(_, new)| new.is_trivial()));
    }

    #[test]
    fn empty_dag_distance_to_itself_is_zero() {
        let a = UsageDag::empty("Cipher");
        let b = UsageDag::empty("Cipher");
        assert!(a.distance(&b).abs() < 1e-9);
    }

    #[test]
    fn path_budget_boundary_is_exact() {
        let unit = javalang::parse_compilation_unit(FIGURE2_NEW).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        let site = usages.objects_of_type("Cipher").next().unwrap();
        let full = build_dag(&usages, site, DEFAULT_MAX_DEPTH);
        let n = full.paths.len();

        let exact = DagLimits {
            max_paths: n,
            ..DagLimits::DEFAULT
        };
        assert_eq!(try_build_dag(&usages, site, &exact), Ok(full));

        let short = DagLimits {
            max_paths: n - 1,
            ..DagLimits::DEFAULT
        };
        assert_eq!(
            try_build_dag(&usages, site, &short),
            Err(DagError::PathBudgetExceeded { max_paths: n - 1 })
        );
    }

    #[test]
    fn object_cap_rejects_crowded_classes() {
        let unit = javalang::parse_compilation_unit(FIGURE2_NEW).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        let tight = DagLimits {
            max_objects: 1,
            ..DagLimits::DEFAULT
        };
        assert_eq!(
            try_dags_for_class(&usages, "Cipher", &tight),
            Err(DagError::TooManyObjects {
                objects: 2,
                max_objects: 1
            })
        );
        let loose = DagLimits {
            max_objects: 2,
            ..DagLimits::DEFAULT
        };
        let dags = try_dags_for_class(&usages, "Cipher", &loose).unwrap();
        assert_eq!(dags, dags_for_class(&usages, "Cipher", DEFAULT_MAX_DEPTH));
    }

    #[test]
    fn strict_prefix() {
        let a = FeaturePath(vec!["A".into(), "b".into()]);
        let b = FeaturePath(vec!["A".into(), "b".into(), "c".into()]);
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_strict_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
    }
}
