//! Usage DAGs (paper §3.4).
//!
//! A node's identity is its root-to-node **label path** — this respects
//! the edge structure, makes the node-set intersection/union of the
//! distance metric well-defined across graphs, and directly yields the
//! feature paths of §3.5. On the paper's Figure 2 example this
//! representation reproduces the published distance (`1/2`) and the
//! published removed/added features exactly.

use crate::limits::{DagError, DagLimits};
use crate::matching::min_cost_assignment;
use absdomain::{AValue, AllocSite};
use analysis::Usages;
use std::collections::BTreeSet;
use std::fmt;

/// Default maximum path length (the paper's construction depth n = 5).
pub const DEFAULT_MAX_DEPTH: usize = 5;

/// One root-to-node label path, e.g.
/// `["Cipher", "getInstance", "arg1:AES"]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeaturePath(pub Vec<String>);

impl FeaturePath {
    /// The labels of the path.
    pub fn labels(&self) -> &[String] {
        &self.0
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the path has no labels (never produced by builders).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `true` if `self` is a strict prefix of `other`.
    pub fn is_strict_prefix_of(&self, other: &FeaturePath) -> bool {
        self.0.len() < other.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for FeaturePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join(" "))
    }
}

/// A rooted usage DAG, represented by its set of root-to-node label
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageDag {
    /// The root object's type (the root node label).
    pub root_type: String,
    /// All root-to-node label paths, including the trivial root path.
    pub paths: BTreeSet<FeaturePath>,
}

impl UsageDag {
    /// The empty DAG for `root_type`: just the root node. Used to pad
    /// version sides with unequal object counts (paper §3.5).
    pub fn empty(root_type: impl Into<String>) -> Self {
        let root_type = root_type.into();
        let mut paths = BTreeSet::new();
        paths.insert(FeaturePath(vec![root_type.clone()]));
        UsageDag { root_type, paths }
    }

    /// `true` if this DAG is just a root node.
    pub fn is_trivial(&self) -> bool {
        self.paths.len() <= 1
    }

    /// The intersection-over-union node distance of §3.5:
    /// `1 − |N₁∩N₂| / |N₁∪N₂|`.
    ///
    /// # Example
    ///
    /// ```
    /// use usagegraph::UsageDag;
    ///
    /// let a = UsageDag::empty("Cipher");
    /// assert_eq!(a.distance(&a), 0.0);
    /// let b = UsageDag::empty("MessageDigest");
    /// assert_eq!(a.distance(&b), 1.0, "disjoint node sets");
    /// ```
    pub fn distance(&self, other: &UsageDag) -> f64 {
        let inter = self.paths.intersection(&other.paths).count();
        let union = self.paths.union(&other.paths).count();
        if union == 0 {
            return 0.0;
        }
        1.0 - inter as f64 / union as f64
    }
}

/// Builds the usage DAG for the abstract object at `root`, expanding
/// nested abstract objects breadth-first up to `max_depth` labels per
/// path. No path cap — for analysis results of trusted provenance; the
/// mining pipeline uses [`try_build_dag`].
pub fn build_dag(usages: &Usages, root: AllocSite, max_depth: usize) -> UsageDag {
    let limits = DagLimits {
        max_depth,
        ..DagLimits::UNBOUNDED
    };
    match try_build_dag(usages, root, &limits) {
        Ok(dag) => dag,
        // Unreachable with max_paths == usize::MAX; an empty DAG is the
        // graceful degradation if that ever changes.
        Err(_) => UsageDag::empty(usages.type_of(root).unwrap_or("<unknown>").to_owned()),
    }
}

/// Builds the usage DAG for the abstract object at `root` under
/// explicit budgets.
///
/// # Errors
///
/// [`DagError::PathBudgetExceeded`] when the path set outgrows
/// `limits.max_paths`.
pub fn try_build_dag(
    usages: &Usages,
    root: AllocSite,
    limits: &DagLimits,
) -> Result<UsageDag, DagError> {
    let root_type = usages.type_of(root).unwrap_or("<unknown>").to_owned();
    let mut dag = UsageDag::empty(root_type.clone());
    let mut on_path: Vec<(absdomain::MethodSig, Vec<AValue>)> = Vec::new();
    expand(
        usages,
        root,
        &root_type,
        &FeaturePath(vec![root_type.clone()]),
        limits,
        &mut dag.paths,
        &mut on_path,
        /*is_root=*/ true,
    )?;
    Ok(dag)
}

/// Inserts `path` into `paths`, failing when the budget is exceeded.
fn insert_path(
    paths: &mut BTreeSet<FeaturePath>,
    path: FeaturePath,
    limits: &DagLimits,
) -> Result<(), DagError> {
    paths.insert(path);
    if paths.len() > limits.max_paths {
        return Err(DagError::PathBudgetExceeded {
            max_paths: limits.max_paths,
        });
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn expand(
    usages: &Usages,
    site: AllocSite,
    owner_type: &str,
    prefix: &FeaturePath,
    limits: &DagLimits,
    paths: &mut BTreeSet<FeaturePath>,
    on_path: &mut Vec<(absdomain::MethodSig, Vec<AValue>)>,
    is_root: bool,
) -> Result<(), DagError> {
    if prefix.len() >= limits.max_depth {
        return Ok(());
    }
    for event in usages.events_of(site) {
        // Nested objects expand only with their own class's methods
        // (creation and self-calls); the methods of *other* classes they
        // are passed to already appear above them in the DAG. This is
        // what keeps Figure 2(c)'s IvParameterSpec node to a single
        // `<init>` child.
        if !is_root && event.method.class != owner_type {
            continue;
        }
        // Cycle prevention (paper: "add an edge … if it does not
        // introduce a cycle"): an event already on the current expansion
        // path is the same (m, σ) node.
        let key = (event.method.clone(), event.args.clone());
        if on_path.contains(&key) {
            continue;
        }
        let method_label = event.method.label_for(owner_type);
        let mut method_path = prefix.0.clone();
        method_path.push(method_label);
        let method_path = FeaturePath(method_path);
        insert_path(paths, method_path.clone(), limits)?;

        if method_path.len() >= limits.max_depth {
            continue;
        }
        for (index, arg) in event.args.iter().enumerate() {
            let label = format!("arg{}:{}", index + 1, arg.label());
            let mut arg_path = method_path.0.clone();
            arg_path.push(label);
            let arg_path = FeaturePath(arg_path);
            insert_path(paths, arg_path.clone(), limits)?;

            if let AValue::Obj { site: arg_site, ty } = arg {
                if *arg_site != site {
                    on_path.push(key.clone());
                    let result = expand(
                        usages, *arg_site, ty, &arg_path, limits, paths, on_path,
                        /*is_root=*/ false,
                    );
                    on_path.pop();
                    result?;
                }
            }
        }
    }
    Ok(())
}

/// Builds one DAG per abstract object of type `class` in `usages`,
/// ordered by allocation site.
pub fn dags_for_class(usages: &Usages, class: &str, max_depth: usize) -> Vec<UsageDag> {
    usages
        .objects_of_type(class)
        .map(|site| build_dag(usages, site, max_depth))
        .collect()
}

/// [`dags_for_class`] under explicit budgets: the object count and
/// every DAG's path set must stay within `limits`.
///
/// # Errors
///
/// [`DagError::TooManyObjects`] when the class has more than
/// `limits.max_objects` allocation sites, and any error of
/// [`try_build_dag`] for the individual DAGs.
pub fn try_dags_for_class(
    usages: &Usages,
    class: &str,
    limits: &DagLimits,
) -> Result<Vec<UsageDag>, DagError> {
    let objects = usages.objects_of_type(class).count();
    if objects > limits.max_objects {
        return Err(DagError::TooManyObjects {
            objects,
            max_objects: limits.max_objects,
        });
    }
    usages
        .objects_of_type(class)
        .map(|site| try_build_dag(usages, site, limits))
        .collect()
}

/// Pairs old-version DAGs with new-version DAGs by solving a min-cost
/// matching under the IoU distance (§3.5). Sides of unequal size are
/// padded with [`UsageDag::empty`].
///
/// Returns the paired DAGs (old, new) — padded entries appear as
/// trivial DAGs.
pub fn pair_dags(old: &[UsageDag], new: &[UsageDag], class: &str) -> Vec<(UsageDag, UsageDag)> {
    let n = old.len().max(new.len());
    if n == 0 {
        return Vec::new();
    }
    let pad = UsageDag::empty(class);
    let old_padded: Vec<&UsageDag> = (0..n).map(|i| old.get(i).unwrap_or(&pad)).collect();
    let new_padded: Vec<&UsageDag> = (0..n).map(|i| new.get(i).unwrap_or(&pad)).collect();

    let cost: Vec<Vec<f64>> = old_padded
        .iter()
        .map(|a| new_padded.iter().map(|b| a.distance(b)).collect())
        .collect();
    let (assignment, _) = min_cost_assignment(&cost);
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| (old_padded[i].clone(), new_padded[j].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{analyze, ApiModel};

    fn dag_of(src: &str, class: &str) -> Vec<UsageDag> {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        dags_for_class(&usages, class, DEFAULT_MAX_DEPTH)
    }

    const FIGURE2_OLD: &str = r#"
        class AESCipher {
            Cipher enc, dec;
            final String algorithm = "AES";
            protected void setKey(Secret key) {
                try {
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key);
                    dec = Cipher.getInstance(algorithm);
                    dec.init(Cipher.DECRYPT_MODE, key);
                } catch (Exception e) { }
            }
        }
    "#;

    const FIGURE2_NEW: &str = r#"
        class AESCipher {
            Cipher enc, dec;
            final String algorithm = "AES/CBC/PKCS5Padding";
            protected void setKeyAndIV(Secret key, String iv) {
                byte[] ivBytes;
                IvParameterSpec ivSpec;
                try {
                    ivBytes = Hex.decodeHex(iv.toCharArray());
                    ivSpec = new IvParameterSpec(ivBytes);
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                    dec = Cipher.getInstance(algorithm);
                    dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
                } catch (Exception e) { }
            }
        }
    "#;

    fn paths_of(dag: &UsageDag) -> Vec<String> {
        dag.paths.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn figure2b_old_enc_dag() {
        let dags = dag_of(FIGURE2_OLD, "Cipher");
        assert_eq!(dags.len(), 2);
        let enc = &dags[0];
        let expected: BTreeSet<String> = [
            "Cipher",
            "Cipher getInstance",
            "Cipher getInstance arg1:AES",
            "Cipher init",
            "Cipher init arg1:ENCRYPT_MODE",
            "Cipher init arg2:Secret",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        let got: BTreeSet<String> = paths_of(enc).into_iter().collect();
        assert_eq!(got, expected, "Figure 2(b) node set");
    }

    #[test]
    fn figure2c_new_enc_dag() {
        let dags = dag_of(FIGURE2_NEW, "Cipher");
        let enc = &dags[0];
        let expected: BTreeSet<String> = [
            "Cipher",
            "Cipher getInstance",
            "Cipher getInstance arg1:AES/CBC/PKCS5Padding",
            "Cipher init",
            "Cipher init arg1:ENCRYPT_MODE",
            "Cipher init arg2:Secret",
            "Cipher init arg3:IvParameterSpec",
            "Cipher init arg3:IvParameterSpec <init>",
            "Cipher init arg3:IvParameterSpec <init> arg1:\u{22a4}byte[]",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        let got: BTreeSet<String> = paths_of(enc).into_iter().collect();
        assert_eq!(got, expected, "Figure 2(c) node set with cycle-free <init>");
    }

    #[test]
    fn figure2_distance_is_one_half() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        let d = old[0].distance(&new[0]);
        assert!((d - 0.5).abs() < 1e-9, "paper reports dist = 1/2, got {d}");
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        for a in old.iter().chain(new.iter()) {
            assert!(a.distance(a).abs() < 1e-9, "d(x,x) = 0");
            for b in old.iter().chain(new.iter()) {
                let ab = a.distance(b);
                assert!((ab - b.distance(a)).abs() < 1e-9, "symmetry");
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn pairing_matches_like_with_like() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let new = dag_of(FIGURE2_NEW, "Cipher");
        let pairs = pair_dags(&old, &new, "Cipher");
        assert_eq!(pairs.len(), 2);
        // enc pairs with enc (both use ENCRYPT_MODE), dec with dec.
        let enc_pair = &pairs[0];
        assert!(enc_pair
            .0
            .paths
            .iter()
            .any(|p| p.to_string().contains("ENCRYPT")));
        assert!(enc_pair
            .1
            .paths
            .iter()
            .any(|p| p.to_string().contains("ENCRYPT")));
    }

    #[test]
    fn pairing_pads_unequal_sides() {
        let old = dag_of(FIGURE2_OLD, "Cipher");
        let pairs = pair_dags(&old, &[], "Cipher");
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|(_, new)| new.is_trivial()));
    }

    #[test]
    fn empty_dag_distance_to_itself_is_zero() {
        let a = UsageDag::empty("Cipher");
        let b = UsageDag::empty("Cipher");
        assert!(a.distance(&b).abs() < 1e-9);
    }

    #[test]
    fn path_budget_boundary_is_exact() {
        let unit = javalang::parse_compilation_unit(FIGURE2_NEW).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        let site = usages.objects_of_type("Cipher").next().unwrap();
        let full = build_dag(&usages, site, DEFAULT_MAX_DEPTH);
        let n = full.paths.len();

        let exact = DagLimits {
            max_paths: n,
            ..DagLimits::DEFAULT
        };
        assert_eq!(try_build_dag(&usages, site, &exact), Ok(full));

        let short = DagLimits {
            max_paths: n - 1,
            ..DagLimits::DEFAULT
        };
        assert_eq!(
            try_build_dag(&usages, site, &short),
            Err(DagError::PathBudgetExceeded { max_paths: n - 1 })
        );
    }

    #[test]
    fn object_cap_rejects_crowded_classes() {
        let unit = javalang::parse_compilation_unit(FIGURE2_NEW).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        let tight = DagLimits {
            max_objects: 1,
            ..DagLimits::DEFAULT
        };
        assert_eq!(
            try_dags_for_class(&usages, "Cipher", &tight),
            Err(DagError::TooManyObjects {
                objects: 2,
                max_objects: 1
            })
        );
        let loose = DagLimits {
            max_objects: 2,
            ..DagLimits::DEFAULT
        };
        let dags = try_dags_for_class(&usages, "Cipher", &loose).unwrap();
        assert_eq!(dags, dags_for_class(&usages, "Cipher", DEFAULT_MAX_DEPTH));
    }

    #[test]
    fn strict_prefix() {
        let a = FeaturePath(vec!["A".into(), "b".into()]);
        let b = FeaturePath(vec!["A".into(), "b".into(), "c".into()]);
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_strict_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
    }
}
