//! From DAG pairs to usage changes (paper §3.5).

use crate::dag::{FeaturePath, UsageDag};
use std::collections::BTreeSet;
use std::fmt;

/// The semantic diff of one paired (old, new) DAG:
/// `Diff(G₁,G₂) = (F⁻, F⁺)` with
/// `F⁻ = Removed(G₁,G₂)` and `F⁺ = Removed(G₂,G₁)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UsageChange {
    /// The target API class this change concerns.
    pub class: String,
    /// Shortest feature paths present in the old version only.
    pub removed: Vec<FeaturePath>,
    /// Shortest feature paths present in the new version only.
    pub added: Vec<FeaturePath>,
}

impl UsageChange {
    /// `true` if neither features were removed nor added — the usage is
    /// identical under the abstraction (filter `fsame`).
    pub fn is_same(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// `true` if features were only added (filter `fadd`: a new API
    /// usage was introduced, not fixed).
    pub fn is_pure_addition(&self) -> bool {
        self.removed.is_empty() && !self.added.is_empty()
    }

    /// `true` if features were only removed (filter `frem`).
    pub fn is_pure_removal(&self) -> bool {
        !self.removed.is_empty() && self.added.is_empty()
    }
}

impl fmt::Display for UsageChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.removed {
            writeln!(f, "- {p}")?;
        }
        for p in &self.added {
            writeln!(f, "+ {p}")?;
        }
        Ok(())
    }
}

/// `Shortest(P)`: keeps a path iff no other path in `P` is a strict
/// prefix of it.
pub fn shortest(paths: &BTreeSet<FeaturePath>) -> Vec<FeaturePath> {
    paths
        .iter()
        .filter(|p| !paths.iter().any(|q| q.is_strict_prefix_of(p)))
        .cloned()
        .collect()
}

/// `Removed(G₁,G₂) = Shortest(Paths(G₁) \ Paths(G₂))`.
pub fn removed(g1: &UsageDag, g2: &UsageDag) -> Vec<FeaturePath> {
    // Work on borrowed difference entries (already in sorted set
    // order); only the surviving shortest paths are cloned.
    let diff: Vec<&FeaturePath> = g1.paths.difference(&g2.paths).collect();
    diff.iter()
        .filter(|p| !diff.iter().any(|q| q.is_strict_prefix_of(p)))
        .map(|p| (*p).clone())
        .collect()
}

/// Computes the usage change for a paired (old, new) DAG.
pub fn diff_dags(old: &UsageDag, new: &UsageDag) -> UsageChange {
    UsageChange {
        class: old.root_type.to_string(),
        removed: removed(old, new),
        added: removed(new, old),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Label;
    use crate::dag::{dags_for_class, pair_dags, DEFAULT_MAX_DEPTH};
    use analysis::{analyze, ApiModel};

    fn dags(src: &str, class: &str) -> Vec<UsageDag> {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        dags_for_class(&usages, class, DEFAULT_MAX_DEPTH)
    }

    fn path(labels: &[&str]) -> FeaturePath {
        FeaturePath(labels.iter().copied().map(Label::from).collect())
    }

    #[test]
    fn shortest_drops_extensions() {
        let mut set = BTreeSet::new();
        set.insert(path(&["a", "b"]));
        set.insert(path(&["a", "b", "c"]));
        set.insert(path(&["b", "c"]));
        let s = shortest(&set);
        assert_eq!(s, vec![path(&["a", "b"]), path(&["b", "c"])]);
    }

    #[test]
    fn figure2d_removed_and_added_features() {
        let old_src = r#"
            class AESCipher {
                Cipher enc;
                final String algorithm = "AES";
                protected void setKey(Secret key) {
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key);
                }
            }
        "#;
        let new_src = r#"
            class AESCipher {
                Cipher enc;
                final String algorithm = "AES/CBC/PKCS5Padding";
                protected void setKeyAndIV(Secret key, String iv) {
                    byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
                    IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                }
            }
        "#;
        let old = dags(old_src, "Cipher");
        let new = dags(new_src, "Cipher");
        let pairs = pair_dags(old, new, "Cipher");
        assert_eq!(pairs.len(), 1);
        let change = diff_dags(&pairs[0].0, &pairs[0].1);

        assert_eq!(
            change.removed,
            vec![path(&["Cipher", "getInstance", "arg1:AES"])],
            "Figure 2(d) removed features"
        );
        // `init/2` and `init/3` are different signatures, so the old
        // init arity-2 call also disappears; the paper's figure elides
        // arity. The essential added features must be present:
        let added: Vec<String> = change.added.iter().map(|p| p.to_string()).collect();
        assert!(
            added.contains(&"Cipher getInstance arg1:AES/CBC/PKCS5Padding".to_owned()),
            "{added:?}"
        );
        assert!(
            added.contains(&"Cipher init arg3:IvParameterSpec".to_owned()),
            "{added:?}"
        );
    }

    #[test]
    fn refactoring_produces_same() {
        let old_src = r#"
            class C {
                void m() throws Exception {
                    Cipher c = Cipher.getInstance("AES/GCM/NoPadding");
                }
            }
        "#;
        let new_src = r#"
            class C {
                // Renamed local + extracted constant: same abstraction.
                static final String A = "AES/GCM/NoPadding";
                void encryptPayload() throws Exception {
                    Cipher cipherInstance = Cipher.getInstance(A);
                }
            }
        "#;
        let old = dags(old_src, "Cipher");
        let new = dags(new_src, "Cipher");
        let pairs = pair_dags(old, new, "Cipher");
        let change = diff_dags(&pairs[0].0, &pairs[0].1);
        assert!(change.is_same(), "{change}");
    }

    #[test]
    fn pure_addition_detected() {
        let old = UsageDag::empty("Cipher");
        let new_src = r#"
            class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }
        "#;
        let new = dags(new_src, "Cipher");
        let change = diff_dags(&old, &new[0]);
        assert!(change.is_pure_addition());
        assert!(!change.is_pure_removal());
        assert!(!change.is_same());
    }

    #[test]
    fn display_shows_plus_minus() {
        let change = UsageChange {
            class: "Cipher".into(),
            removed: vec![path(&["Cipher", "getInstance", "arg1:AES"])],
            added: vec![path(&["Cipher", "getInstance", "arg1:AES/GCM"])],
        };
        let s = change.to_string();
        assert!(s.contains("- Cipher getInstance arg1:AES\n"));
        assert!(s.contains("+ Cipher getInstance arg1:AES/GCM\n"));
    }
}
