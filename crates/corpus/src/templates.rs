//! Java source templates for crypto-using modules.
//!
//! Each module is a *scenario* — the security-relevant state (cipher
//! mode, IV discipline, key material, digest algorithm, RNG
//! construction, PBE parameters) plus *style knobs* (names, constant
//! extraction, helper methods, logging). Rendering a scenario yields a
//! parseable Java class; changing only style knobs yields a pure
//! refactoring (identical under the DiffCode abstraction), while
//! changing the security state yields a semantic usage change.

use std::fmt::Write as _;

/// Cipher transformations used in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CipherAlgo {
    /// `"AES"` — ECB by default (insecure).
    AesDefault,
    AesEcb,
    AesCbc,
    AesCtr,
    AesGcm,
    Des,
    DesEde,
    Blowfish,
    Rsa,
}

/// Padding schemes for block-cipher transformations (diversifies the
/// transformation strings the way real repositories do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Padding {
    /// `PKCS5Padding`.
    #[default]
    Pkcs5,
    /// `NoPadding`.
    None,
    /// `PKCS7Padding` (BouncyCastle spelling).
    Pkcs7,
}

impl Padding {
    /// The suffix in the transformation string.
    pub fn as_str(self) -> &'static str {
        match self {
            Padding::Pkcs5 => "PKCS5Padding",
            Padding::None => "NoPadding",
            Padding::Pkcs7 => "PKCS7Padding",
        }
    }
}

impl CipherAlgo {
    /// The transformation string passed to `Cipher.getInstance`.
    pub fn transformation(self, padding: Padding) -> String {
        let p = padding.as_str();
        match self {
            CipherAlgo::AesDefault => "AES".to_owned(),
            CipherAlgo::AesEcb => format!("AES/ECB/{p}"),
            CipherAlgo::AesCbc => format!("AES/CBC/{p}"),
            CipherAlgo::AesCtr => "AES/CTR/NoPadding".to_owned(),
            CipherAlgo::AesGcm => "AES/GCM/NoPadding".to_owned(),
            CipherAlgo::Des => format!("DES/CBC/{p}"),
            CipherAlgo::DesEde => format!("DESede/CBC/{p}"),
            CipherAlgo::Blowfish => format!("Blowfish/CBC/{p}"),
            CipherAlgo::Rsa => "RSA/ECB/OAEPWithSHA-256AndMGF1Padding".to_owned(),
        }
    }

    /// Whether the mode requires an IV.
    pub fn needs_iv(self) -> bool {
        !matches!(
            self,
            CipherAlgo::AesDefault | CipherAlgo::AesEcb | CipherAlgo::Rsa
        )
    }

    /// Whether the IV parameter is a `GCMParameterSpec`.
    pub fn uses_gcm_spec(self) -> bool {
        matches!(self, CipherAlgo::AesGcm)
    }

    /// The key algorithm name for `SecretKeySpec`.
    pub fn key_algo(self) -> &'static str {
        match self {
            CipherAlgo::Des => "DES",
            CipherAlgo::DesEde => "DESede",
            CipherAlgo::Blowfish => "Blowfish",
            _ => "AES",
        }
    }
}

/// How the IV is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IvKind {
    /// No IV is passed (ECB / default mode).
    NoIv,
    /// A hard-coded / zero IV (violates R9).
    StaticIv,
    /// A `SecureRandom`-generated IV.
    RandomIv,
    /// The IV arrives as a method parameter.
    ParamIv,
}

/// Where the secret key comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// A hard-coded key constant (violates R10).
    HardcodedKey,
    /// Key bytes arrive as a parameter.
    ParamKey,
    /// A `KeyGenerator`-generated key.
    GeneratedKey,
}

/// Style knobs — changing these is a refactoring, never a semantic
/// change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StyleKnobs {
    /// Index into the naming tables.
    pub naming: u8,
    /// Extract the transformation string into a `static final` field.
    pub extract_const: bool,
    /// Create the engine object through a private helper method.
    pub helper: bool,
    /// Include an unrelated logging method.
    pub log_method: bool,
    /// A comment revision counter (bumping it is a trivially unrelated
    /// edit).
    pub revision: u32,
}

const METHOD_NAMES: [&str; 4] = ["encrypt", "encryptData", "doEncrypt", "encryptBytes"];
const VAR_NAMES: [&str; 4] = ["cipher", "enc", "aesCipher", "c"];
const HASH_NAMES: [&str; 4] = ["hash", "digestOf", "computeHash", "checksum"];
const TOKEN_NAMES: [&str; 4] = ["nextToken", "randomBytes", "generateToken", "makeNonce"];
const DERIVE_NAMES: [&str; 4] = ["deriveKey", "keyFromPassword", "derive", "pbkdf"];

/// A module that encrypts data with a symmetric cipher — exercises
/// `Cipher`, `SecretKeySpec`, `IvParameterSpec`/`GCMParameterSpec`,
/// `SecureRandom`, and optionally `Mac` and an RSA key-wrap cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CipherScenario {
    /// The transformation.
    pub algo: CipherAlgo,
    /// Padding scheme for block modes.
    pub padding: Padding,
    /// Explicit provider (`Some("BC")` satisfies R5).
    pub bc_provider: bool,
    /// IV discipline.
    pub iv: IvKind,
    /// Key material source.
    pub key: KeyKind,
    /// Include an RSA key-wrap cipher (R13 precondition).
    pub rsa_wrap: bool,
    /// Include an HMAC (R13 remedy).
    pub with_mac: bool,
    /// Number of extra independent cipher usages.
    pub extra_usages: u8,
    /// Style.
    pub style: StyleKnobs,
}

impl CipherScenario {
    /// Renders the Java source for this scenario.
    pub fn render(&self, class_name: &str, package: &str) -> String {
        let s = &self.style;
        let n = s.naming as usize;
        let method = METHOD_NAMES[n % METHOD_NAMES.len()];
        let var = VAR_NAMES[n % VAR_NAMES.len()];
        let transform = self.algo.transformation(self.padding);
        let key_algo = self.algo.key_algo();

        let mut out = String::new();
        let _ = writeln!(out, "package {package};");
        out.push('\n');
        out.push_str("import javax.crypto.Cipher;\n");
        out.push_str("import javax.crypto.Mac;\n");
        out.push_str("import javax.crypto.spec.SecretKeySpec;\n");
        out.push_str("import javax.crypto.spec.IvParameterSpec;\n");
        out.push_str("import javax.crypto.spec.GCMParameterSpec;\n");
        out.push_str("import java.security.SecureRandom;\n");
        out.push('\n');
        let _ = writeln!(out, "// rev {}", s.revision);
        let _ = writeln!(out, "public class {class_name} {{");

        if s.extract_const {
            let _ = writeln!(
                out,
                "    private static final String TRANSFORM = \"{transform}\";"
            );
        }
        if self.key == KeyKind::HardcodedKey {
            out.push_str(
                "    private static final byte[] KEY_BYTES = { 0x13, 0x37, 0x42, 0x07, 0x13, 0x37, 0x42, 0x07, 0x13, 0x37, 0x42, 0x07, 0x13, 0x37, 0x42, 0x07 };\n",
            );
        }
        if self.iv == IvKind::StaticIv {
            out.push_str("    private static final byte[] IV = new byte[16];\n");
        }
        out.push('\n');

        // Parameters of the encrypt method.
        let mut params = vec!["byte[] data".to_owned()];
        if self.key == KeyKind::ParamKey {
            params.push("byte[] keyBytes".to_owned());
        }
        if self.iv == IvKind::ParamIv {
            params.push("byte[] ivBytes".to_owned());
        }

        let transform_expr = if s.extract_const {
            "TRANSFORM".to_owned()
        } else {
            format!("\"{transform}\"")
        };
        let get_instance = if self.bc_provider {
            format!("Cipher.getInstance({transform_expr}, \"BC\")")
        } else {
            format!("Cipher.getInstance({transform_expr})")
        };

        let _ = writeln!(
            out,
            "    public byte[] {method}({}) throws Exception {{",
            params.join(", ")
        );

        // Key material.
        match self.key {
            KeyKind::HardcodedKey => {
                let _ = writeln!(
                    out,
                    "        SecretKeySpec keySpec = new SecretKeySpec(KEY_BYTES, \"{key_algo}\");"
                );
            }
            KeyKind::ParamKey => {
                let _ = writeln!(
                    out,
                    "        SecretKeySpec keySpec = new SecretKeySpec(keyBytes, \"{key_algo}\");"
                );
            }
            KeyKind::GeneratedKey => {
                let _ = writeln!(
                    out,
                    "        javax.crypto.KeyGenerator keyGen = javax.crypto.KeyGenerator.getInstance(\"{key_algo}\");"
                );
                out.push_str("        javax.crypto.SecretKey keySpec = keyGen.generateKey();\n");
            }
        }

        // IV.
        let iv_var = match self.iv {
            IvKind::NoIv => None,
            IvKind::StaticIv => Some("IV".to_owned()),
            IvKind::RandomIv => {
                out.push_str("        byte[] ivBytes = new byte[16];\n");
                out.push_str("        SecureRandom ivRandom = new SecureRandom();\n");
                out.push_str("        ivRandom.nextBytes(ivBytes);\n");
                Some("ivBytes".to_owned())
            }
            IvKind::ParamIv => Some("ivBytes".to_owned()),
        };
        let spec_var = if let Some(iv) = &iv_var {
            if self.algo.uses_gcm_spec() {
                let _ = writeln!(
                    out,
                    "        GCMParameterSpec paramSpec = new GCMParameterSpec(128, {iv});"
                );
            } else {
                let _ = writeln!(
                    out,
                    "        IvParameterSpec paramSpec = new IvParameterSpec({iv});"
                );
            }
            Some("paramSpec")
        } else {
            None
        };

        // Cipher creation + init.
        if s.helper {
            let _ = writeln!(out, "        Cipher {var} = createCipher();");
        } else {
            let _ = writeln!(out, "        Cipher {var} = {get_instance};");
        }
        match spec_var {
            Some(spec) => {
                let _ = writeln!(
                    out,
                    "        {var}.init(Cipher.ENCRYPT_MODE, keySpec, {spec});"
                );
            }
            None => {
                let _ = writeln!(out, "        {var}.init(Cipher.ENCRYPT_MODE, keySpec);");
            }
        }
        let _ = writeln!(out, "        return {var}.doFinal(data);");
        out.push_str("    }\n");

        if s.helper {
            out.push('\n');
            out.push_str("    private Cipher createCipher() throws Exception {\n");
            let _ = writeln!(out, "        return {get_instance};");
            out.push_str("    }\n");
        }

        if self.rsa_wrap {
            out.push('\n');
            out.push_str(
                "    public byte[] wrapSessionKey(java.security.Key publicKey, byte[] sessionKey) throws Exception {\n",
            );
            out.push_str("        Cipher rsa = Cipher.getInstance(\"RSA\");\n");
            out.push_str("        rsa.init(Cipher.WRAP_MODE, publicKey);\n");
            out.push_str("        return rsa.doFinal(sessionKey);\n");
            out.push_str("    }\n");
        }

        if self.with_mac {
            out.push('\n');
            out.push_str(
                "    public byte[] authenticate(byte[] message, byte[] macKey) throws Exception {\n",
            );
            out.push_str("        Mac mac = Mac.getInstance(\"HmacSHA256\");\n");
            out.push_str(
                "        SecretKeySpec macKeySpec = new SecretKeySpec(macKey, \"HmacSHA256\");\n",
            );
            out.push_str("        mac.init(macKeySpec);\n");
            out.push_str("        return mac.doFinal(message);\n");
            out.push_str("    }\n");
        }

        for i in 0..self.extra_usages {
            out.push('\n');
            let _ = writeln!(
                out,
                "    public byte[] legacyEncrypt{i}(byte[] data, byte[] keyBytes) throws Exception {{"
            );
            let _ = writeln!(
                out,
                "        SecretKeySpec legacyKey{i} = new SecretKeySpec(keyBytes, \"{key_algo}\");"
            );
            let _ = writeln!(
                out,
                "        Cipher legacy{i} = Cipher.getInstance({transform_expr});"
            );
            let _ = writeln!(
                out,
                "        legacy{i}.init(Cipher.ENCRYPT_MODE, legacyKey{i});"
            );
            let _ = writeln!(out, "        return legacy{i}.doFinal(data);");
            out.push_str("    }\n");
        }

        if s.log_method {
            out.push('\n');
            out.push_str("    private void logOperation(String op) {\n");
            out.push_str("        System.out.println(\"crypto op: \" + op);\n");
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// A message-digest module (`MessageDigest`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DigestScenario {
    /// Digest algorithm of the main usage.
    pub algo: String,
    /// Extra independent digest usages (algorithm per usage).
    pub extra: Vec<String>,
    /// Style.
    pub style: StyleKnobs,
}

impl DigestScenario {
    /// Renders the Java source for this scenario.
    pub fn render(&self, class_name: &str, package: &str) -> String {
        let s = &self.style;
        let n = s.naming as usize;
        let method = HASH_NAMES[n % HASH_NAMES.len()];
        let mut out = String::new();
        let _ = writeln!(out, "package {package};");
        out.push('\n');
        out.push_str("import java.security.MessageDigest;\n");
        out.push('\n');
        let _ = writeln!(out, "// rev {}", s.revision);
        let _ = writeln!(out, "public class {class_name} {{");
        if s.extract_const {
            let _ = writeln!(
                out,
                "    private static final String HASH_ALGO = \"{}\";",
                self.algo
            );
        }
        let algo_expr = if s.extract_const {
            "HASH_ALGO".to_owned()
        } else {
            format!("\"{}\"", self.algo)
        };
        let _ = writeln!(
            out,
            "    public byte[] {method}(byte[] input) throws Exception {{"
        );
        if s.helper {
            out.push_str("        MessageDigest digest = newDigest();\n");
        } else {
            let _ = writeln!(
                out,
                "        MessageDigest digest = MessageDigest.getInstance({algo_expr});"
            );
        }
        out.push_str("        return digest.digest(input);\n");
        out.push_str("    }\n");
        if s.helper {
            out.push('\n');
            out.push_str("    private MessageDigest newDigest() throws Exception {\n");
            let _ = writeln!(
                out,
                "        return MessageDigest.getInstance({algo_expr});"
            );
            out.push_str("    }\n");
        }
        for (i, algo) in self.extra.iter().enumerate() {
            out.push('\n');
            let _ = writeln!(
                out,
                "    public byte[] fingerprint{i}(byte[] input) throws Exception {{"
            );
            let _ = writeln!(
                out,
                "        MessageDigest d{i} = MessageDigest.getInstance(\"{algo}\");"
            );
            let _ = writeln!(out, "        return d{i}.digest(input);");
            out.push_str("    }\n");
        }
        if s.log_method {
            out.push('\n');
            out.push_str("    private void trace(String what) {\n");
            out.push_str("        System.err.println(what);\n");
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// How a `SecureRandom` is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngCtor {
    /// `new SecureRandom()`.
    Default,
    /// `SecureRandom.getInstance("SHA1PRNG")` (R3-compliant).
    Sha1Prng,
    /// `SecureRandom.getInstanceStrong()` (violates R4).
    Strong,
}

/// How the RNG is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedKind {
    /// Not explicitly seeded.
    NoSeed,
    /// A hard-coded seed (violates R12).
    StaticSeed,
    /// Seeded from a parameter.
    ParamSeed,
}

/// A token/nonce generator module (`SecureRandom`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RandomScenario {
    /// Construction of the RNG.
    pub ctor: RngCtor,
    /// Pass an explicit `"SUN"` provider to `getInstance` (diversifies
    /// the fix features).
    pub sun_provider: bool,
    /// Seeding discipline.
    pub seed: SeedKind,
    /// Extra independent RNG usages.
    pub extra_usages: u8,
    /// Style.
    pub style: StyleKnobs,
}

impl RandomScenario {
    /// Renders the Java source for this scenario.
    pub fn render(&self, class_name: &str, package: &str) -> String {
        let s = &self.style;
        let n = s.naming as usize;
        let method = TOKEN_NAMES[n % TOKEN_NAMES.len()];
        let mut out = String::new();
        let _ = writeln!(out, "package {package};");
        out.push('\n');
        out.push_str("import java.security.SecureRandom;\n");
        out.push('\n');
        let _ = writeln!(out, "// rev {}", s.revision);
        let _ = writeln!(out, "public class {class_name} {{");
        let ctor_expr = match self.ctor {
            RngCtor::Default => "new SecureRandom()".to_owned(),
            RngCtor::Sha1Prng if self.sun_provider => {
                "SecureRandom.getInstance(\"SHA1PRNG\", \"SUN\")".to_owned()
            }
            RngCtor::Sha1Prng => "SecureRandom.getInstance(\"SHA1PRNG\")".to_owned(),
            RngCtor::Strong => "SecureRandom.getInstanceStrong()".to_owned(),
        };
        let mut params = vec!["int size".to_owned()];
        if self.seed == SeedKind::ParamSeed {
            params.push("byte[] seed".to_owned());
        }
        let _ = writeln!(
            out,
            "    public byte[] {method}({}) throws Exception {{",
            params.join(", ")
        );
        let _ = writeln!(out, "        SecureRandom random = {ctor_expr};");
        match self.seed {
            SeedKind::NoSeed => {}
            SeedKind::StaticSeed => {
                out.push_str(
                    "        byte[] seed = { 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08 };\n",
                );
                out.push_str("        random.setSeed(seed);\n");
            }
            SeedKind::ParamSeed => {
                out.push_str("        random.setSeed(seed);\n");
            }
        }
        out.push_str("        byte[] buffer = new byte[size];\n");
        out.push_str("        random.nextBytes(buffer);\n");
        out.push_str("        return buffer;\n");
        out.push_str("    }\n");
        for i in 0..self.extra_usages {
            out.push('\n');
            let _ = writeln!(out, "    public long rollDice{i}() throws Exception {{");
            let _ = writeln!(out, "        SecureRandom extra{i} = {ctor_expr};");
            let _ = writeln!(out, "        return extra{i}.nextLong();");
            out.push_str("    }\n");
        }
        if s.log_method {
            out.push('\n');
            out.push_str("    private void audit(String event) {\n");
            out.push_str("        System.out.println(event);\n");
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Salt discipline for password-based encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SaltKind {
    /// A hard-coded salt (violates R11 / CL4).
    StaticSalt,
    /// A `SecureRandom`-generated salt.
    RandomSalt,
    /// Salt arrives as a parameter.
    ParamSalt,
}

/// A password-based key-derivation module (`PBEKeySpec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PbeScenario {
    /// PBKDF2 iteration count (R2 / CL5 care about < 1000).
    pub iterations: i64,
    /// Salt discipline.
    pub salt: SaltKind,
    /// Style.
    pub style: StyleKnobs,
}

impl PbeScenario {
    /// Renders the Java source for this scenario.
    pub fn render(&self, class_name: &str, package: &str) -> String {
        let s = &self.style;
        let n = s.naming as usize;
        let method = DERIVE_NAMES[n % DERIVE_NAMES.len()];
        let mut out = String::new();
        let _ = writeln!(out, "package {package};");
        out.push('\n');
        out.push_str("import javax.crypto.SecretKeyFactory;\n");
        out.push_str("import javax.crypto.spec.PBEKeySpec;\n");
        out.push_str("import java.security.SecureRandom;\n");
        out.push('\n');
        let _ = writeln!(out, "// rev {}", s.revision);
        let _ = writeln!(out, "public class {class_name} {{");
        let mut params = vec!["char[] password".to_owned()];
        if self.salt == SaltKind::ParamSalt {
            params.push("byte[] salt".to_owned());
        }
        let _ = writeln!(
            out,
            "    public javax.crypto.SecretKey {method}({}) throws Exception {{",
            params.join(", ")
        );
        match self.salt {
            SaltKind::StaticSalt => {
                out.push_str(
                    "        byte[] salt = { 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11 };\n",
                );
            }
            SaltKind::RandomSalt => {
                out.push_str("        byte[] salt = new byte[8];\n");
                out.push_str("        SecureRandom saltRandom = new SecureRandom();\n");
                out.push_str("        saltRandom.nextBytes(salt);\n");
            }
            SaltKind::ParamSalt => {}
        }
        let _ = writeln!(
            out,
            "        PBEKeySpec spec = new PBEKeySpec(password, salt, {}, 256);",
            self.iterations
        );
        out.push_str(
            "        SecretKeyFactory factory = SecretKeyFactory.getInstance(\"PBKDF2WithHmacSHA1\");\n",
        );
        out.push_str("        return factory.generateSecret(spec);\n");
        out.push_str("    }\n");
        if s.log_method {
            out.push('\n');
            out.push_str("    private void note(String m) {\n");
            out.push_str("        System.out.println(m);\n");
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_parses(src: &str) {
        let unit = javalang::parse_compilation_unit(src).expect("parse");
        assert!(
            unit.diagnostics.is_empty(),
            "diagnostics for:\n{src}\n{:?}",
            unit.diagnostics
        );
        assert_eq!(unit.types.len(), 1);
    }

    fn all_styles() -> Vec<StyleKnobs> {
        let mut out = Vec::new();
        for naming in 0..4 {
            for extract_const in [false, true] {
                for helper in [false, true] {
                    for log_method in [false, true] {
                        out.push(StyleKnobs {
                            naming,
                            extract_const,
                            helper,
                            log_method,
                            revision: naming as u32,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn cipher_scenarios_all_parse() {
        let algos = [
            CipherAlgo::AesDefault,
            CipherAlgo::AesEcb,
            CipherAlgo::AesCbc,
            CipherAlgo::AesCtr,
            CipherAlgo::AesGcm,
            CipherAlgo::Des,
            CipherAlgo::DesEde,
            CipherAlgo::Blowfish,
        ];
        for algo in algos {
            for iv in [
                IvKind::NoIv,
                IvKind::StaticIv,
                IvKind::RandomIv,
                IvKind::ParamIv,
            ] {
                for key in [
                    KeyKind::HardcodedKey,
                    KeyKind::ParamKey,
                    KeyKind::GeneratedKey,
                ] {
                    let scenario = CipherScenario {
                        algo,
                        padding: Padding::Pkcs5,
                        bc_provider: algo == CipherAlgo::AesCbc,
                        iv,
                        key,
                        rsa_wrap: iv == IvKind::ParamIv,
                        with_mac: key == KeyKind::ParamKey,
                        extra_usages: 1,
                        style: StyleKnobs::default(),
                    };
                    assert_parses(&scenario.render("CryptoService", "com.example"));
                }
            }
        }
    }

    #[test]
    fn style_changes_keep_code_parseable() {
        for style in all_styles() {
            let scenario = CipherScenario {
                algo: CipherAlgo::AesCbc,
                padding: Padding::Pkcs5,
                bc_provider: false,
                iv: IvKind::RandomIv,
                key: KeyKind::ParamKey,
                rsa_wrap: false,
                with_mac: false,
                extra_usages: 0,
                style,
            };
            assert_parses(&scenario.render("CryptoService", "com.example"));
        }
    }

    #[test]
    fn digest_scenarios_parse() {
        for style in all_styles().into_iter().take(8) {
            let scenario = DigestScenario {
                algo: "SHA-1".to_owned(),
                extra: vec!["MD5".to_owned(), "SHA-256".to_owned()],
                style,
            };
            assert_parses(&scenario.render("Hasher", "com.example"));
        }
    }

    #[test]
    fn random_scenarios_parse() {
        for ctor in [RngCtor::Default, RngCtor::Sha1Prng, RngCtor::Strong] {
            for seed in [SeedKind::NoSeed, SeedKind::StaticSeed, SeedKind::ParamSeed] {
                let scenario = RandomScenario {
                    ctor,
                    sun_provider: ctor == RngCtor::Sha1Prng,
                    seed,
                    extra_usages: 2,
                    style: StyleKnobs::default(),
                };
                assert_parses(&scenario.render("TokenGenerator", "com.example"));
            }
        }
    }

    #[test]
    fn pbe_scenarios_parse() {
        for salt in [
            SaltKind::StaticSalt,
            SaltKind::RandomSalt,
            SaltKind::ParamSalt,
        ] {
            for iterations in [100, 1000, 65536] {
                let scenario = PbeScenario {
                    iterations,
                    salt,
                    style: StyleKnobs::default(),
                };
                assert_parses(&scenario.render("PasswordCrypto", "com.example"));
            }
        }
    }

    #[test]
    fn refactoring_styles_render_differently() {
        let base = DigestScenario {
            algo: "SHA-256".to_owned(),
            extra: vec![],
            style: StyleKnobs::default(),
        };
        let mut refactored = base.clone();
        refactored.style.naming = 1;
        refactored.style.extract_const = true;
        assert_ne!(
            base.render("Hasher", "p"),
            refactored.render("Hasher", "p"),
            "style changes must change the text"
        );
    }
}

/// A digital-signature module (`Signature`) — outside the paper's six
/// target classes; used by the generalization experiment
/// (`diffcode-bench --bin extension`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignatureScenario {
    /// Signature algorithm (e.g. `SHA1withRSA`).
    pub algo: String,
    /// Style.
    pub style: StyleKnobs,
}

impl SignatureScenario {
    /// Renders the Java source for this scenario.
    pub fn render(&self, class_name: &str, package: &str) -> String {
        let s = &self.style;
        let mut out = String::new();
        let _ = writeln!(out, "package {package};");
        out.push('\n');
        out.push_str("import java.security.Signature;\n");
        out.push('\n');
        let _ = writeln!(out, "// rev {}", s.revision);
        let _ = writeln!(out, "public class {class_name} {{");
        if s.extract_const {
            let _ = writeln!(
                out,
                "    private static final String SIG_ALGO = \"{}\";",
                self.algo
            );
        }
        let algo_expr = if s.extract_const {
            "SIG_ALGO".to_owned()
        } else {
            format!("\"{}\"", self.algo)
        };
        let _ = writeln!(
            out,
            "    public byte[] sign(byte[] data, java.security.PrivateKey key) throws Exception {{"
        );
        let _ = writeln!(
            out,
            "        Signature signer = Signature.getInstance({algo_expr});"
        );
        out.push_str("        signer.initSign(key);\n");
        out.push_str("        signer.update(data);\n");
        out.push_str("        return signer.sign();\n");
        out.push_str("    }\n\n");
        let _ = writeln!(
            out,
            "    public boolean verify(byte[] data, byte[] sig, java.security.PublicKey key) throws Exception {{"
        );
        let _ = writeln!(
            out,
            "        Signature verifier = Signature.getInstance({algo_expr});"
        );
        out.push_str("        verifier.initVerify(key);\n");
        out.push_str("        verifier.update(data);\n");
        out.push_str("        return verifier.verify(sig);\n");
        out.push_str("    }\n");
        if s.log_method {
            out.push('\n');
            out.push_str("    private void record(String what) {\n");
            out.push_str("        System.out.println(what);\n");
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod signature_tests {
    use super::*;

    #[test]
    fn signature_scenarios_parse() {
        for algo in [
            "SHA1withRSA",
            "MD5withRSA",
            "SHA256withRSA",
            "SHA256withECDSA",
        ] {
            for extract_const in [false, true] {
                let scenario = SignatureScenario {
                    algo: algo.to_owned(),
                    style: StyleKnobs {
                        extract_const,
                        ..StyleKnobs::default()
                    },
                };
                let src = scenario.render("Signer", "com.example");
                let unit = javalang::parse_compilation_unit(&src).unwrap();
                assert!(unit.diagnostics.is_empty(), "{src}");
            }
        }
    }
}
