//! Seeded fault injection for robustness testing.
//!
//! The mining pipeline claims to be *total* — no input aborts it, only
//! skip-and-account. This module provides the adversarial inputs that
//! back the claim: a deterministic [`Mutator`] that corrupts a fraction
//! of a corpus's code changes with the classic fuzzer products
//! (truncation, byte flips, unbalanced braces, pathological nesting,
//! oversized tokens) plus an optional panic-injection marker, and
//! returns a [`FaultLog`] identifying exactly which changes were
//! touched — so a chaos test can assert that every *untouched* change
//! mines byte-identically to a fault-free run.
//!
//! For the resident server there is a second adversary: [`HttpMutator`]
//! emits deterministic *wire-level* fault plans ([`HttpPlan`]) — a
//! sequence of send/pause/close steps that a soak test replays over a
//! real socket to model truncated requests, oversized headers, lying
//! `Content-Length`s, slowloris drips, and raw garbage.

use crate::model::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The kinds of corruption the mutator injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Cut the source off mid-token (simulates interrupted fetches).
    Truncate,
    /// Overwrite a handful of characters with ASCII garbage.
    ByteFlips,
    /// Append opening braces that never close.
    UnbalancedBraces,
    /// Splice in an expression nested thousands of parentheses deep —
    /// a stack-overflow trap for recursive parsers.
    DeepNesting,
    /// Splice in a single token far beyond any sane length — an
    /// allocation trap for lexers.
    HugeToken,
    /// Splice in the panic marker honored by the pipeline's
    /// fault-injection hook (`DIFFCODE_CHAOS_PANIC_MARKER`).
    PanicMarker,
}

impl FaultKind {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::ByteFlips => "byte-flips",
            FaultKind::UnbalancedBraces => "unbalanced-braces",
            FaultKind::DeepNesting => "deep-nesting",
            FaultKind::HugeToken => "huge-token",
            FaultKind::PanicMarker => "panic-marker",
        }
    }
}

/// One injected fault, keyed by the (project, commit, path) identity of
/// the code change it corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// `user/project` of the touched change.
    pub project: String,
    /// Commit id of the touched change.
    pub commit: String,
    /// File path of the touched change.
    pub path: String,
    /// What was injected.
    pub kind: FaultKind,
    /// Which side was corrupted (`true` = the new version).
    pub new_side: bool,
}

/// Everything a chaos test needs to reason about an injection run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// All injected faults, in corpus order.
    pub faults: Vec<InjectedFault>,
    /// Code changes inspected (faulted or not).
    pub code_changes: usize,
}

impl FaultLog {
    /// `true` if the code change identified by (`project`, `commit`,
    /// `path`) was corrupted.
    pub fn touched(&self, project: &str, commit: &str, path: &str) -> bool {
        self.faults
            .iter()
            .any(|f| f.project == project && f.commit == commit && f.path == path)
    }
}

/// A deterministic, seeded corpus corruptor.
#[derive(Debug)]
pub struct Mutator {
    rng: StdRng,
    rate: f64,
    panic_marker: Option<String>,
}

impl Mutator {
    /// A mutator that corrupts each code change with probability
    /// `rate` (clamped to `[0, 1]`), deterministically from `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
            rate: rate.clamp(0.0, 1.0),
            panic_marker: None,
        }
    }

    /// Enables [`FaultKind::PanicMarker`] faults carrying `marker`.
    /// Without this, the mutator never injects panics (so accounting
    /// tests see only input-shaped faults).
    pub fn with_panic_marker(mut self, marker: impl Into<String>) -> Self {
        self.panic_marker = Some(marker.into());
        self
    }

    /// Corrupts ~`rate` of the corpus's code changes in place and
    /// returns the log of what was touched. Only changes with both an
    /// old and a new side are candidates (matching what mining
    /// processes); additions and deletions are left alone.
    pub fn inject(&mut self, corpus: &mut Corpus) -> FaultLog {
        let mut log = FaultLog::default();
        for project in &mut corpus.projects {
            let full_name = format!("{}/{}", project.user, project.name);
            for commit in &mut project.commits {
                for change in &mut commit.changes {
                    let (Some(old), Some(new)) = (&change.old, &change.new) else {
                        continue;
                    };
                    log.code_changes += 1;
                    if !self.rng.random_bool(self.rate) {
                        continue;
                    }
                    let new_side = self.rng.random_bool(0.7);
                    let victim = if new_side { new } else { old };
                    let (mutated, kind) = self.corrupt(victim);
                    if new_side {
                        change.new = Some(mutated);
                    } else {
                        change.old = Some(mutated);
                    }
                    log.faults.push(InjectedFault {
                        project: full_name.clone(),
                        commit: commit.id.clone(),
                        path: change.path.clone(),
                        kind,
                        new_side,
                    });
                }
            }
        }
        log
    }

    /// Applies one randomly chosen corruption to `source`.
    fn corrupt(&mut self, source: &str) -> (String, FaultKind) {
        let n_kinds = if self.panic_marker.is_some() { 6 } else { 5 };
        match self.rng.random_range(0..n_kinds) {
            0 => (self.truncate(source), FaultKind::Truncate),
            1 => (self.byte_flips(source), FaultKind::ByteFlips),
            2 => (self.unbalanced_braces(source), FaultKind::UnbalancedBraces),
            3 => (self.deep_nesting(), FaultKind::DeepNesting),
            4 => (self.huge_token(), FaultKind::HugeToken),
            _ => (self.panic_marker(source), FaultKind::PanicMarker),
        }
    }

    fn truncate(&mut self, source: &str) -> String {
        if source.is_empty() {
            return String::new();
        }
        let cut = self.rng.random_range(0..source.len());
        // Snap to a char boundary so the result stays valid UTF-8 —
        // we model interrupted transfers of text, not encoding errors.
        let cut = (0..=cut)
            .rev()
            .find(|i| source.is_char_boundary(*i))
            .unwrap_or(0);
        source[..cut].to_owned()
    }

    fn byte_flips(&mut self, source: &str) -> String {
        const GARBAGE: &[char] = &['\u{1}', '\u{7f}', '`', '\\', '"', '\'', '#', '$', '\u{b}'];
        let mut chars: Vec<char> = source.chars().collect();
        if chars.is_empty() {
            return "\u{1}\u{1}".to_owned();
        }
        let flips = 1 + self.rng.random_range(0..8usize);
        for _ in 0..flips {
            let at = self.rng.random_range(0..chars.len());
            let with = GARBAGE[self.rng.random_range(0..GARBAGE.len())];
            chars[at] = with;
        }
        chars.into_iter().collect()
    }

    fn unbalanced_braces(&mut self, source: &str) -> String {
        let n = 1 + self.rng.random_range(0..64usize);
        let mut out = String::with_capacity(source.len() + n);
        if self.rng.random_bool(0.5) {
            out.extend(std::iter::repeat_n('}', n));
            out.push_str(source);
        } else {
            out.push_str(source);
            out.extend(std::iter::repeat_n('{', n));
        }
        out
    }

    fn deep_nesting(&mut self) -> String {
        let depth = 10_000 + self.rng.random_range(0..2_000usize);
        let mut out = String::with_capacity(2 * depth + 64);
        out.push_str("class Chaos { int x = ");
        out.extend(std::iter::repeat_n('(', depth));
        out.push('1');
        out.extend(std::iter::repeat_n(')', depth));
        out.push_str("; }");
        out
    }

    fn huge_token(&mut self) -> String {
        // Half the time a megabyte-plus token (trips the source-size
        // budget), half the time ~128 KiB (fits the source budget but
        // trips the per-token budget).
        let len = if self.rng.random_bool(0.5) {
            1 << 21
        } else {
            1 << 17
        };
        let mut out = String::with_capacity(len + 64);
        out.push_str("class Chaos { int ");
        out.extend(std::iter::repeat_n('a', len));
        out.push_str(" = 1; }");
        out
    }

    fn panic_marker(&mut self, source: &str) -> String {
        let marker = self.panic_marker.as_deref().unwrap_or("");
        format!("{source}\n/* {marker} */\n")
    }
}

/// The kinds of wire-level abuse [`HttpMutator`] plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HttpFaultKind {
    /// A request line cut off mid-token, then the socket closes.
    TruncatedRequestLine,
    /// A header block far beyond any sane cap (a memory trap for
    /// servers that buffer headers unboundedly).
    OversizedHeaders,
    /// A `Content-Length` that is not a number at all.
    BogusContentLength,
    /// A `Content-Length` promising more bytes than are ever sent,
    /// then the socket closes (a hang trap for blocking reads).
    ShortBody,
    /// A well-formed request delivered one byte at a time with long
    /// pauses — the classic slowloris slow-drip.
    Slowloris,
    /// Bytes that are not HTTP at all.
    Garbage,
    /// An honest `Content-Length` that exceeds any sane body cap.
    HugeBody,
}

impl HttpFaultKind {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            HttpFaultKind::TruncatedRequestLine => "truncated-request-line",
            HttpFaultKind::OversizedHeaders => "oversized-headers",
            HttpFaultKind::BogusContentLength => "bogus-content-length",
            HttpFaultKind::ShortBody => "short-body",
            HttpFaultKind::Slowloris => "slowloris",
            HttpFaultKind::Garbage => "garbage",
            HttpFaultKind::HugeBody => "huge-body",
        }
    }
}

/// One step of a wire-level fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpStep {
    /// Write these bytes to the socket.
    Send(Vec<u8>),
    /// Sleep before the next step (keeps the connection open, idle).
    Pause(Duration),
    /// Shut down the write half and stop sending.
    Close,
}

/// A deterministic sequence of socket operations modelling one
/// malformed client. The server under test must answer every plan with
/// a clean 4xx or a timeout — never a hung worker or an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpPlan {
    /// What this plan models.
    pub kind: HttpFaultKind,
    /// The steps to replay, in order.
    pub steps: Vec<HttpStep>,
}

/// A deterministic, seeded generator of malformed-HTTP client plans.
#[derive(Debug)]
pub struct HttpMutator {
    rng: StdRng,
    pause: Duration,
}

impl HttpMutator {
    /// A mutator seeded with `seed`. Slowloris pauses default to 50 ms
    /// — long enough to trip a test-tuned read deadline, short enough
    /// to keep a soak run fast.
    pub fn new(seed: u64) -> Self {
        HttpMutator {
            rng: StdRng::seed_from_u64(seed),
            pause: Duration::from_millis(50),
        }
    }

    /// Overrides the pause used between slow-drip sends.
    pub fn with_pause(mut self, pause: Duration) -> Self {
        self.pause = pause;
        self
    }

    /// Produces the next fault plan. Successive calls cycle through
    /// all kinds in a seed-determined order with seed-determined
    /// parameters (lengths, cut points).
    pub fn plan(&mut self) -> HttpPlan {
        let kind = match self.rng.random_range(0..7u32) {
            0 => HttpFaultKind::TruncatedRequestLine,
            1 => HttpFaultKind::OversizedHeaders,
            2 => HttpFaultKind::BogusContentLength,
            3 => HttpFaultKind::ShortBody,
            4 => HttpFaultKind::Slowloris,
            5 => HttpFaultKind::Garbage,
            _ => HttpFaultKind::HugeBody,
        };
        self.plan_for(kind)
    }

    /// Produces a plan of a specific kind (parameters still seeded).
    pub fn plan_for(&mut self, kind: HttpFaultKind) -> HttpPlan {
        let steps = match kind {
            HttpFaultKind::TruncatedRequestLine => {
                let line = b"POST /mine HTTP/1.1\r\n";
                let cut = 1 + self.rng.random_range(0..line.len() - 1);
                vec![HttpStep::Send(line[..cut].to_vec()), HttpStep::Close]
            }
            HttpFaultKind::OversizedHeaders => {
                let mut req = b"GET /healthz HTTP/1.1\r\n".to_vec();
                let n = 256 + self.rng.random_range(0..64usize);
                for i in 0..n {
                    req.extend_from_slice(format!("X-Pad-{i}: ").as_bytes());
                    req.extend(std::iter::repeat_n(b'a', 512));
                    req.extend_from_slice(b"\r\n");
                }
                req.extend_from_slice(b"\r\n");
                vec![HttpStep::Send(req), HttpStep::Close]
            }
            HttpFaultKind::BogusContentLength => {
                let req = b"POST /mine HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec();
                vec![HttpStep::Send(req), HttpStep::Close]
            }
            HttpFaultKind::ShortBody => {
                let promised = 4_096 + self.rng.random_range(0..4_096usize);
                let sent = self.rng.random_range(0..64usize);
                let mut req = format!("POST /check HTTP/1.1\r\ncontent-length: {promised}\r\n\r\n")
                    .into_bytes();
                req.extend(std::iter::repeat_n(b'{', sent));
                vec![HttpStep::Send(req), HttpStep::Close]
            }
            HttpFaultKind::Slowloris => {
                let req = b"GET /metrics HTTP/1.1\r\n";
                let mut steps = Vec::with_capacity(2 * req.len());
                for byte in req {
                    steps.push(HttpStep::Send(vec![*byte]));
                    steps.push(HttpStep::Pause(self.pause));
                }
                // Never send the terminating blank line: the server's
                // read deadline has to cut the connection, not EOF.
                steps
            }
            HttpFaultKind::Garbage => {
                let n = 1 + self.rng.random_range(0..512usize);
                let bytes: Vec<u8> = (0..n).map(|_| self.rng.random_range(0..=255u8)).collect();
                vec![HttpStep::Send(bytes), HttpStep::Close]
            }
            HttpFaultKind::HugeBody => {
                let promised = 1 << 26; // 64 MiB: past any sane body cap.
                let req = format!("POST /mine HTTP/1.1\r\ncontent-length: {promised}\r\n\r\n")
                    .into_bytes();
                // Start sending the body so the server sees an honest
                // (if doomed) client, then give up.
                let chunk = vec![b'x'; 1_024];
                vec![HttpStep::Send(req), HttpStep::Send(chunk), HttpStep::Close]
            }
        };
        HttpPlan { kind, steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn injection_is_deterministic() {
        let pristine = generate(&GeneratorConfig::small(4, 9));
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        let log_a = Mutator::new(42, 0.4).inject(&mut a);
        let log_b = Mutator::new(42, 0.4).inject(&mut b);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(!log_a.faults.is_empty());
        assert_ne!(a, pristine, "faults must actually corrupt something");
    }

    #[test]
    fn rate_controls_fault_volume() {
        let mut corpus = generate(&GeneratorConfig::small(4, 9));
        let none = Mutator::new(1, 0.0).inject(&mut corpus.clone());
        assert!(none.faults.is_empty());
        let all = Mutator::new(1, 1.0).inject(&mut corpus);
        assert_eq!(all.faults.len(), all.code_changes);
    }

    #[test]
    fn untouched_changes_keep_their_bytes() {
        let pristine = generate(&GeneratorConfig::small(4, 9));
        let mut faulted = pristine.clone();
        let log = Mutator::new(7, 0.5).inject(&mut faulted);
        for (p_old, p_new) in pristine.projects.iter().zip(&faulted.projects) {
            for (c_old, c_new) in p_old.commits.iter().zip(&p_new.commits) {
                for (ch_old, ch_new) in c_old.changes.iter().zip(&c_new.changes) {
                    if !log.touched(&p_old.full_name(), &c_old.id, &ch_old.path) {
                        assert_eq!(ch_old, ch_new);
                    }
                }
            }
        }
    }

    #[test]
    fn panic_marker_requires_opt_in() {
        let mut corpus = generate(&GeneratorConfig::small(4, 9));
        let log = Mutator::new(3, 1.0).inject(&mut corpus);
        assert!(
            log.faults.iter().all(|f| f.kind != FaultKind::PanicMarker),
            "no panic faults without with_panic_marker"
        );
        let mut corpus2 = generate(&GeneratorConfig::small(4, 9));
        let log2 = Mutator::new(3, 1.0)
            .with_panic_marker("@@CHAOS@@")
            .inject(&mut corpus2);
        assert!(log2.faults.iter().any(|f| f.kind == FaultKind::PanicMarker));
    }

    #[test]
    fn http_plans_are_deterministic_and_cover_all_kinds() {
        let plans_a: Vec<HttpPlan> = {
            let mut m = HttpMutator::new(99);
            (0..64).map(|_| m.plan()).collect()
        };
        let plans_b: Vec<HttpPlan> = {
            let mut m = HttpMutator::new(99);
            (0..64).map(|_| m.plan()).collect()
        };
        assert_eq!(plans_a, plans_b, "same seed, same plans");
        let mut kinds: Vec<&str> = plans_a.iter().map(|p| p.kind.name()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 7, "64 draws should hit all 7 kinds");
    }

    #[test]
    fn http_plan_shapes_match_their_kinds() {
        let mut m = HttpMutator::new(5).with_pause(Duration::from_millis(1));
        let trunc = m.plan_for(HttpFaultKind::TruncatedRequestLine);
        let HttpStep::Send(bytes) = &trunc.steps[0] else {
            panic!("truncated plan starts with a send");
        };
        assert!(bytes.len() < b"POST /mine HTTP/1.1\r\n".len());
        assert_eq!(trunc.steps.last(), Some(&HttpStep::Close));

        let slow = m.plan_for(HttpFaultKind::Slowloris);
        assert!(
            slow.steps
                .iter()
                .any(|s| matches!(s, HttpStep::Pause(p) if *p == Duration::from_millis(1))),
            "slowloris drips with the configured pause"
        );
        assert_ne!(
            slow.steps.last(),
            Some(&HttpStep::Close),
            "slowloris never hangs up; the server must"
        );

        let huge = m.plan_for(HttpFaultKind::HugeBody);
        let HttpStep::Send(head) = &huge.steps[0] else {
            panic!("huge-body plan starts with a send");
        };
        let head = String::from_utf8_lossy(head);
        assert!(head.contains(&format!("content-length: {}", 1 << 26)));
    }

    #[test]
    fn mutations_stay_valid_utf8_strings() {
        // String construction already guarantees UTF-8; this pins the
        // shapes: truncation shortens, braces lengthen, nesting and
        // token bombs are big.
        let mut m = Mutator::new(11, 1.0);
        let src = "class A { String s = \"héllo\"; }";
        assert!(m.truncate(src).len() <= src.len());
        assert!(m.unbalanced_braces(src).len() > src.len());
        assert!(m.deep_nesting().len() > 20_000);
        assert!(m.huge_token().len() > (1 << 17));
    }
}
