//! Seeded fault injection for robustness testing.
//!
//! The mining pipeline claims to be *total* — no input aborts it, only
//! skip-and-account. This module provides the adversarial inputs that
//! back the claim: a deterministic [`Mutator`] that corrupts a fraction
//! of a corpus's code changes with the classic fuzzer products
//! (truncation, byte flips, unbalanced braces, pathological nesting,
//! oversized tokens) plus an optional panic-injection marker, and
//! returns a [`FaultLog`] identifying exactly which changes were
//! touched — so a chaos test can assert that every *untouched* change
//! mines byte-identically to a fault-free run.

use crate::model::Corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kinds of corruption the mutator injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Cut the source off mid-token (simulates interrupted fetches).
    Truncate,
    /// Overwrite a handful of characters with ASCII garbage.
    ByteFlips,
    /// Append opening braces that never close.
    UnbalancedBraces,
    /// Splice in an expression nested thousands of parentheses deep —
    /// a stack-overflow trap for recursive parsers.
    DeepNesting,
    /// Splice in a single token far beyond any sane length — an
    /// allocation trap for lexers.
    HugeToken,
    /// Splice in the panic marker honored by the pipeline's
    /// fault-injection hook (`DIFFCODE_CHAOS_PANIC_MARKER`).
    PanicMarker,
}

impl FaultKind {
    /// Stable machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::ByteFlips => "byte-flips",
            FaultKind::UnbalancedBraces => "unbalanced-braces",
            FaultKind::DeepNesting => "deep-nesting",
            FaultKind::HugeToken => "huge-token",
            FaultKind::PanicMarker => "panic-marker",
        }
    }
}

/// One injected fault, keyed by the (project, commit, path) identity of
/// the code change it corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// `user/project` of the touched change.
    pub project: String,
    /// Commit id of the touched change.
    pub commit: String,
    /// File path of the touched change.
    pub path: String,
    /// What was injected.
    pub kind: FaultKind,
    /// Which side was corrupted (`true` = the new version).
    pub new_side: bool,
}

/// Everything a chaos test needs to reason about an injection run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// All injected faults, in corpus order.
    pub faults: Vec<InjectedFault>,
    /// Code changes inspected (faulted or not).
    pub code_changes: usize,
}

impl FaultLog {
    /// `true` if the code change identified by (`project`, `commit`,
    /// `path`) was corrupted.
    pub fn touched(&self, project: &str, commit: &str, path: &str) -> bool {
        self.faults
            .iter()
            .any(|f| f.project == project && f.commit == commit && f.path == path)
    }
}

/// A deterministic, seeded corpus corruptor.
#[derive(Debug)]
pub struct Mutator {
    rng: StdRng,
    rate: f64,
    panic_marker: Option<String>,
}

impl Mutator {
    /// A mutator that corrupts each code change with probability
    /// `rate` (clamped to `[0, 1]`), deterministically from `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
            rate: rate.clamp(0.0, 1.0),
            panic_marker: None,
        }
    }

    /// Enables [`FaultKind::PanicMarker`] faults carrying `marker`.
    /// Without this, the mutator never injects panics (so accounting
    /// tests see only input-shaped faults).
    pub fn with_panic_marker(mut self, marker: impl Into<String>) -> Self {
        self.panic_marker = Some(marker.into());
        self
    }

    /// Corrupts ~`rate` of the corpus's code changes in place and
    /// returns the log of what was touched. Only changes with both an
    /// old and a new side are candidates (matching what mining
    /// processes); additions and deletions are left alone.
    pub fn inject(&mut self, corpus: &mut Corpus) -> FaultLog {
        let mut log = FaultLog::default();
        for project in &mut corpus.projects {
            let full_name = format!("{}/{}", project.user, project.name);
            for commit in &mut project.commits {
                for change in &mut commit.changes {
                    let (Some(old), Some(new)) = (&change.old, &change.new) else {
                        continue;
                    };
                    log.code_changes += 1;
                    if !self.rng.random_bool(self.rate) {
                        continue;
                    }
                    let new_side = self.rng.random_bool(0.7);
                    let victim = if new_side { new } else { old };
                    let (mutated, kind) = self.corrupt(victim);
                    if new_side {
                        change.new = Some(mutated);
                    } else {
                        change.old = Some(mutated);
                    }
                    log.faults.push(InjectedFault {
                        project: full_name.clone(),
                        commit: commit.id.clone(),
                        path: change.path.clone(),
                        kind,
                        new_side,
                    });
                }
            }
        }
        log
    }

    /// Applies one randomly chosen corruption to `source`.
    fn corrupt(&mut self, source: &str) -> (String, FaultKind) {
        let n_kinds = if self.panic_marker.is_some() { 6 } else { 5 };
        match self.rng.random_range(0..n_kinds) {
            0 => (self.truncate(source), FaultKind::Truncate),
            1 => (self.byte_flips(source), FaultKind::ByteFlips),
            2 => (self.unbalanced_braces(source), FaultKind::UnbalancedBraces),
            3 => (self.deep_nesting(), FaultKind::DeepNesting),
            4 => (self.huge_token(), FaultKind::HugeToken),
            _ => (self.panic_marker(source), FaultKind::PanicMarker),
        }
    }

    fn truncate(&mut self, source: &str) -> String {
        if source.is_empty() {
            return String::new();
        }
        let cut = self.rng.random_range(0..source.len());
        // Snap to a char boundary so the result stays valid UTF-8 —
        // we model interrupted transfers of text, not encoding errors.
        let cut = (0..=cut)
            .rev()
            .find(|i| source.is_char_boundary(*i))
            .unwrap_or(0);
        source[..cut].to_owned()
    }

    fn byte_flips(&mut self, source: &str) -> String {
        const GARBAGE: &[char] = &['\u{1}', '\u{7f}', '`', '\\', '"', '\'', '#', '$', '\u{b}'];
        let mut chars: Vec<char> = source.chars().collect();
        if chars.is_empty() {
            return "\u{1}\u{1}".to_owned();
        }
        let flips = 1 + self.rng.random_range(0..8usize);
        for _ in 0..flips {
            let at = self.rng.random_range(0..chars.len());
            let with = GARBAGE[self.rng.random_range(0..GARBAGE.len())];
            chars[at] = with;
        }
        chars.into_iter().collect()
    }

    fn unbalanced_braces(&mut self, source: &str) -> String {
        let n = 1 + self.rng.random_range(0..64usize);
        let mut out = String::with_capacity(source.len() + n);
        if self.rng.random_bool(0.5) {
            out.extend(std::iter::repeat_n('}', n));
            out.push_str(source);
        } else {
            out.push_str(source);
            out.extend(std::iter::repeat_n('{', n));
        }
        out
    }

    fn deep_nesting(&mut self) -> String {
        let depth = 10_000 + self.rng.random_range(0..2_000usize);
        let mut out = String::with_capacity(2 * depth + 64);
        out.push_str("class Chaos { int x = ");
        out.extend(std::iter::repeat_n('(', depth));
        out.push('1');
        out.extend(std::iter::repeat_n(')', depth));
        out.push_str("; }");
        out
    }

    fn huge_token(&mut self) -> String {
        // Half the time a megabyte-plus token (trips the source-size
        // budget), half the time ~128 KiB (fits the source budget but
        // trips the per-token budget).
        let len = if self.rng.random_bool(0.5) {
            1 << 21
        } else {
            1 << 17
        };
        let mut out = String::with_capacity(len + 64);
        out.push_str("class Chaos { int ");
        out.extend(std::iter::repeat_n('a', len));
        out.push_str(" = 1; }");
        out
    }

    fn panic_marker(&mut self, source: &str) -> String {
        let marker = self.panic_marker.as_deref().unwrap_or("");
        format!("{source}\n/* {marker} */\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn injection_is_deterministic() {
        let pristine = generate(&GeneratorConfig::small(4, 9));
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        let log_a = Mutator::new(42, 0.4).inject(&mut a);
        let log_b = Mutator::new(42, 0.4).inject(&mut b);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(!log_a.faults.is_empty());
        assert_ne!(a, pristine, "faults must actually corrupt something");
    }

    #[test]
    fn rate_controls_fault_volume() {
        let mut corpus = generate(&GeneratorConfig::small(4, 9));
        let none = Mutator::new(1, 0.0).inject(&mut corpus.clone());
        assert!(none.faults.is_empty());
        let all = Mutator::new(1, 1.0).inject(&mut corpus);
        assert_eq!(all.faults.len(), all.code_changes);
    }

    #[test]
    fn untouched_changes_keep_their_bytes() {
        let pristine = generate(&GeneratorConfig::small(4, 9));
        let mut faulted = pristine.clone();
        let log = Mutator::new(7, 0.5).inject(&mut faulted);
        for (p_old, p_new) in pristine.projects.iter().zip(&faulted.projects) {
            for (c_old, c_new) in p_old.commits.iter().zip(&p_new.commits) {
                for (ch_old, ch_new) in c_old.changes.iter().zip(&c_new.changes) {
                    if !log.touched(&p_old.full_name(), &c_old.id, &ch_old.path) {
                        assert_eq!(ch_old, ch_new);
                    }
                }
            }
        }
    }

    #[test]
    fn panic_marker_requires_opt_in() {
        let mut corpus = generate(&GeneratorConfig::small(4, 9));
        let log = Mutator::new(3, 1.0).inject(&mut corpus);
        assert!(
            log.faults.iter().all(|f| f.kind != FaultKind::PanicMarker),
            "no panic faults without with_panic_marker"
        );
        let mut corpus2 = generate(&GeneratorConfig::small(4, 9));
        let log2 = Mutator::new(3, 1.0)
            .with_panic_marker("@@CHAOS@@")
            .inject(&mut corpus2);
        assert!(log2.faults.iter().any(|f| f.kind == FaultKind::PanicMarker));
    }

    #[test]
    fn mutations_stay_valid_utf8_strings() {
        // String construction already guarantees UTF-8; this pins the
        // shapes: truncation shortens, braces lengthen, nesting and
        // token bombs are big.
        let mut m = Mutator::new(11, 1.0);
        let src = "class A { String s = \"héllo\"; }";
        assert!(m.truncate(src).len() <= src.len());
        assert!(m.unbalanced_braces(src).len() > src.len());
        assert!(m.deep_nesting().len() > 20_000);
        assert!(m.huge_token().len() > (1 << 17));
    }
}
