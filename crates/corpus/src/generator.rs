//! The seeded corpus generator — the stand-in for the paper's GitHub
//! crawl (§6.1: 461 projects, 11 551 code changes).
//!
//! Every distribution below is calibrated against the proportions the
//! paper reports (Figures 6, 7, and 10); EXPERIMENTS.md records the
//! calibration targets next to the measured outcomes. Generation is
//! fully deterministic for a given [`GeneratorConfig::seed`].

use crate::model::{Commit, Corpus, FileChange, Project, ProjectFacts, GENERATED_AUTHOR};
use crate::templates::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of projects (the paper trains on 461 and checks 519).
    pub n_projects: usize,
    /// RNG seed; same seed → identical corpus.
    pub seed: u64,
    /// Inclusive range of crypto-touching commits per project (the
    /// paper mines ≈ 25 per project).
    pub commits_per_project: (usize, usize),
    /// Fraction of Android projects (rule R6 context).
    pub android_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_projects: 461,
            seed: 0xD1FF_C0DE,
            commits_per_project: (18, 32),
            android_fraction: 0.20,
        }
    }
}

impl GeneratorConfig {
    /// The paper's training corpus size (461 projects).
    pub fn training() -> Self {
        GeneratorConfig::default()
    }

    /// The paper's checking corpus (519 projects: training + 58 newer).
    pub fn checking() -> Self {
        GeneratorConfig {
            n_projects: 519,
            ..GeneratorConfig::default()
        }
    }

    /// A small corpus for tests and quick demos.
    pub fn small(n_projects: usize, seed: u64) -> Self {
        GeneratorConfig {
            n_projects,
            seed,
            ..GeneratorConfig::default()
        }
    }
}

/// Generates a corpus.
pub fn generate(config: &GeneratorConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let projects = (0..config.n_projects)
        .map(|idx| generate_project(idx, config, &mut rng))
        .collect();
    Corpus { projects }
}

// ---------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------

/// One evolving crypto-relevant source file of a project.
#[derive(Debug, Clone)]
enum Module {
    Cipher(CipherScenario),
    Digest(DigestScenario),
    Random(RandomScenario),
    Pbe(PbeScenario),
    Signature(SignatureScenario),
}

impl Module {
    fn path(&self, pkg_segment: &str) -> String {
        format!(
            "src/main/java/com/{pkg_segment}/crypto/{}.java",
            self.class_name()
        )
    }

    fn class_name(&self) -> &'static str {
        match self {
            Module::Cipher(_) => "CryptoService",
            Module::Digest(_) => "Hasher",
            Module::Random(_) => "TokenGenerator",
            Module::Pbe(_) => "PasswordCrypto",
            Module::Signature(_) => "Signer",
        }
    }

    fn render(&self, pkg_segment: &str) -> String {
        let package = format!("com.{pkg_segment}.crypto");
        match self {
            Module::Cipher(s) => s.render(self.class_name(), &package),
            Module::Digest(s) => s.render(self.class_name(), &package),
            Module::Random(s) => s.render(self.class_name(), &package),
            Module::Pbe(s) => s.render(self.class_name(), &package),
            Module::Signature(s) => s.render(self.class_name(), &package),
        }
    }

    fn style_mut(&mut self) -> &mut StyleKnobs {
        match self {
            Module::Cipher(s) => &mut s.style,
            Module::Digest(s) => &mut s.style,
            Module::Random(s) => &mut s.style,
            Module::Pbe(s) => &mut s.style,
            Module::Signature(s) => &mut s.style,
        }
    }
}

// ---------------------------------------------------------------------
// Initial-state sampling (calibrated to Figure 10 match rates)
// ---------------------------------------------------------------------

fn weighted<'a, T>(rng: &mut StdRng, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut roll = rng.random::<f64>() * total;
    for (item, weight) in items {
        roll -= weight;
        if roll <= 0.0 {
            return item;
        }
    }
    &items[items.len() - 1].0
}

fn sample_cipher(rng: &mut StdRng) -> CipherScenario {
    use CipherAlgo::*;
    let algo = *weighted(
        rng,
        &[
            (AesDefault, 0.22),
            (AesEcb, 0.10),
            (AesCbc, 0.27),
            (AesCtr, 0.05),
            (AesGcm, 0.09),
            (Des, 0.10),
            (DesEde, 0.05),
            (Blowfish, 0.05),
            (Rsa, 0.07),
        ],
    );
    let iv = if algo.needs_iv() {
        *weighted(
            rng,
            &[
                (IvKind::StaticIv, 0.08),
                (IvKind::RandomIv, 0.55),
                (IvKind::ParamIv, 0.37),
            ],
        )
    } else {
        IvKind::NoIv
    };
    let key = *weighted(
        rng,
        &[
            (KeyKind::HardcodedKey, 0.06),
            (KeyKind::ParamKey, 0.70),
            (KeyKind::GeneratedKey, 0.24),
        ],
    );
    let rsa_wrap = rng.random_bool(0.09);
    let with_mac = rsa_wrap && rng.random_bool(0.5);
    CipherScenario {
        algo,
        padding: *weighted(
            rng,
            &[
                (Padding::Pkcs5, 0.70),
                (Padding::None, 0.20),
                (Padding::Pkcs7, 0.10),
            ],
        ),
        bc_provider: rng.random_bool(0.03),
        iv,
        key,
        rsa_wrap,
        with_mac,
        extra_usages: *weighted(rng, &[(0u8, 0.6), (1, 0.3), (2, 0.1)]),
        style: sample_style(rng),
    }
}

fn sample_digest_algo(rng: &mut StdRng) -> String {
    weighted(
        rng,
        &[
            ("SHA-1".to_owned(), 0.30),
            ("MD5".to_owned(), 0.22),
            ("SHA-256".to_owned(), 0.38),
            ("SHA-512".to_owned(), 0.10),
        ],
    )
    .clone()
}

fn sample_digest(rng: &mut StdRng) -> DigestScenario {
    let n_extra = *weighted(rng, &[(0usize, 0.55), (1, 0.3), (2, 0.15)]);
    DigestScenario {
        algo: sample_digest_algo(rng),
        extra: (0..n_extra).map(|_| sample_digest_algo(rng)).collect(),
        style: sample_style(rng),
    }
}

fn sample_random(rng: &mut StdRng) -> RandomScenario {
    RandomScenario {
        ctor: *weighted(
            rng,
            &[
                (RngCtor::Default, 0.95),
                (RngCtor::Sha1Prng, 0.035),
                (RngCtor::Strong, 0.015),
            ],
        ),
        sun_provider: rng.random_bool(0.25),
        seed: *weighted(
            rng,
            &[
                (SeedKind::NoSeed, 0.93),
                (SeedKind::StaticSeed, 0.012),
                (SeedKind::ParamSeed, 0.058),
            ],
        ),
        extra_usages: *weighted(rng, &[(0u8, 0.6), (1, 0.3), (2, 0.1)]),
        style: sample_style(rng),
    }
}

fn sample_pbe(rng: &mut StdRng) -> PbeScenario {
    PbeScenario {
        iterations: *weighted(
            rng,
            &[
                (64i64, 0.06),
                (100, 0.13),
                (500, 0.09),
                (1000, 0.24),
                (10000, 0.33),
                (65536, 0.15),
            ],
        ),
        salt: *weighted(
            rng,
            &[
                (SaltKind::StaticSalt, 0.12),
                (SaltKind::RandomSalt, 0.50),
                (SaltKind::ParamSalt, 0.38),
            ],
        ),
        style: sample_style(rng),
    }
}

fn sample_signature(rng: &mut StdRng) -> SignatureScenario {
    SignatureScenario {
        algo: weighted(
            rng,
            &[
                ("SHA1withRSA".to_owned(), 0.38),
                ("MD5withRSA".to_owned(), 0.10),
                ("SHA256withRSA".to_owned(), 0.40),
                ("SHA256withECDSA".to_owned(), 0.12),
            ],
        )
        .clone(),
        style: sample_style(rng),
    }
}

fn sample_style(rng: &mut StdRng) -> StyleKnobs {
    StyleKnobs {
        naming: rng.random_range(0..4),
        extract_const: rng.random_bool(0.4),
        helper: rng.random_bool(0.25),
        log_method: rng.random_bool(0.3),
        revision: 1,
    }
}

// ---------------------------------------------------------------------
// Change kinds (calibrated to Figure 6's filtering funnel)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChangeKind {
    /// Touches the file without touching crypto (comment bumps,
    /// logging) — filtered by `fsame`.
    Unrelated,
    /// Renames/extracts/reshuffles without semantic change — `fsame`.
    Refactor,
    /// Introduces a new API usage — `fadd`.
    AddUsage,
    /// Deletes an API usage — `frem`.
    RemoveUsage,
    /// A security fix (the signal).
    Fix,
    /// A change that introduces a violation.
    Bug,
}

fn sample_change_kind(rng: &mut StdRng) -> ChangeKind {
    *weighted(
        rng,
        &[
            (ChangeKind::Unrelated, 0.705),
            (ChangeKind::Refactor, 0.250),
            (ChangeKind::AddUsage, 0.014),
            (ChangeKind::RemoveUsage, 0.009),
            (ChangeKind::Fix, 0.021),
            (ChangeKind::Bug, 0.001),
        ],
    )
}

/// Applies a change of the given kind to the module; returns the commit
/// message. Kinds that do not apply to the current state degrade to a
/// refactoring or comment bump (exactly like real histories, where most
/// commits do not change crypto semantics).
fn apply_change(module: &mut Module, kind: ChangeKind, rng: &mut StdRng) -> String {
    match kind {
        ChangeKind::Unrelated => {
            module.style_mut().revision += 1;
            "Update internal bookkeeping".to_owned()
        }
        ChangeKind::Refactor => {
            apply_refactor(module, rng);
            "Refactor crypto helper for readability".to_owned()
        }
        ChangeKind::AddUsage => match module {
            Module::Cipher(s) if s.extra_usages < 4 => {
                s.extra_usages += 1;
                "Add legacy encryption entry point".to_owned()
            }
            Module::Digest(s) if s.extra.len() < 4 => {
                let algo = sample_digest_algo(rng);
                s.extra.push(algo);
                "Add fingerprint helper".to_owned()
            }
            Module::Random(s) if s.extra_usages < 4 => {
                s.extra_usages += 1;
                "Add dice-roll utility".to_owned()
            }
            other => apply_change(other, ChangeKind::Refactor, rng),
        },
        ChangeKind::RemoveUsage => match module {
            Module::Cipher(s) if s.extra_usages > 0 => {
                s.extra_usages -= 1;
                "Remove unused legacy encryption".to_owned()
            }
            Module::Digest(s) if !s.extra.is_empty() => {
                s.extra.pop();
                "Remove dead fingerprint helper".to_owned()
            }
            Module::Random(s) if s.extra_usages > 0 => {
                s.extra_usages -= 1;
                "Drop unused dice-roll utility".to_owned()
            }
            other => apply_change(other, ChangeKind::Unrelated, rng),
        },
        ChangeKind::Fix => apply_fix(module, rng),
        ChangeKind::Bug => apply_bug(module, rng),
    }
}

fn apply_refactor(module: &mut Module, rng: &mut StdRng) {
    let style = module.style_mut();
    match rng.random_range(0..4) {
        0 => style.naming = (style.naming + 1) % 4,
        1 => style.extract_const = !style.extract_const,
        2 => style.helper = !style.helper,
        _ => style.log_method = !style.log_method,
    }
    style.revision += 1;
}

fn apply_fix(module: &mut Module, rng: &mut StdRng) -> String {
    match module {
        Module::Cipher(s) => {
            type CipherFix = (&'static str, fn(&mut CipherScenario, &mut StdRng));
            let mut fixes: Vec<CipherFix> = Vec::new();
            if matches!(s.algo, CipherAlgo::AesDefault | CipherAlgo::AesEcb) {
                fixes.push(("Switch AES from ECB to CBC with a fresh IV", |s, rng| {
                    s.algo = CipherAlgo::AesCbc;
                    s.iv = if rng.random_bool(0.7) {
                        IvKind::RandomIv
                    } else {
                        IvKind::ParamIv
                    };
                }));
                fixes.push(("Use authenticated AES/GCM instead of ECB", |s, _| {
                    s.algo = CipherAlgo::AesGcm;
                    s.iv = IvKind::RandomIv;
                }));
            }
            if matches!(
                s.algo,
                CipherAlgo::Des | CipherAlgo::DesEde | CipherAlgo::Blowfish
            ) {
                fixes.push(("Replace weak cipher with AES/CBC", |s, _| {
                    s.algo = CipherAlgo::AesCbc;
                    if s.iv == IvKind::NoIv {
                        s.iv = IvKind::RandomIv;
                    }
                }));
            }
            if !s.bc_provider && !matches!(s.algo, CipherAlgo::Rsa) {
                fixes.push(("Use the BouncyCastle provider", |s, _| {
                    s.bc_provider = true;
                }));
            }
            if s.iv == IvKind::StaticIv {
                fixes.push(("Generate the IV with SecureRandom", |s, _| {
                    s.iv = IvKind::RandomIv;
                }));
            }
            if s.key == KeyKind::HardcodedKey {
                fixes.push(("Stop hard-coding the secret key", |s, _| {
                    s.key = KeyKind::ParamKey;
                }));
            }
            if s.rsa_wrap && !s.with_mac {
                fixes.push((
                    "Add HMAC integrity protection after key exchange",
                    |s, _| {
                        s.with_mac = true;
                    },
                ));
            }
            if fixes.is_empty() {
                return apply_change(module, ChangeKind::Refactor, rng);
            }
            let idx = rng.random_range(0..fixes.len());
            let (message, f) = fixes[idx];
            f(s, rng);
            format!("Security: {message}")
        }
        Module::Digest(s) => {
            let weak = |a: &str| matches!(a, "SHA-1" | "SHA1" | "MD5" | "MD2");
            let target = if rng.random_bool(0.7) {
                "SHA-256"
            } else {
                "SHA-512"
            };
            if weak(&s.algo) {
                s.algo = target.to_owned();
                return format!("Security: migrate hash to {target}");
            }
            if let Some(slot) = s.extra.iter_mut().find(|a| weak(a)) {
                *slot = target.to_owned();
                return format!("Security: migrate fingerprint hash to {target}");
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Random(s) => {
            if s.seed == SeedKind::StaticSeed {
                s.seed = SeedKind::NoSeed;
                return "Security: remove static PRNG seed".to_owned();
            }
            match s.ctor {
                RngCtor::Default => {
                    s.ctor = RngCtor::Sha1Prng;
                    s.sun_provider = rng.random_bool(0.3);
                    "Security: request SHA1PRNG explicitly".to_owned()
                }
                RngCtor::Strong => {
                    s.ctor = RngCtor::Sha1Prng;
                    "Avoid blocking getInstanceStrong on servers".to_owned()
                }
                RngCtor::Sha1Prng => apply_change(module, ChangeKind::Refactor, rng),
            }
        }
        Module::Pbe(s) => {
            if s.iterations < 1000 {
                s.iterations = *weighted(
                    rng,
                    &[(2048i64, 0.15), (4096, 0.15), (10000, 0.45), (65536, 0.25)],
                );
                return "Security: raise PBKDF2 iteration count".to_owned();
            }
            if s.salt == SaltKind::StaticSalt {
                s.salt = SaltKind::RandomSalt;
                return "Security: use a random salt".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Signature(s) => {
            if matches!(s.algo.as_str(), "SHA1withRSA" | "MD5withRSA") {
                s.algo = if rng.random_bool(0.8) {
                    "SHA256withRSA".to_owned()
                } else {
                    "SHA256withECDSA".to_owned()
                };
                return "Security: sign with a SHA-256 based algorithm".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
    }
}

fn apply_bug(module: &mut Module, rng: &mut StdRng) -> String {
    match module {
        Module::Cipher(s) => {
            if matches!(
                s.algo,
                CipherAlgo::AesCbc | CipherAlgo::AesGcm | CipherAlgo::AesCtr
            ) {
                s.algo = CipherAlgo::AesDefault;
                s.iv = IvKind::NoIv;
                return "Simplify cipher configuration".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Digest(s) => {
            if s.algo == "SHA-256" || s.algo == "SHA-512" {
                s.algo = "SHA-1".to_owned();
                return "Use faster hash for checksums".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Random(s) => {
            if s.seed == SeedKind::NoSeed && rng.random_bool(0.5) {
                s.seed = SeedKind::StaticSeed;
                return "Make token generation reproducible".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Pbe(s) => {
            if s.iterations >= 1000 {
                s.iterations = 100;
                return "Speed up key derivation".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
        Module::Signature(s) => {
            if s.algo.starts_with("SHA256") {
                s.algo = "SHA1withRSA".to_owned();
                return "Use faster signature algorithm".to_owned();
            }
            apply_change(module, ChangeKind::Refactor, rng)
        }
    }
}

// ---------------------------------------------------------------------
// Project assembly
// ---------------------------------------------------------------------

const PROJECT_FLAVORS: [&str; 12] = [
    "wallet", "chat", "sync", "vault", "backup", "mail", "notes", "gateway", "cache", "ledger",
    "auth", "relay",
];

fn generate_project(idx: usize, config: &GeneratorConfig, rng: &mut StdRng) -> Project {
    // 461 projects from 397 distinct users in the paper: reuse some.
    let user = format!("user{}", idx % 397);
    let flavor = PROJECT_FLAVORS[idx % PROJECT_FLAVORS.len()];
    let name = format!("{flavor}-{idx}");
    let pkg_segment = format!("{flavor}{idx}");

    let facts = if rng.random_bool(config.android_fraction) {
        let min_sdk = if rng.random_bool(0.85) {
            rng.random_range(16..=18)
        } else {
            rng.random_range(19..=26)
        };
        ProjectFacts {
            min_sdk_version: Some(min_sdk),
            has_lprng_fix: rng.random_bool(0.05),
        }
    } else {
        ProjectFacts::default()
    };

    // Module mix (independent inclusion, at least one).
    let mut modules: Vec<Module> = Vec::new();
    if rng.random_bool(0.42) {
        modules.push(Module::Cipher(sample_cipher(rng)));
    }
    if rng.random_bool(0.45) {
        modules.push(Module::Random(sample_random(rng)));
    }
    if rng.random_bool(0.48) {
        modules.push(Module::Digest(sample_digest(rng)));
    }
    if rng.random_bool(0.14) {
        modules.push(Module::Pbe(sample_pbe(rng)));
    }
    if rng.random_bool(0.22) {
        modules.push(Module::Signature(sample_signature(rng)));
    }
    if modules.is_empty() {
        modules.push(Module::Random(sample_random(rng)));
    }

    let mut commits = Vec::new();

    // Initial commit adds every module file.
    let initial_changes: Vec<FileChange> = modules
        .iter()
        .map(|m| FileChange {
            path: m.path(&pkg_segment),
            old: None,
            new: Some(m.render(&pkg_segment)),
        })
        .collect();
    commits.push(Commit {
        id: commit_id(idx, 0),
        author: GENERATED_AUTHOR.to_owned(),
        message: "Initial import".to_owned(),
        changes: initial_changes,
    });

    let (lo, hi) = config.commits_per_project;
    let n_commits = rng.random_range(lo..=hi);
    for c in 1..=n_commits {
        let module_idx = rng.random_range(0..modules.len());
        let kind = sample_change_kind(rng);
        let old = modules[module_idx].render(&pkg_segment);
        let message = apply_change(&mut modules[module_idx], kind, rng);
        let new = modules[module_idx].render(&pkg_segment);
        let path = modules[module_idx].path(&pkg_segment);
        let mut changes = vec![FileChange {
            path,
            old: Some(old),
            new: Some(new),
        }];
        // Sweeping commits occasionally touch a second crypto file
        // (comment/bookkeeping only), like real repository-wide edits.
        if modules.len() > 1 && rng.random_bool(0.08) {
            let other_idx = (module_idx + 1) % modules.len();
            let old2 = modules[other_idx].render(&pkg_segment);
            modules[other_idx].style_mut().revision += 1;
            let new2 = modules[other_idx].render(&pkg_segment);
            changes.push(FileChange {
                path: modules[other_idx].path(&pkg_segment),
                old: Some(old2),
                new: Some(new2),
            });
        }
        commits.push(Commit {
            id: commit_id(idx, c),
            author: GENERATED_AUTHOR.to_owned(),
            message,
            changes,
        });
    }

    Project {
        user,
        name,
        facts,
        commits,
    }
}

fn commit_id(project: usize, commit: usize) -> String {
    // FNV-1a over the pair, rendered as 10 hex chars.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in project
        .to_le_bytes()
        .into_iter()
        .chain(commit.to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{hash:010x}")[..10].to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&GeneratorConfig::small(5, 42));
        let b = generate(&GeneratorConfig::small(5, 42));
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig::small(5, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn projects_have_expected_commit_counts() {
        let corpus = generate(&GeneratorConfig::small(10, 7));
        assert_eq!(corpus.projects.len(), 10);
        for p in &corpus.projects {
            // initial + 18..=32 evolution commits
            assert!(
                p.commits.len() >= 19 && p.commits.len() <= 33,
                "{}",
                p.commits.len()
            );
            assert!(!p.commits[0].changes.is_empty());
        }
    }

    #[test]
    fn every_generated_source_parses() {
        let corpus = generate(&GeneratorConfig::small(6, 99));
        let mut checked = 0;
        for change in corpus.code_changes() {
            for src in [change.old, change.new] {
                let unit = javalang::parse_compilation_unit(src).expect("parse");
                assert!(
                    unit.diagnostics.is_empty(),
                    "diagnostics in generated code:\n{src}"
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "corpus too small: {checked}");
    }

    #[test]
    fn histories_chain_old_to_new() {
        let corpus = generate(&GeneratorConfig::small(4, 1));
        for project in &corpus.projects {
            let mut current: std::collections::BTreeMap<String, String> = Default::default();
            for commit in &project.commits {
                for fc in &commit.changes {
                    if let Some(old) = &fc.old {
                        assert_eq!(
                            current.get(&fc.path),
                            Some(old),
                            "old side must equal tracked state"
                        );
                    }
                    if let Some(new) = &fc.new {
                        current.insert(fc.path.clone(), new.clone());
                    }
                }
            }
        }
    }

    #[test]
    fn most_changes_are_non_semantic() {
        let corpus = generate(&GeneratorConfig::small(20, 5));
        let n_fix_messages = corpus
            .projects
            .iter()
            .flat_map(|p| &p.commits)
            .filter(|c| c.message.starts_with("Security:"))
            .count();
        let total = corpus.total_commits();
        assert!(
            (n_fix_messages as f64) < 0.05 * total as f64,
            "fixes are rare: {n_fix_messages}/{total}"
        );
        assert!(n_fix_messages > 0, "but they exist");
    }

    #[test]
    fn some_projects_are_android() {
        let corpus = generate(&GeneratorConfig::small(50, 3));
        let android = corpus
            .projects
            .iter()
            .filter(|p| p.facts.min_sdk_version.is_some())
            .count();
        assert!(android > 0 && android < 50);
    }
}
