//! The repository model: projects, commits, file changes.

use std::collections::BTreeMap;

/// The deterministic author identity stamped on every synthetic
/// commit, so generated corpora and real-git ingestion flow through
/// the same provenance plumbing.
pub const GENERATED_AUTHOR: &str = "diffcode-generator <generator@diffcode>";

/// Android-style project facts carried by the corpus (consumed by rule
/// R6 via the checker's project context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProjectFacts {
    /// `minSdkVersion` for Android projects.
    pub min_sdk_version: Option<i64>,
    /// Whether the project applies the Linux-PRNG fix.
    pub has_lprng_fix: bool,
}

/// One change to one file within a commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileChange {
    /// Repository-relative path.
    pub path: String,
    /// Content before the commit (`None` = file added).
    pub old: Option<String>,
    /// Content after the commit (`None` = file deleted).
    pub new: Option<String>,
}

/// A commit: metadata plus its file changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Commit id (content-derived hex string).
    pub id: String,
    /// Commit author (`Name <email>`; empty when unknown). Real-git
    /// ingestion fills this from `%an <%ae>`; the synthetic generator
    /// stamps a deterministic bot identity.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// File changes.
    pub changes: Vec<FileChange>,
}

/// A project with a linear commit history on its master branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Project {
    /// Repository owner.
    pub user: String,
    /// Repository name.
    pub name: String,
    /// Project-level facts.
    pub facts: ProjectFacts,
    /// Commits in chronological order.
    pub commits: Vec<Commit>,
}

impl Project {
    /// The full name `user/name`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.user, self.name)
    }

    /// The file tree at HEAD (after applying all commits in order).
    pub fn head_files(&self) -> BTreeMap<String, String> {
        let mut files = BTreeMap::new();
        for commit in &self.commits {
            for change in &commit.changes {
                match &change.new {
                    Some(content) => {
                        files.insert(change.path.clone(), content.clone());
                    }
                    None => {
                        files.remove(&change.path);
                    }
                }
            }
        }
        files
    }
}

/// A whole corpus of mined projects.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Corpus {
    /// All projects.
    pub projects: Vec<Project>,
}

impl Corpus {
    /// Total number of commits across all projects.
    pub fn total_commits(&self) -> usize {
        self.projects.iter().map(|p| p.commits.len()).sum()
    }

    /// All (project, commit, file-change) triples where both an old and
    /// a new version exist — the paper's "code changes".
    pub fn code_changes(&self) -> impl Iterator<Item = CodeChange<'_>> {
        self.projects.iter().flat_map(|project| {
            project.commits.iter().flat_map(move |commit| {
                commit
                    .changes
                    .iter()
                    .filter_map(move |change| match (&change.old, &change.new) {
                        (Some(old), Some(new)) => Some(CodeChange {
                            project,
                            commit,
                            path: &change.path,
                            old,
                            new,
                        }),
                        _ => None,
                    })
            })
        })
    }
}

/// One mined code change: a pair of program versions with provenance.
#[derive(Debug, Clone, Copy)]
pub struct CodeChange<'a> {
    /// The project the change belongs to.
    pub project: &'a Project,
    /// The commit that applied it.
    pub commit: &'a Commit,
    /// The changed file.
    pub path: &'a str,
    /// Content before.
    pub old: &'a str,
    /// Content after.
    pub new: &'a str,
}

impl Project {
    /// Writes the project's HEAD tree under `root` (creating
    /// directories as needed), returning the paths written. Used to
    /// hand generated projects to file-based tools such as the
    /// `diffcode` CLI.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn materialize(&self, root: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        for (rel, content) in self.head_files() {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, content)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(id: &str, path: &str, old: Option<&str>, new: Option<&str>) -> Commit {
        Commit {
            id: id.to_owned(),
            author: String::new(),
            message: String::new(),
            changes: vec![FileChange {
                path: path.to_owned(),
                old: old.map(str::to_owned),
                new: new.map(str::to_owned),
            }],
        }
    }

    #[test]
    fn head_files_apply_in_order() {
        let project = Project {
            user: "u".into(),
            name: "p".into(),
            facts: ProjectFacts::default(),
            commits: vec![
                commit("1", "A.java", None, Some("v1")),
                commit("2", "A.java", Some("v1"), Some("v2")),
                commit("3", "B.java", None, Some("b1")),
                commit("4", "B.java", Some("b1"), None),
            ],
        };
        let head = project.head_files();
        assert_eq!(head.get("A.java").map(String::as_str), Some("v2"));
        assert!(!head.contains_key("B.java"));
    }

    #[test]
    fn code_changes_require_both_sides() {
        let corpus = Corpus {
            projects: vec![Project {
                user: "u".into(),
                name: "p".into(),
                facts: ProjectFacts::default(),
                commits: vec![
                    commit("1", "A.java", None, Some("v1")),
                    commit("2", "A.java", Some("v1"), Some("v2")),
                ],
            }],
        };
        let changes: Vec<_> = corpus.code_changes().collect();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, "v1");
        assert_eq!(changes[0].new, "v2");
    }
}
