//! A hand-written "golden" mini-corpus with known ground truth.
//!
//! Unlike the generated corpus (whose change mix comes from the same
//! knobs the experiments measure), every commit here is written by
//! hand, so end-to-end tests against it are free of generator
//! circularity. Three projects, each with a small multi-file history:
//!
//! * **alice/messenger** — ECB cipher with a static IV and SHA-1
//!   checksums; one refactoring, then two real security fixes.
//! * **bob/vault** — password vault with a weak PBKDF2 configuration;
//!   one fix, one unrelated edit.
//! * **carol/gateway** — RSA key exchange plus AES/CBC payloads and no
//!   integrity protection (the R13 scenario); the fix adds an HMAC.

use crate::model::{Commit, Corpus, FileChange, Project, ProjectFacts, GENERATED_AUTHOR};

fn change(path: &str, old: Option<&str>, new: &str) -> FileChange {
    FileChange {
        path: path.to_owned(),
        old: old.map(str::to_owned),
        new: Some(new.to_owned()),
    }
}

fn commit(id: &str, message: &str, changes: Vec<FileChange>) -> Commit {
    Commit {
        id: id.to_owned(),
        author: GENERATED_AUTHOR.to_owned(),
        message: message.to_owned(),
        changes,
    }
}

// ---------------------------------------------------------------------
// alice/messenger
// ---------------------------------------------------------------------

const MESSENGER_CRYPTO_V1: &str = r#"
package com.alice.messenger;

import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;
import javax.crypto.spec.SecretKeySpec;

public class MessageCrypto {
    private static final byte[] IV = new byte[16];

    public byte[] seal(byte[] plaintext, byte[] keyBytes) throws Exception {
        SecretKeySpec key = new SecretKeySpec(keyBytes, "AES");
        IvParameterSpec iv = new IvParameterSpec(IV);
        Cipher cipher = Cipher.getInstance("AES");
        cipher.init(Cipher.ENCRYPT_MODE, key);
        return cipher.doFinal(plaintext);
    }
}
"#;

const MESSENGER_CRYPTO_V2: &str = r#"
package com.alice.messenger;

import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;
import javax.crypto.spec.SecretKeySpec;

public class MessageCrypto {
    private static final byte[] IV = new byte[16];

    // Renamed for clarity; no behavioural change.
    public byte[] sealMessage(byte[] message, byte[] keyBytes) throws Exception {
        SecretKeySpec secretKey = new SecretKeySpec(keyBytes, "AES");
        IvParameterSpec ivSpec = new IvParameterSpec(IV);
        Cipher aes = Cipher.getInstance("AES");
        aes.init(Cipher.ENCRYPT_MODE, secretKey);
        return aes.doFinal(message);
    }
}
"#;

const MESSENGER_CRYPTO_V3: &str = r#"
package com.alice.messenger;

import java.security.SecureRandom;
import javax.crypto.Cipher;
import javax.crypto.spec.GCMParameterSpec;
import javax.crypto.spec.SecretKeySpec;

public class MessageCrypto {
    public byte[] sealMessage(byte[] message, byte[] keyBytes) throws Exception {
        SecretKeySpec secretKey = new SecretKeySpec(keyBytes, "AES");
        byte[] nonce = new byte[12];
        SecureRandom random = new SecureRandom();
        random.nextBytes(nonce);
        GCMParameterSpec spec = new GCMParameterSpec(128, nonce);
        Cipher aes = Cipher.getInstance("AES/GCM/NoPadding");
        aes.init(Cipher.ENCRYPT_MODE, secretKey, spec);
        return aes.doFinal(message);
    }
}
"#;

const MESSENGER_DIGEST_V1: &str = r#"
package com.alice.messenger;

import java.security.MessageDigest;

public class Fingerprints {
    public byte[] fingerprint(byte[] attachment) throws Exception {
        MessageDigest digest = MessageDigest.getInstance("SHA-1");
        return digest.digest(attachment);
    }
}
"#;

const MESSENGER_DIGEST_V2: &str = r#"
package com.alice.messenger;

import java.security.MessageDigest;

public class Fingerprints {
    public byte[] fingerprint(byte[] attachment) throws Exception {
        MessageDigest digest = MessageDigest.getInstance("SHA-256");
        return digest.digest(attachment);
    }
}
"#;

fn messenger() -> Project {
    Project {
        user: "alice".to_owned(),
        name: "messenger".to_owned(),
        facts: ProjectFacts::default(),
        commits: vec![
            commit(
                "m000000001",
                "Initial import",
                vec![
                    change("src/MessageCrypto.java", None, MESSENGER_CRYPTO_V1),
                    change("src/Fingerprints.java", None, MESSENGER_DIGEST_V1),
                ],
            ),
            commit(
                "m000000002",
                "Rename seal to sealMessage and tidy locals",
                vec![change(
                    "src/MessageCrypto.java",
                    Some(MESSENGER_CRYPTO_V1),
                    MESSENGER_CRYPTO_V2,
                )],
            ),
            commit(
                "m000000003",
                "Security: use AES/GCM with a random nonce",
                vec![change(
                    "src/MessageCrypto.java",
                    Some(MESSENGER_CRYPTO_V2),
                    MESSENGER_CRYPTO_V3,
                )],
            ),
            commit(
                "m000000004",
                "Security: fingerprint attachments with SHA-256",
                vec![change(
                    "src/Fingerprints.java",
                    Some(MESSENGER_DIGEST_V1),
                    MESSENGER_DIGEST_V2,
                )],
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// bob/vault
// ---------------------------------------------------------------------

const VAULT_V1: &str = r#"
package com.bob.vault;

import javax.crypto.SecretKeyFactory;
import javax.crypto.spec.PBEKeySpec;

public class VaultKey {
    private static final byte[] SALT = { 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08 };

    public javax.crypto.SecretKey unlock(char[] masterPassword) throws Exception {
        PBEKeySpec spec = new PBEKeySpec(masterPassword, SALT, 100, 256);
        SecretKeyFactory factory = SecretKeyFactory.getInstance("PBKDF2WithHmacSHA1");
        return factory.generateSecret(spec);
    }
}
"#;

const VAULT_V2: &str = r#"
package com.bob.vault;

import java.security.SecureRandom;
import javax.crypto.SecretKeyFactory;
import javax.crypto.spec.PBEKeySpec;

public class VaultKey {
    public javax.crypto.SecretKey unlock(char[] masterPassword) throws Exception {
        byte[] salt = new byte[16];
        SecureRandom random = new SecureRandom();
        random.nextBytes(salt);
        PBEKeySpec spec = new PBEKeySpec(masterPassword, salt, 65536, 256);
        SecretKeyFactory factory = SecretKeyFactory.getInstance("PBKDF2WithHmacSHA1");
        return factory.generateSecret(spec);
    }
}
"#;

const VAULT_V3: &str = r#"
package com.bob.vault;

import java.security.SecureRandom;
import javax.crypto.SecretKeyFactory;
import javax.crypto.spec.PBEKeySpec;

// Vault key derivation. See SECURITY.md for parameter rationale.
public class VaultKey {
    public javax.crypto.SecretKey unlock(char[] masterPassword) throws Exception {
        byte[] salt = new byte[16];
        SecureRandom random = new SecureRandom();
        random.nextBytes(salt);
        PBEKeySpec spec = new PBEKeySpec(masterPassword, salt, 65536, 256);
        SecretKeyFactory factory = SecretKeyFactory.getInstance("PBKDF2WithHmacSHA1");
        return factory.generateSecret(spec);
    }
}
"#;

fn vault() -> Project {
    Project {
        user: "bob".to_owned(),
        name: "vault".to_owned(),
        facts: ProjectFacts::default(),
        commits: vec![
            commit(
                "v000000001",
                "Initial import",
                vec![change("src/VaultKey.java", None, VAULT_V1)],
            ),
            commit(
                "v000000002",
                "Security: random salt and 65536 PBKDF2 iterations",
                vec![change("src/VaultKey.java", Some(VAULT_V1), VAULT_V2)],
            ),
            commit(
                "v000000003",
                "Document key derivation parameters",
                vec![change("src/VaultKey.java", Some(VAULT_V2), VAULT_V3)],
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// carol/gateway
// ---------------------------------------------------------------------

const GATEWAY_V1: &str = r#"
package com.carol.gateway;

import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;

public class SecureChannel {
    public byte[] wrapSessionKey(java.security.Key serverPublicKey, byte[] sessionKey)
            throws Exception {
        Cipher rsa = Cipher.getInstance("RSA");
        rsa.init(Cipher.WRAP_MODE, serverPublicKey);
        return rsa.doFinal(sessionKey);
    }

    public byte[] sendPayload(javax.crypto.SecretKey sessionKey, byte[] payload, byte[] iv)
            throws Exception {
        Cipher aes = Cipher.getInstance("AES/CBC/PKCS5Padding");
        aes.init(Cipher.ENCRYPT_MODE, sessionKey, new IvParameterSpec(iv));
        return aes.doFinal(payload);
    }
}
"#;

const GATEWAY_V2: &str = r#"
package com.carol.gateway;

import javax.crypto.Cipher;
import javax.crypto.Mac;
import javax.crypto.spec.IvParameterSpec;
import javax.crypto.spec.SecretKeySpec;

public class SecureChannel {
    public byte[] wrapSessionKey(java.security.Key serverPublicKey, byte[] sessionKey)
            throws Exception {
        Cipher rsa = Cipher.getInstance("RSA");
        rsa.init(Cipher.WRAP_MODE, serverPublicKey);
        return rsa.doFinal(sessionKey);
    }

    public byte[] sendPayload(javax.crypto.SecretKey sessionKey, byte[] payload, byte[] iv)
            throws Exception {
        Cipher aes = Cipher.getInstance("AES/CBC/PKCS5Padding");
        aes.init(Cipher.ENCRYPT_MODE, sessionKey, new IvParameterSpec(iv));
        return aes.doFinal(payload);
    }

    public byte[] authenticate(byte[] ciphertext, byte[] macKeyBytes) throws Exception {
        Mac hmac = Mac.getInstance("HmacSHA256");
        SecretKeySpec macKey = new SecretKeySpec(macKeyBytes, "HmacSHA256");
        hmac.init(macKey);
        return hmac.doFinal(ciphertext);
    }
}
"#;

fn gateway() -> Project {
    Project {
        user: "carol".to_owned(),
        name: "gateway".to_owned(),
        facts: ProjectFacts::default(),
        commits: vec![
            commit(
                "g000000001",
                "Initial import",
                vec![change("src/SecureChannel.java", None, GATEWAY_V1)],
            ),
            commit(
                "g000000002",
                "Security: authenticate payloads with HMAC-SHA256",
                vec![change(
                    "src/SecureChannel.java",
                    Some(GATEWAY_V1),
                    GATEWAY_V2,
                )],
            ),
        ],
    }
}

/// The golden corpus: three hand-written projects with known ground
/// truth (see module docs).
pub fn golden_corpus() -> Corpus {
    Corpus {
        projects: vec![messenger(), vault(), gateway()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_golden_sources_parse_cleanly() {
        let corpus = golden_corpus();
        for project in &corpus.projects {
            for commit in &project.commits {
                for fc in &commit.changes {
                    for src in [fc.old.as_deref(), fc.new.as_deref()].into_iter().flatten() {
                        let unit = javalang::parse_compilation_unit(src).unwrap();
                        assert!(
                            unit.diagnostics.is_empty(),
                            "{}/{}: {:?}",
                            project.full_name(),
                            fc.path,
                            unit.diagnostics
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histories_chain() {
        let corpus = golden_corpus();
        for project in &corpus.projects {
            let mut current: std::collections::BTreeMap<String, String> = Default::default();
            for commit in &project.commits {
                for fc in &commit.changes {
                    if let Some(old) = &fc.old {
                        assert_eq!(current.get(&fc.path), Some(old), "{}", fc.path);
                    }
                    current.insert(fc.path.clone(), fc.new.clone().unwrap());
                }
            }
        }
    }
}
