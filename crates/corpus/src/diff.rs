//! Line-based Myers diff and unified-patch rendering.
//!
//! Used to display mined code changes the way the paper's figures do
//! (red `-` / green `+` lines).

/// One line of a computed diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffLine<'a> {
    /// Line present in both versions.
    Context(&'a str),
    /// Line only in the old version.
    Removed(&'a str),
    /// Line only in the new version.
    Added(&'a str),
}

/// Computes a minimal line diff between `old` and `new` using Myers'
/// O(ND) algorithm.
pub fn diff_lines<'a>(old: &'a str, new: &'a str) -> Vec<DiffLine<'a>> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let trace = myers_trace(&a, &b);
    backtrack(&a, &b, &trace)
}

fn myers_trace<'a>(a: &[&'a str], b: &[&'a str]) -> Vec<Vec<isize>> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = n + m;
    let offset = max;
    let mut v = vec![0isize; (2 * max + 1).max(1) as usize];
    let mut trace = Vec::new();
    for d in 0..=max {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d
                || (k != d && v[(k - 1 + offset) as usize] < v[(k + 1 + offset) as usize])
            {
                v[(k + 1 + offset) as usize]
            } else {
                v[(k - 1 + offset) as usize] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                trace.push(v.clone());
                return trace;
            }
            k += 2;
        }
    }
    trace
}

fn backtrack<'a>(a: &[&'a str], b: &[&'a str], trace: &[Vec<isize>]) -> Vec<DiffLine<'a>> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let offset = n + m;
    let mut x = n;
    let mut y = m;
    let mut out_rev: Vec<DiffLine<'a>> = Vec::new();

    // Find the d at which we finished.
    let mut d = (trace.len() as isize - 2).max(0);
    while d > 0 {
        let v = &trace[d as usize];
        let k = x - y;
        let prev_k =
            if k == -d || (k != d && v[(k - 1 + offset) as usize] < v[(k + 1 + offset) as usize]) {
                k + 1
            } else {
                k - 1
            };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        while x > prev_x && y > prev_y {
            out_rev.push(DiffLine::Context(a[(x - 1) as usize]));
            x -= 1;
            y -= 1;
        }
        if x == prev_x {
            out_rev.push(DiffLine::Added(b[(y - 1) as usize]));
            y -= 1;
        } else {
            out_rev.push(DiffLine::Removed(a[(x - 1) as usize]));
            x -= 1;
        }
        d -= 1;
    }
    while x > 0 && y > 0 {
        out_rev.push(DiffLine::Context(a[(x - 1) as usize]));
        x -= 1;
        y -= 1;
    }
    while y > 0 {
        out_rev.push(DiffLine::Added(b[(y - 1) as usize]));
        y -= 1;
    }
    while x > 0 {
        out_rev.push(DiffLine::Removed(a[(x - 1) as usize]));
        x -= 1;
    }
    out_rev.reverse();
    out_rev
}

/// Renders a diff as a unified-style patch body (no hunk headers; `-`,
/// `+`, and two-space context prefixes), eliding long runs of context.
///
/// # Example
///
/// ```
/// let patch = corpus::render_patch("a\nold\nb", "a\nnew\nb");
/// assert!(patch.contains("- old"));
/// assert!(patch.contains("+ new"));
/// ```
pub fn render_patch(old: &str, new: &str) -> String {
    let lines = diff_lines(old, new);
    let mut out = String::new();
    let mut context_run: Vec<&str> = Vec::new();
    let flush_run = |run: &mut Vec<&str>, out: &mut String| {
        if run.len() <= 4 {
            for l in run.iter() {
                out.push_str("  ");
                out.push_str(l);
                out.push('\n');
            }
        } else {
            for l in &run[..2] {
                out.push_str("  ");
                out.push_str(l);
                out.push('\n');
            }
            out.push_str("  ...\n");
            for l in &run[run.len() - 2..] {
                out.push_str("  ");
                out.push_str(l);
                out.push('\n');
            }
        }
        run.clear();
    };
    for line in &lines {
        match line {
            DiffLine::Context(l) => context_run.push(l),
            DiffLine::Removed(l) => {
                flush_run(&mut context_run, &mut out);
                out.push_str("- ");
                out.push_str(l);
                out.push('\n');
            }
            DiffLine::Added(l) => {
                flush_run(&mut context_run, &mut out);
                out.push_str("+ ");
                out.push_str(l);
                out.push('\n');
            }
        }
    }
    flush_run(&mut context_run, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(old: &str, diff: &[DiffLine<'_>]) -> (Vec<String>, Vec<String>) {
        // Reconstructs both sides from the diff for verification.
        let _ = old;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for line in diff {
            match line {
                DiffLine::Context(l) => {
                    a.push((*l).to_owned());
                    b.push((*l).to_owned());
                }
                DiffLine::Removed(l) => a.push((*l).to_owned()),
                DiffLine::Added(l) => b.push((*l).to_owned()),
            }
        }
        (a, b)
    }

    #[test]
    fn identical_inputs_are_all_context() {
        let d = diff_lines("a\nb\nc", "a\nb\nc");
        assert!(d.iter().all(|l| matches!(l, DiffLine::Context(_))));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn single_line_replacement() {
        let d = diff_lines("a\nb\nc", "a\nx\nc");
        assert!(d.contains(&DiffLine::Removed("b")));
        assert!(d.contains(&DiffLine::Added("x")));
        let (a, b) = apply("", &d);
        assert_eq!(a, vec!["a", "b", "c"]);
        assert_eq!(b, vec!["a", "x", "c"]);
    }

    #[test]
    fn pure_insertion_and_deletion() {
        let d = diff_lines("", "a\nb");
        assert_eq!(d, vec![DiffLine::Added("a"), DiffLine::Added("b")]);
        let d = diff_lines("a\nb", "");
        assert_eq!(d, vec![DiffLine::Removed("a"), DiffLine::Removed("b")]);
    }

    #[test]
    fn roundtrip_reconstruction() {
        let old = "one\ntwo\nthree\nfour\nfive";
        let new = "one\n2\nthree\nfive\nsix";
        let d = diff_lines(old, new);
        let (a, b) = apply(old, &d);
        assert_eq!(a.join("\n"), old);
        assert_eq!(b.join("\n"), new);
    }

    #[test]
    fn diff_is_minimal_for_small_case() {
        let d = diff_lines("a\nb\nc\nd", "a\nc\nd");
        let edits = d
            .iter()
            .filter(|l| !matches!(l, DiffLine::Context(_)))
            .count();
        assert_eq!(edits, 1);
    }

    #[test]
    fn patch_rendering_marks_changes() {
        let patch = render_patch("keep\nold line\nkeep2", "keep\nnew line\nkeep2");
        assert!(patch.contains("- old line"));
        assert!(patch.contains("+ new line"));
        assert!(patch.contains("  keep"));
    }

    #[test]
    fn patch_elides_long_context() {
        let old: String = (0..30).map(|i| format!("line{i}\n")).collect();
        let new = old.replace("line29", "changed");
        let patch = render_patch(&old, &new);
        assert!(patch.contains("  ...\n"));
        assert!(patch.contains("+ changed"));
    }
}
