//! Curated fixtures: the paper's own Figure 2 example and a handful of
//! realistic security-fix pairs used by tests, examples, and the
//! Figure 8 experiment.

/// The old version of the paper's Figure 2(a) `AESCipher` class.
pub const FIGURE2_OLD: &str = r#"
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES";

    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) { }
    }
}
"#;

/// The new version of the paper's Figure 2(a) `AESCipher` class.
pub const FIGURE2_NEW: &str = r#"
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        byte[] ivBytes;
        IvParameterSpec ivSpec;
        try {
            ivBytes = Hex.decodeHex(iv.toCharArray());
            ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) { }
    }
}
"#;

/// A named (old, new) fix pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixPair {
    /// Short identifier.
    pub name: &'static str,
    /// What the fix does.
    pub description: &'static str,
    /// Source before the fix.
    pub old: &'static str,
    /// Source after the fix.
    pub new: &'static str,
}

/// ECB → CBC (explicit ECB before), as in Figure 8's first leaf.
pub const ECB_TO_CBC: FixPair = FixPair {
    name: "ecb-to-cbc",
    description: "switch from explicit AES/ECB to AES/CBC with an IV",
    old: r#"
class PayloadCrypto {
    byte[] encrypt(byte[] data, SecretKeySpec key) throws Exception {
        Cipher cipher = Cipher.getInstance("AES/ECB/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key);
        return cipher.doFinal(data);
    }
}
"#,
    new: r#"
class PayloadCrypto {
    byte[] encrypt(byte[] data, SecretKeySpec key, byte[] ivBytes) throws Exception {
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
};

/// ECB → GCM, as in Figure 8's second leaf.
pub const ECB_TO_GCM: FixPair = FixPair {
    name: "ecb-to-gcm",
    description: "switch from explicit AES/ECB to authenticated AES/GCM",
    old: r#"
class MessageCrypto {
    byte[] seal(byte[] data, SecretKeySpec key) throws Exception {
        Cipher cipher = Cipher.getInstance("AES/ECB/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key);
        return cipher.doFinal(data);
    }
}
"#,
    new: r#"
class MessageCrypto {
    byte[] seal(byte[] data, SecretKeySpec key, byte[] nonce) throws Exception {
        IvParameterSpec iv = new IvParameterSpec(nonce);
        Cipher cipher = Cipher.getInstance("AES/GCM/NoPadding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
};

/// Default `"AES"` (implicit ECB) → CBC, Figure 8's third leaf.
pub const DEFAULT_AES_TO_CBC: FixPair = FixPair {
    name: "default-aes-to-cbc",
    description: "replace default (ECB) AES with explicit CBC and an IV",
    old: r#"
class FileCrypto {
    byte[] protect(byte[] data, SecretKeySpec key) throws Exception {
        Cipher cipher = Cipher.getInstance("AES");
        cipher.init(Cipher.ENCRYPT_MODE, key);
        return cipher.doFinal(data);
    }
}
"#,
    new: r#"
class FileCrypto {
    byte[] protect(byte[] data, SecretKeySpec key, byte[] ivBytes) throws Exception {
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
};

/// SHA-1 → SHA-256 (rule R1).
pub const SHA1_TO_SHA256: FixPair = FixPair {
    name: "sha1-to-sha256",
    description: "migrate message digest from SHA-1 to SHA-256",
    old: r#"
class Checksums {
    byte[] checksum(byte[] input) throws Exception {
        MessageDigest digest = MessageDigest.getInstance("SHA-1");
        return digest.digest(input);
    }
}
"#,
    new: r#"
class Checksums {
    byte[] checksum(byte[] input) throws Exception {
        MessageDigest digest = MessageDigest.getInstance("SHA-256");
        return digest.digest(input);
    }
}
"#,
};

/// Static IV → SecureRandom IV (rule R9).
pub const STATIC_IV_TO_RANDOM: FixPair = FixPair {
    name: "static-iv-to-random",
    description: "replace a constant IV with a SecureRandom-generated one",
    old: r#"
class SessionCrypto {
    byte[] encrypt(byte[] data, SecretKeySpec key) throws Exception {
        byte[] ivBytes = new byte[16];
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
    new: r#"
class SessionCrypto {
    byte[] encrypt(byte[] data, SecretKeySpec key) throws Exception {
        byte[] ivBytes = new byte[16];
        SecureRandom random = new SecureRandom();
        random.nextBytes(ivBytes);
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
};

/// Low PBKDF2 iteration count → 64k (rule R2).
pub const RAISE_PBE_ITERATIONS: FixPair = FixPair {
    name: "raise-pbe-iterations",
    description: "raise the PBKDF2 iteration count above 1000",
    old: r#"
class KeyDeriver {
    PBEKeySpec spec(char[] password, byte[] salt) {
        return new PBEKeySpec(password, salt, 100, 256);
    }
}
"#,
    new: r#"
class KeyDeriver {
    PBEKeySpec spec(char[] password, byte[] salt) {
        return new PBEKeySpec(password, salt, 65536, 256);
    }
}
"#,
};

/// DES → AES/CBC (rule R8).
pub const DES_TO_AES: FixPair = FixPair {
    name: "des-to-aes",
    description: "replace the broken DES cipher with AES/CBC",
    old: r#"
class LegacyCrypto {
    byte[] encode(byte[] data, SecretKeySpec key, byte[] ivBytes) throws Exception {
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("DES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
    new: r#"
class LegacyCrypto {
    byte[] encode(byte[] data, SecretKeySpec key, byte[] ivBytes) throws Exception {
        IvParameterSpec iv = new IvParameterSpec(ivBytes);
        Cipher cipher = Cipher.getInstance("AES/CBC/PKCS5Padding");
        cipher.init(Cipher.ENCRYPT_MODE, key, iv);
        return cipher.doFinal(data);
    }
}
"#,
};

/// Default provider → BouncyCastle (rule R5).
pub const ADD_BC_PROVIDER: FixPair = FixPair {
    name: "add-bc-provider",
    description: "request the BouncyCastle provider explicitly",
    old: r#"
class ProviderCrypto {
    Cipher build() throws Exception {
        return Cipher.getInstance("AES/CBC/PKCS5Padding");
    }
}
"#,
    new: r#"
class ProviderCrypto {
    Cipher build() throws Exception {
        return Cipher.getInstance("AES/CBC/PKCS5Padding", "BC");
    }
}
"#,
};

/// `getInstanceStrong()` → `getInstance("SHA1PRNG")` (rules R3/R4).
pub const AVOID_GET_INSTANCE_STRONG: FixPair = FixPair {
    name: "avoid-get-instance-strong",
    description: "avoid the potentially blocking getInstanceStrong on servers",
    old: r#"
class ServerTokens {
    byte[] token(int n) throws Exception {
        SecureRandom random = SecureRandom.getInstanceStrong();
        byte[] out = new byte[n];
        random.nextBytes(out);
        return out;
    }
}
"#,
    new: r#"
class ServerTokens {
    byte[] token(int n) throws Exception {
        SecureRandom random = SecureRandom.getInstance("SHA1PRNG");
        byte[] out = new byte[n];
        random.nextBytes(out);
        return out;
    }
}
"#,
};

/// Hard-coded key → key parameter (rule R10).
pub const HARDCODED_KEY_TO_PARAM: FixPair = FixPair {
    name: "hardcoded-key-to-param",
    description: "stop hard-coding the AES key",
    old: r#"
class KeyedCrypto {
    static final byte[] KEY = { 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16 };

    SecretKeySpec key() {
        return new SecretKeySpec(KEY, "AES");
    }
}
"#,
    new: r#"
class KeyedCrypto {
    SecretKeySpec key(byte[] keyBytes) {
        return new SecretKeySpec(keyBytes, "AES");
    }
}
"#,
};

/// All curated fix pairs.
pub fn all_fix_pairs() -> Vec<FixPair> {
    vec![
        ECB_TO_CBC,
        ECB_TO_GCM,
        DEFAULT_AES_TO_CBC,
        SHA1_TO_SHA256,
        STATIC_IV_TO_RANDOM,
        RAISE_PBE_ITERATIONS,
        DES_TO_AES,
        ADD_BC_PROVIDER,
        AVOID_GET_INSTANCE_STRONG,
        HARDCODED_KEY_TO_PARAM,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixtures_parse() {
        for pair in all_fix_pairs() {
            for src in [pair.old, pair.new] {
                let unit = javalang::parse_compilation_unit(src).expect(pair.name);
                assert!(unit.diagnostics.is_empty(), "{}", pair.name);
            }
        }
        for src in [FIGURE2_OLD, FIGURE2_NEW] {
            let unit = javalang::parse_compilation_unit(src).unwrap();
            assert!(unit.diagnostics.is_empty());
        }
    }
}
