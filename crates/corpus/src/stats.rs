//! Descriptive statistics over a corpus — used to sanity-check the
//! generator's calibration against the paper's §6.1 numbers.

use crate::model::Corpus;
use std::collections::BTreeMap;

/// Aggregate statistics for one corpus.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusStats {
    /// Number of projects.
    pub projects: usize,
    /// Distinct users.
    pub distinct_users: usize,
    /// Total commits (including initial imports).
    pub total_commits: usize,
    /// Code changes (old+new pairs), i.e. minable commits.
    pub code_changes: usize,
    /// Android projects (minSdkVersion known).
    pub android_projects: usize,
    /// Commit counts by message category.
    pub commits_by_kind: BTreeMap<String, usize>,
    /// Projects whose HEAD uses each API class (textual check).
    pub projects_using_class: BTreeMap<String, usize>,
}

/// The message prefixes the generator emits, mapped to stable category
/// names.
fn categorize(message: &str) -> &'static str {
    if message.starts_with("Initial import") {
        "initial"
    } else if message.starts_with("Security:") || message.contains("Avoid blocking") {
        "security-fix"
    } else if message.starts_with("Refactor") {
        "refactoring"
    } else if message.starts_with("Add ") {
        "usage-added"
    } else if message.starts_with("Remove") || message.starts_with("Drop") {
        "usage-removed"
    } else if message.starts_with("Simplify")
        || message.starts_with("Use faster")
        || message.starts_with("Speed up")
        || message.starts_with("Make token")
    {
        "buggy-change"
    } else {
        "unrelated"
    }
}

impl CorpusStats {
    /// Publishes the corpus shape as `corpus.*` gauges — the
    /// denominators every downstream pipeline rate (quarantine %,
    /// funnel survival %) is computed against.
    pub fn record(&self, registry: &mut obs::MetricsRegistry) {
        registry.set_gauge("corpus.projects", self.projects as f64);
        registry.set_gauge("corpus.distinct_users", self.distinct_users as f64);
        registry.set_gauge("corpus.total_commits", self.total_commits as f64);
        registry.set_gauge("corpus.code_changes", self.code_changes as f64);
        registry.set_gauge("corpus.android_projects", self.android_projects as f64);
    }
}

/// Computes the statistics for `corpus`.
pub fn corpus_stats(corpus: &Corpus) -> CorpusStats {
    let mut stats = CorpusStats {
        projects: corpus.projects.len(),
        ..CorpusStats::default()
    };
    let mut users = std::collections::BTreeSet::new();
    let classes = [
        "Cipher",
        "IvParameterSpec",
        "MessageDigest",
        "SecretKeySpec",
        "SecureRandom",
        "PBEKeySpec",
        "Mac",
        "Signature",
    ];
    for project in &corpus.projects {
        users.insert(project.user.as_str());
        stats.total_commits += project.commits.len();
        if project.facts.min_sdk_version.is_some() {
            stats.android_projects += 1;
        }
        for commit in &project.commits {
            *stats
                .commits_by_kind
                .entry(categorize(&commit.message).to_owned())
                .or_default() += 1;
        }
        let head = project.head_files();
        for class in classes {
            let pattern_factory = format!("{class}.getInstance");
            let pattern_ctor = format!("new {class}(");
            if head
                .values()
                .any(|src| src.contains(&pattern_factory) || src.contains(&pattern_ctor))
            {
                *stats
                    .projects_using_class
                    .entry(class.to_owned())
                    .or_default() += 1;
            }
        }
    }
    stats.distinct_users = users.len();
    stats.code_changes = corpus.code_changes().count();
    stats
}

impl CorpusStats {
    /// Commits in the given category.
    pub fn kind(&self, category: &str) -> usize {
        self.commits_by_kind.get(category).copied().unwrap_or(0)
    }

    /// Fraction of non-initial commits that are security fixes.
    pub fn fix_rate(&self) -> f64 {
        let non_initial = self.total_commits - self.kind("initial");
        if non_initial == 0 {
            0.0
        } else {
            self.kind("security-fix") as f64 / non_initial as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn stats_add_up() {
        let corpus = generate(&GeneratorConfig::small(25, 404));
        let stats = corpus_stats(&corpus);
        assert_eq!(stats.projects, 25);
        assert!(stats.distinct_users <= 25);
        assert_eq!(stats.kind("initial"), 25);
        let categorized: usize = stats.commits_by_kind.values().sum();
        assert_eq!(categorized, stats.total_commits);
        // Every non-initial commit yields at least one code change;
        // sweeping commits occasionally touch a second file.
        let non_initial = stats.total_commits - 25;
        assert!(stats.code_changes >= non_initial);
        assert!(stats.code_changes <= non_initial * 2);
    }

    #[test]
    fn fix_rate_matches_generator_calibration() {
        let corpus = generate(&GeneratorConfig::small(120, 11));
        let stats = corpus_stats(&corpus);
        let rate = stats.fix_rate();
        // Calibrated at ≈2% of crypto-touching commits (minus the ones
        // that degrade to refactorings when no fix applies).
        assert!(rate > 0.002 && rate < 0.05, "fix rate {rate}");
        assert!(stats.kind("unrelated") > stats.kind("refactoring"));
        assert!(stats.kind("refactoring") > stats.kind("security-fix"));
    }

    #[test]
    fn class_usage_counts_are_plausible() {
        let corpus = generate(&GeneratorConfig::small(120, 11));
        let stats = corpus_stats(&corpus);
        let random = stats
            .projects_using_class
            .get("SecureRandom")
            .copied()
            .unwrap_or(0);
        let pbe = stats
            .projects_using_class
            .get("PBEKeySpec")
            .copied()
            .unwrap_or(0);
        assert!(random > pbe, "SecureRandom is the most common class");
        assert!(random > 0 && random <= 120);
    }
}
