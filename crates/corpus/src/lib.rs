//! Synthetic GitHub corpus for the DiffCode reproduction.
//!
//! The paper mines 461 popular Java projects (11 551 crypto-touching
//! code changes) from GitHub. Network access and the original
//! repositories are unavailable here, so this crate provides a
//! **deterministic, calibrated stand-in**: a generator that produces
//! projects with realistic commit histories over parameterized Java
//! crypto modules. The pipeline downstream of mining is identical —
//! it consumes pairs of Java sources regardless of where they came
//! from. See DESIGN.md §1 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use corpus::{generate, GeneratorConfig};
//!
//! let corpus = generate(&GeneratorConfig::small(3, 7));
//! assert_eq!(corpus.projects.len(), 3);
//! let changes: Vec<_> = corpus.code_changes().collect();
//! assert!(!changes.is_empty());
//! // Same seed, same corpus:
//! assert_eq!(corpus, corpus::generate(&GeneratorConfig::small(3, 7)));
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod fixtures;
mod generator;
pub mod golden;
mod model;
pub mod stats;
pub mod templates;

pub use chaos::{FaultKind, FaultLog, InjectedFault, Mutator};
pub use diff::{diff_lines, render_patch, DiffLine};
pub use generator::{generate, GeneratorConfig};
pub use golden::golden_corpus;
pub use model::{CodeChange, Commit, Corpus, FileChange, Project, ProjectFacts, GENERATED_AUTHOR};
pub use stats::{corpus_stats, CorpusStats};
