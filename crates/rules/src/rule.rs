//! Security rules: `t : φ` clauses, composite rules, applicability, and
//! project context.

use crate::formula::Formula;
use analysis::Usages;

/// Project-level facts a few rules need beyond the analyzed source
/// (paper rule R6 checks the Android SDK version and the presence of
/// the Linux-PRNG fix described in the Android security bulletin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProjectContext {
    /// `minSdkVersion` if this is an Android project.
    pub min_sdk_version: Option<i64>,
    /// Whether the project installs the PRNG fix (`HAS_LPRNG`).
    pub has_lprng_fix: bool,
}

impl ProjectContext {
    /// A non-Android project with no special context.
    pub fn plain() -> Self {
        ProjectContext::default()
    }

    /// An Android project with the given `minSdkVersion`.
    pub fn android(min_sdk_version: i64) -> Self {
        ProjectContext {
            min_sdk_version: Some(min_sdk_version),
            has_lprng_fix: false,
        }
    }
}

/// One `t : φ` clause of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassClause {
    /// The subject type `t`.
    pub class: String,
    /// The formula `φ` over an abstract object's usage events.
    pub formula: Formula,
}

impl ClassClause {
    /// Creates a clause.
    pub fn new(class: impl Into<String>, formula: Formula) -> Self {
        ClassClause {
            class: class.into(),
            formula,
        }
    }

    /// `true` if some abstract object of `self.class` satisfies the
    /// formula.
    pub fn matches(&self, usages: &Usages) -> bool {
        usages
            .objects_of_type(&self.class)
            .any(|site| self.formula.eval(usages.events_of(site)))
    }
}

/// An extra condition on the project context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextCond {
    /// No context requirement.
    #[default]
    None,
    /// `¬LPRNG ∧ 16 ≤ MIN_SDK_VERSION ≤ 18` — the Android PRNG
    /// vulnerability window of rule R6.
    AndroidPrngVulnerable,
}

impl ContextCond {
    fn holds(self, ctx: &ProjectContext) -> bool {
        match self {
            ContextCond::None => true,
            ContextCond::AndroidPrngVulnerable => {
                !ctx.has_lprng_fix
                    && matches!(ctx.min_sdk_version, Some(v) if (16..=18).contains(&v))
            }
        }
    }
}

/// What makes a rule *applicable* to a project (the denominator of the
/// paper's Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub enum Applicability {
    /// The project uses the given API class at all.
    ClassPresent(String),
    /// The given API class is present *and* the project context allows
    /// the rule (Android-only rules).
    ClassPresentWithContext(String),
    /// All positive clauses match (composite rules such as R13, whose
    /// precondition is itself a usage pattern).
    PositiveClausesMatch,
}

/// A security rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Identifier, e.g. `R7` or `CL1`.
    pub id: String,
    /// One-line description.
    pub description: String,
    /// The formula as displayed in the paper's Figure 9.
    pub display: String,
    /// Clauses that must all match some abstract object (violation
    /// evidence).
    pub positive: Vec<ClassClause>,
    /// Clauses that must match **no** abstract object (e.g. the missing
    /// `Mac` in R13).
    pub negative: Vec<ClassClause>,
    /// Extra project-context requirement.
    pub context: ContextCond,
    /// Applicability criterion.
    pub applicability: Applicability,
    /// Citations backing the rule (papers, advisories, vendor blogs) —
    /// the bracketed references of the paper's Figure 9.
    pub references: Vec<String>,
}

impl Rule {
    /// `true` if the rule can say anything about this project.
    pub fn applicable(&self, usages: &Usages, ctx: &ProjectContext) -> bool {
        match &self.applicability {
            Applicability::ClassPresent(class) => usages.objects_of_type(class).next().is_some(),
            Applicability::ClassPresentWithContext(class) => {
                usages.objects_of_type(class).next().is_some() && ctx.min_sdk_version.is_some()
            }
            Applicability::PositiveClausesMatch => self.positive.iter().all(|c| c.matches(usages)),
        }
    }

    /// `true` if the project violates the rule.
    pub fn matches(&self, usages: &Usages, ctx: &ProjectContext) -> bool {
        self.context.holds(ctx)
            && self.positive.iter().all(|c| c.matches(usages))
            && !self.negative.iter().any(|c| c.matches(usages))
    }

    /// The primary subject class of the rule (first positive clause).
    pub fn subject_class(&self) -> &str {
        self.positive
            .first()
            .map(|c| c.class.as_str())
            .unwrap_or("")
    }

    /// The concrete evidence for a violation: for each positive clause,
    /// the abstract objects satisfying it and the usage events that made
    /// the clause's `Exists` predicates true. Empty when the rule does
    /// not match.
    pub fn evidence(&self, usages: &Usages, ctx: &ProjectContext) -> Vec<Evidence> {
        if !self.matches(usages, ctx) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for clause in &self.positive {
            for site in usages.objects_of_type(&clause.class) {
                let events = usages.events_of(site);
                if !clause.formula.eval(events) {
                    continue;
                }
                let mut witnesses = Vec::new();
                collect_witnesses(&clause.formula, events, &mut witnesses);
                out.push(Evidence {
                    class: clause.class.clone(),
                    site,
                    witnesses,
                });
            }
        }
        out
    }
}

/// Why a rule fired: one abstract object and the calls that satisfied
/// the clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The subject class.
    pub class: String,
    /// The violating abstract object.
    pub site: absdomain::AllocSite,
    /// Human-readable renderings of the witnessing calls, e.g.
    /// `getInstance("AES")`.
    pub witnesses: Vec<String>,
}

/// Collects display strings for the events that satisfy each `Exists`
/// predicate of a satisfied formula.
fn collect_witnesses(formula: &Formula, events: &[analysis::UsageEvent], out: &mut Vec<String>) {
    match formula {
        Formula::Exists(pred) => {
            if let Some(event) = events.iter().find(|e| pred.matches(e)) {
                let args: Vec<String> = event.args.iter().map(absdomain::AValue::label).collect();
                let rendered = format!("{}({})", event.method.name, args.join(", "));
                if !out.contains(&rendered) {
                    out.push(rendered);
                }
            }
        }
        Formula::NotExists(_) => {}
        Formula::And(fs) => {
            for f in fs {
                if f.eval(events) {
                    collect_witnesses(f, events, out);
                }
            }
        }
        Formula::Or(fs) => {
            // Report the first satisfied disjunct.
            if let Some(f) = fs.iter().find(|f| f.eval(events)) {
                collect_witnesses(f, events, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{ArgConstraint, CallPred};
    use analysis::{analyze, ApiModel};

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    fn sha1_rule() -> Rule {
        Rule {
            id: "T1".into(),
            description: "test rule".into(),
            display: String::new(),
            positive: vec![ClassClause::new(
                "MessageDigest",
                Formula::Exists(CallPred::method("getInstance").arg(
                    1,
                    ArgConstraint::InStrs(vec!["SHA-1".into(), "SHA1".into()]),
                )),
            )],
            negative: vec![],
            context: ContextCond::None,
            applicability: Applicability::ClassPresent("MessageDigest".into()),
            references: vec![],
        }
    }

    #[test]
    fn simple_rule_applicability_and_match() {
        let rule = sha1_rule();
        let vulnerable = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
        );
        let safe = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-256"); } }"#,
        );
        let unrelated = usages(r#"class C { void m() { } }"#);
        let ctx = ProjectContext::plain();

        assert!(rule.applicable(&vulnerable, &ctx));
        assert!(rule.matches(&vulnerable, &ctx));
        assert!(rule.applicable(&safe, &ctx));
        assert!(!rule.matches(&safe, &ctx));
        assert!(!rule.applicable(&unrelated, &ctx));
        assert!(!rule.matches(&unrelated, &ctx));
    }

    #[test]
    fn negative_clause_blocks_match() {
        let mut rule = sha1_rule();
        rule.negative.push(ClassClause::new(
            "Mac",
            Formula::Exists(CallPred::method("getInstance")),
        ));
        let with_mac = usages(
            r#"
            class C {
                void m() throws Exception {
                    MessageDigest d = MessageDigest.getInstance("SHA-1");
                    Mac mac = Mac.getInstance("HmacSHA256");
                }
            }
            "#,
        );
        assert!(!rule.matches(&with_mac, &ProjectContext::plain()));
    }

    #[test]
    fn evidence_names_the_witnessing_call() {
        let rule = sha1_rule();
        let vulnerable = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
        );
        let evidence = rule.evidence(&vulnerable, &ProjectContext::plain());
        assert_eq!(evidence.len(), 1);
        assert_eq!(evidence[0].class, "MessageDigest");
        assert_eq!(evidence[0].witnesses, vec!["getInstance(SHA-1)".to_owned()]);

        let safe = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-256"); } }"#,
        );
        assert!(rule.evidence(&safe, &ProjectContext::plain()).is_empty());
    }

    #[test]
    fn evidence_covers_composite_rules() {
        let r13 = crate::builtin::r13();
        let bad = usages(
            r#"
            class C {
                void m() throws Exception {
                    Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
                    Cipher b = Cipher.getInstance("RSA");
                }
            }
            "#,
        );
        let evidence = r13.evidence(&bad, &ProjectContext::plain());
        assert_eq!(evidence.len(), 2, "{evidence:?}");
        let all: Vec<&str> = evidence
            .iter()
            .flat_map(|e| e.witnesses.iter().map(String::as_str))
            .collect();
        assert!(
            all.contains(&"getInstance(AES/CBC/PKCS5Padding)"),
            "{all:?}"
        );
        assert!(all.contains(&"getInstance(RSA)"), "{all:?}");
    }

    #[test]
    fn android_context_gate() {
        let rule = Rule {
            id: "T6".into(),
            description: "android prng".into(),
            display: String::new(),
            positive: vec![ClassClause::new(
                "SecureRandom",
                Formula::Exists(CallPred::creation()),
            )],
            negative: vec![],
            context: ContextCond::AndroidPrngVulnerable,
            applicability: Applicability::ClassPresentWithContext("SecureRandom".into()),
            references: vec![],
        };
        let u = usages(r#"class C { void m() { SecureRandom r = new SecureRandom(); } }"#);
        assert!(
            !rule.applicable(&u, &ProjectContext::plain()),
            "not Android"
        );
        assert!(rule.applicable(&u, &ProjectContext::android(17)));
        assert!(rule.matches(&u, &ProjectContext::android(17)));
        assert!(!rule.matches(&u, &ProjectContext::android(21)));
        let fixed = ProjectContext {
            min_sdk_version: Some(17),
            has_lprng_fix: true,
        };
        assert!(!rule.matches(&u, &fixed));
    }
}
