//! The rule formula language (paper §6.3): rules have the form `t : φ`
//! where `φ` is interpreted over the set of (method, abstract state)
//! pairs of an abstract object of type `t`.

use absdomain::AValue;
use analysis::UsageEvent;

/// A constraint on one argument position of a call.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgConstraint {
    /// Always satisfied.
    Any,
    /// The argument is the string constant `s`.
    EqStr(String),
    /// The argument is one of the given string constants.
    InStrs(Vec<String>),
    /// The argument is *not* any of the given string constants
    /// (a missing or non-constant argument satisfies this).
    NotInStrs(Vec<String>),
    /// The argument is a string constant starting with the prefix.
    StartsWith(String),
    /// The argument is an integer constant less than `n`.
    IntLt(i64),
    /// The argument is an integer constant greater than or equal to `n`.
    IntGe(i64),
    /// The argument is exactly the integer constant `n`.
    EqInt(i64),
    /// The argument is program-constant data — a hard-coded key, IV,
    /// salt, or seed (`X ≠ ⊤byte[]` in the paper's notation).
    ConstData,
    /// The argument is an abstract object of the given type.
    IsObjectOfType(String),
}

impl ArgConstraint {
    /// Evaluates the constraint against an argument value; `None` means
    /// the call has no argument at that position.
    pub fn matches(&self, value: Option<&AValue>) -> bool {
        match self {
            ArgConstraint::Any => true,
            ArgConstraint::EqStr(s) => {
                matches!(value, Some(AValue::Str(v)) if &**v == s.as_str())
            }
            ArgConstraint::InStrs(set) => {
                matches!(value, Some(AValue::Str(v)) if set.iter().any(|x| x == &**v))
            }
            ArgConstraint::NotInStrs(set) => match value {
                Some(AValue::Str(v)) => !set.iter().any(|x| x == &**v),
                // Missing or non-constant argument: not one of the
                // required constants.
                _ => true,
            },
            ArgConstraint::StartsWith(prefix) => {
                matches!(value, Some(AValue::Str(v)) if v.starts_with(prefix.as_str()))
            }
            ArgConstraint::IntLt(n) => {
                matches!(value, Some(AValue::Int(v)) if v < n)
            }
            ArgConstraint::IntGe(n) => {
                matches!(value, Some(AValue::Int(v)) if v >= n)
            }
            ArgConstraint::EqInt(n) => {
                matches!(value, Some(AValue::Int(v)) if v == n)
            }
            ArgConstraint::ConstData => matches!(
                value,
                Some(
                    AValue::ConstByteArray
                        | AValue::Int(_)
                        | AValue::IntArray(_)
                        | AValue::Str(_)
                        | AValue::StrArray(_)
                        | AValue::ConstByte
                )
            ),
            ArgConstraint::IsObjectOfType(ty) => match value {
                Some(AValue::Obj { ty: t, .. }) => &**t == ty.as_str(),
                Some(AValue::TopObj { ty: Some(t) }) => &**t == ty.as_str(),
                _ => false,
            },
        }
    }
}

/// A predicate over a single usage event.
#[derive(Debug, Clone, PartialEq)]
pub struct CallPred {
    /// Method names that match; empty means any method. `<init>`
    /// matches constructors.
    pub methods: Vec<String>,
    /// 1-based argument constraints.
    pub args: Vec<(usize, ArgConstraint)>,
}

impl CallPred {
    /// A predicate on one method name with no argument constraints.
    pub fn method(name: impl Into<String>) -> Self {
        CallPred {
            methods: vec![name.into()],
            args: Vec::new(),
        }
    }

    /// Adds an argument constraint (1-based index).
    pub fn arg(mut self, index: usize, constraint: ArgConstraint) -> Self {
        self.args.push((index, constraint));
        self
    }

    /// A predicate matching object creation: constructor or any
    /// `getInstance` factory.
    pub fn creation() -> Self {
        CallPred {
            methods: vec![
                "<init>".to_owned(),
                "getInstance".to_owned(),
                "getInstanceStrong".to_owned(),
            ],
            args: Vec::new(),
        }
    }

    /// Evaluates the predicate on one event.
    pub fn matches(&self, event: &UsageEvent) -> bool {
        if !self.methods.is_empty()
            && !self
                .methods
                .iter()
                .any(|m| m.as_str() == &*event.method.name)
        {
            return false;
        }
        self.args
            .iter()
            .all(|(index, constraint)| constraint.matches(event.args.get(index - 1)))
    }
}

/// A formula over the set of usage events of one abstract object.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// `∃(m,σ) ∈ S . pred`
    Exists(CallPred),
    /// `¬∃(m,σ) ∈ S . pred`
    NotExists(CallPred),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// Evaluates against the events of one abstract object.
    pub fn eval(&self, events: &[UsageEvent]) -> bool {
        match self {
            Formula::Exists(pred) => events.iter().any(|e| pred.matches(e)),
            Formula::NotExists(pred) => !events.iter().any(|e| pred.matches(e)),
            Formula::And(fs) => fs.iter().all(|f| f.eval(events)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(events)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absdomain::MethodSig;

    fn event(name: &str, args: Vec<AValue>) -> UsageEvent {
        let arity = args.len();
        UsageEvent {
            method: MethodSig::new("Cipher", name, arity),
            args,
        }
    }

    #[test]
    fn eq_str_constraint() {
        let c = ArgConstraint::EqStr("AES".into());
        assert!(c.matches(Some(&AValue::Str("AES".into()))));
        assert!(!c.matches(Some(&AValue::Str("DES".into()))));
        assert!(!c.matches(Some(&AValue::TopStr)));
        assert!(!c.matches(None));
    }

    #[test]
    fn not_in_strs_matches_missing_and_top() {
        let c = ArgConstraint::NotInStrs(vec!["BC".into()]);
        assert!(c.matches(None), "missing provider argument");
        assert!(c.matches(Some(&AValue::TopStr)));
        assert!(c.matches(Some(&AValue::Str("SunJCE".into()))));
        assert!(!c.matches(Some(&AValue::Str("BC".into()))));
    }

    #[test]
    fn const_data_matches_static_material() {
        let c = ArgConstraint::ConstData;
        assert!(c.matches(Some(&AValue::ConstByteArray)));
        assert!(c.matches(Some(&AValue::Int(42))));
        assert!(!c.matches(Some(&AValue::TopByteArray)));
        assert!(!c.matches(None));
    }

    #[test]
    fn int_lt() {
        let c = ArgConstraint::IntLt(1000);
        assert!(c.matches(Some(&AValue::Int(100))));
        assert!(!c.matches(Some(&AValue::Int(1000))));
        assert!(!c.matches(Some(&AValue::TopInt)));
    }

    #[test]
    fn call_pred_on_events() {
        let pred = CallPred::method("getInstance").arg(1, ArgConstraint::EqStr("DES".into()));
        assert!(pred.matches(&event("getInstance", vec![AValue::Str("DES".into())])));
        assert!(!pred.matches(&event("getInstance", vec![AValue::Str("AES".into())])));
        assert!(!pred.matches(&event("init", vec![AValue::Str("DES".into())])));
    }

    #[test]
    fn creation_pred_matches_ctor_and_factory() {
        let pred = CallPred::creation();
        assert!(pred.matches(&event("<init>", vec![])));
        assert!(pred.matches(&event("getInstance", vec![AValue::Str("X".into())])));
        assert!(!pred.matches(&event("init", vec![])));
    }

    #[test]
    fn formula_connectives() {
        let events = vec![
            event("getInstance", vec![AValue::Str("AES".into())]),
            event("init", vec![AValue::TopInt]),
        ];
        let has_aes = Formula::Exists(
            CallPred::method("getInstance").arg(1, ArgConstraint::EqStr("AES".into())),
        );
        let has_des = Formula::Exists(
            CallPred::method("getInstance").arg(1, ArgConstraint::EqStr("DES".into())),
        );
        assert!(has_aes.eval(&events));
        assert!(!has_des.eval(&events));
        assert!(Formula::And(vec![has_aes.clone()]).eval(&events));
        assert!(Formula::Or(vec![has_des.clone(), has_aes.clone()]).eval(&events));
        assert!(!Formula::And(vec![has_aes, has_des.clone()]).eval(&events));
        assert!(Formula::NotExists(
            CallPred::method("getInstance").arg(1, ArgConstraint::EqStr("DES".into()))
        )
        .eval(&events));
    }
}
