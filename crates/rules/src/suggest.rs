//! Automatic rule suggestion from a usage change (paper §6.3, "On
//! Automating Rule Elicitation").
//!
//! From a usage change `(F⁻, F⁺)` the suggested rule matches any
//! abstract object that still *has* every removed feature and *lacks*
//! every added feature — i.e. any usage that was not fixed the way the
//! mined commits fix it.

use analysis::Usages;
use std::fmt;
use usagegraph::{build_dag, FeaturePath, UsageChange, DEFAULT_MAX_DEPTH};

/// A rule generated from a usage change.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestedRule {
    /// The subject API class.
    pub class: String,
    /// Features the vulnerable usage must still have (the old
    /// version's removed features).
    pub must_have: Vec<FeaturePath>,
    /// Features whose presence means the usage was already fixed (the
    /// new version's added features).
    pub must_not_have: Vec<FeaturePath>,
}

impl SuggestedRule {
    /// Builds the suggested rule for a usage change.
    pub fn from_change(change: &UsageChange) -> Self {
        SuggestedRule {
            class: change.class.clone(),
            must_have: change.removed.clone(),
            must_not_have: change.added.clone(),
        }
    }

    /// `true` if the abstract object whose DAG paths are given matches
    /// the rule (has all `must_have`, none of `must_not_have`).
    pub fn matches_paths<'a>(
        &self,
        paths: impl IntoIterator<Item = &'a FeaturePath> + Clone,
    ) -> bool {
        self.must_have
            .iter()
            .all(|needed| paths.clone().into_iter().any(|p| p == needed))
            && !self
                .must_not_have
                .iter()
                .any(|banned| paths.clone().into_iter().any(|p| p == banned))
    }

    /// `true` if any abstract object of the subject class in `usages`
    /// matches the rule.
    pub fn matches(&self, usages: &Usages) -> bool {
        usages.objects_of_type(&self.class).any(|site| {
            let dag = build_dag(usages, site, DEFAULT_MAX_DEPTH);
            self.matches_paths(dag.paths.iter())
        })
    }
}

impl fmt::Display for SuggestedRule {
    /// Renders in the paper's predicate notation, e.g.
    ///
    /// ```text
    /// Cipher : (getInstance(X) ∧ X = AES)
    ///        ∧ (getInstance(Y) ⇒ Y ≠ AES/CBC/PKCS5Padding)
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :", self.class)?;
        let mut first = true;
        let mut var = b'X';
        for path in &self.must_have {
            let sep = if first { " " } else { "\n       \u{2227} " };
            first = false;
            write!(f, "{sep}({})", positive_atom(path, var as char))?;
            var += 1;
        }
        for path in &self.must_not_have {
            let sep = if first { " " } else { "\n       \u{2227} " };
            first = false;
            write!(f, "{sep}({})", negative_atom(path, var as char))?;
            var += 1;
        }
        Ok(())
    }
}

fn split_arg(label: &str) -> Option<(usize, &str)> {
    let rest = label.strip_prefix("arg")?;
    let (index, value) = rest.split_once(':')?;
    Some((index.parse().ok()?, value))
}

fn positive_atom(path: &FeaturePath, var: char) -> String {
    render_atom(path, var, "=")
}

fn negative_atom(path: &FeaturePath, var: char) -> String {
    render_atom(path, var, "\u{2260}").replacen(" \u{2227} ", " \u{21d2} ", 1)
}

fn render_atom(path: &FeaturePath, var: char, relation: &str) -> String {
    let labels = path.labels();
    match labels.len() {
        0 | 1 => "true".to_owned(),
        2 => labels[1].to_string(),
        _ => {
            let method = &labels[1];
            match split_arg(&labels[2]) {
                Some((index, value)) => {
                    let placeholders: Vec<String> = (1..=index)
                        .map(|i| {
                            if i == index {
                                var.to_string()
                            } else {
                                "_".to_owned()
                            }
                        })
                        .collect();
                    format!(
                        "{method}({}) \u{2227} {var} {relation} {value}",
                        placeholders.join(",")
                    )
                }
                None => format!("{method} {relation} {}", labels[2]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{analyze, ApiModel};
    use usagegraph::usage_changes;

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    #[test]
    fn suggested_rule_from_figure2_matches_unfixed_code() {
        let old = usages(
            r#"
            class AESCipher {
                Cipher enc;
                void setKey(Secret key) throws Exception {
                    enc = Cipher.getInstance("AES");
                    enc.init(Cipher.ENCRYPT_MODE, key);
                }
            }
            "#,
        );
        let new = usages(
            r#"
            class AESCipher {
                Cipher enc;
                void setKeyAndIV(Secret key, String iv) throws Exception {
                    IvParameterSpec ivSpec = new IvParameterSpec(Hex.decodeHex(iv.toCharArray()));
                    enc = Cipher.getInstance("AES/CBC/PKCS5Padding");
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                }
            }
            "#,
        );
        let changes = usage_changes(&old, &new, "Cipher");
        assert_eq!(changes.len(), 1);
        let rule = SuggestedRule::from_change(&changes[0]);

        // The unfixed (old) code still matches the suggested rule…
        assert!(rule.matches(&old));
        // …the fixed code does not…
        assert!(!rule.matches(&new));
        // …and an unrelated safe usage does not either.
        let safe = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding"); } }"#,
        );
        assert!(!rule.matches(&safe));
    }

    #[test]
    fn display_uses_predicate_notation() {
        let change = UsageChange {
            class: "Cipher".into(),
            removed: vec![FeaturePath(vec![
                "Cipher".into(),
                "getInstance".into(),
                "arg1:AES".into(),
            ])],
            added: vec![FeaturePath(vec![
                "Cipher".into(),
                "getInstance".into(),
                "arg1:AES/CBC/PKCS5Padding".into(),
            ])],
        };
        let rule = SuggestedRule::from_change(&change);
        let text = rule.to_string();
        assert!(text.starts_with("Cipher :"), "{text}");
        assert!(text.contains("getInstance(X) \u{2227} X = AES"), "{text}");
        assert!(
            text.contains("getInstance(Y) \u{21d2} Y \u{2260} AES/CBC/PKCS5Padding"),
            "{text}"
        );
    }
}
