//! Evaluating rule clauses over usage **DAGs** rather than raw events.
//!
//! Figure 7 of the paper classifies each *usage change* (one paired
//! object, not a whole program) as fix/bug/none with respect to the
//! CryptoLint rules. At that granularity only the object's DAG is
//! available, so this module interprets a [`ClassClause`] over the
//! DAG's label paths.

use crate::formula::{ArgConstraint, CallPred, Formula};
use crate::rule::ClassClause;
use absdomain::AValue;
use usagegraph::UsageDag;

/// Reconstructs an abstract value from a DAG argument label (the
/// inverse of [`AValue::label`], up to the information the label keeps).
pub fn label_to_avalue(label: &str) -> AValue {
    match label {
        "\u{22a4}byte[]" => return AValue::TopByteArray,
        "constbyte[]" => return AValue::ConstByteArray,
        "constbyte" => return AValue::ConstByte,
        "\u{22a4}byte" => return AValue::TopByte,
        "\u{22a4}int" => return AValue::TopInt,
        "\u{22a4}int[]" => return AValue::TopIntArray,
        "\u{22a4}str" => return AValue::TopStr,
        "\u{22a4}str[]" => return AValue::TopStrArray,
        "\u{22a4}bool" => return AValue::TopBool,
        "null" => return AValue::Null,
        "true" => return AValue::Bool(true),
        "false" => return AValue::Bool(false),
        "\u{22a4}" | "\u{22a4}obj" => return AValue::Unknown,
        _ => {}
    }
    if let Ok(n) = label.parse::<i64>() {
        return AValue::Int(n);
    }
    // API constants (ENCRYPT_MODE, SDK_INT) are ALL_CAPS with an
    // underscore; short all-caps strings like "AES" are algorithm
    // string constants, not constants of the API.
    if label.contains('_')
        && label
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        && label.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    {
        return AValue::ApiConst {
            class: "?".into(),
            name: label.into(),
        };
    }
    AValue::Str(label.into())
}

fn parse_arg_label(label: &str) -> Option<(usize, AValue)> {
    let rest = label.strip_prefix("arg")?;
    let (index, value) = rest.split_once(':')?;
    Some((index.parse().ok()?, label_to_avalue(value)))
}

/// `true` if some method node directly under the DAG root satisfies
/// `pred` (method name and argument constraints).
fn pred_triggers(pred: &CallPred, dag: &UsageDag) -> bool {
    // Collect the root's method children and their argument labels.
    let method_paths: Vec<&usagegraph::FeaturePath> =
        dag.paths.iter().filter(|p| p.len() == 2).collect();
    method_paths.iter().any(|mp| {
        let method = &mp.labels()[1];
        let bare = method.rsplit('.').next().unwrap_or(method);
        if !pred.methods.is_empty() && !pred.methods.iter().any(|m| m == bare) {
            return false;
        }
        pred.args.iter().all(|(index, constraint)| {
            // Find this method node's argN children.
            let found = dag.paths.iter().find_map(|p| {
                if p.len() == 3 && p.labels()[1] == *method {
                    let (i, value) = parse_arg_label(&p.labels()[2])?;
                    if i == *index {
                        return Some(value);
                    }
                }
                None
            });
            match constraint {
                // Absent argument: mirror CallPred's treatment of
                // missing arguments.
                ArgConstraint::NotInStrs(_) | ArgConstraint::Any => {
                    constraint.matches(found.as_ref())
                }
                _ => match found {
                    Some(v) => constraint.matches(Some(&v)),
                    None => false,
                },
            }
        })
    })
}

fn formula_triggers(formula: &Formula, dag: &UsageDag) -> bool {
    match formula {
        Formula::Exists(pred) => pred_triggers(pred, dag),
        Formula::NotExists(pred) => !pred_triggers(pred, dag),
        Formula::And(fs) => fs.iter().all(|f| formula_triggers(f, dag)),
        Formula::Or(fs) => fs.iter().any(|f| formula_triggers(f, dag)),
    }
}

/// `true` if the clause triggers on this object's DAG (the DAG root
/// must be the clause's class).
pub fn clause_triggers(clause: &ClassClause, dag: &UsageDag) -> bool {
    *dag.root_type == clause.class && formula_triggers(&clause.formula, dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cryptolint::{cl1, cl5};
    use analysis::{analyze, ApiModel};
    use usagegraph::{dags_for_class, DEFAULT_MAX_DEPTH};

    fn dag(src: &str, class: &str) -> UsageDag {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        let usages = analyze(&unit, &ApiModel::standard());
        dags_for_class(&usages, class, DEFAULT_MAX_DEPTH)
            .into_iter()
            .next()
            .expect("one dag")
    }

    #[test]
    fn label_roundtrip() {
        assert_eq!(label_to_avalue("\u{22a4}byte[]"), AValue::TopByteArray);
        assert_eq!(label_to_avalue("constbyte[]"), AValue::ConstByteArray);
        assert_eq!(label_to_avalue("1000"), AValue::Int(1000));
        assert_eq!(label_to_avalue("AES/CBC"), AValue::Str("AES/CBC".into()));
        assert!(matches!(
            label_to_avalue("ENCRYPT_MODE"),
            AValue::ApiConst { .. }
        ));
    }

    #[test]
    fn cl1_triggers_on_ecb_dag() {
        let ecb = dag(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
            "Cipher",
        );
        let cbc = dag(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
            "Cipher",
        );
        let rule = cl1();
        assert!(clause_triggers(&rule.positive[0], &ecb));
        assert!(!clause_triggers(&rule.positive[0], &cbc));
    }

    #[test]
    fn cl5_triggers_on_low_iterations_dag() {
        let low = dag(
            r#"class C { void m(char[] pw, byte[] s) { PBEKeySpec k = new PBEKeySpec(pw, s, 100, 256); } }"#,
            "PBEKeySpec",
        );
        let high = dag(
            r#"class C { void m(char[] pw, byte[] s) { PBEKeySpec k = new PBEKeySpec(pw, s, 65536, 256); } }"#,
            "PBEKeySpec",
        );
        let rule = cl5();
        assert!(clause_triggers(&rule.positive[0], &low));
        assert!(!clause_triggers(&rule.positive[0], &high));
    }

    #[test]
    fn wrong_class_never_triggers() {
        let cipher = dag(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
            "Cipher",
        );
        let rule = cl5();
        assert!(!clause_triggers(&rule.positive[0], &cipher));
    }
}
