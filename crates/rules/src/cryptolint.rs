//! The five CryptoLint rules (Egele et al., CCS'13) the paper uses as a
//! ground-truth oracle when classifying code changes into security
//! fixes vs. buggy changes (§6.2, Figure 7).

use crate::formula::{ArgConstraint as A, CallPred, Formula as F};
use crate::rule::{Applicability, ClassClause, ContextCond, Rule};

fn cl(id: &str, description: &str, class: &str, formula: F) -> Rule {
    Rule {
        id: id.to_owned(),
        description: description.to_owned(),
        display: String::new(),
        positive: vec![ClassClause::new(class, formula)],
        negative: vec![],
        context: ContextCond::None,
        applicability: Applicability::ClassPresent(class.to_owned()),
        references: vec!["Egele et al., An Empirical Study of Cryptographic Misuse in Android Applications (CCS'13) [12]".to_owned()],
    }
}

/// CL1: Do not use ECB mode for encryption.
pub fn cl1() -> Rule {
    cl(
        "CL1",
        "Do not use ECB mode for encryption",
        "Cipher",
        F::Or(vec![
            F::Exists(CallPred::method("getInstance").arg(1, A::EqStr("AES".into()))),
            F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("AES/ECB".into()))),
            F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("DES/ECB".into()))),
        ]),
    )
}

/// CL2: Do not use a non-random (constant) IV for CBC encryption.
pub fn cl2() -> Rule {
    cl(
        "CL2",
        "Do not use a constant initialization vector",
        "IvParameterSpec",
        F::Exists(CallPred::method("<init>").arg(1, A::ConstData)),
    )
}

/// CL3: Do not use constant encryption keys.
pub fn cl3() -> Rule {
    cl(
        "CL3",
        "Do not use constant encryption keys",
        "SecretKeySpec",
        F::Exists(CallPred::method("<init>").arg(1, A::ConstData)),
    )
}

/// CL4: Do not use constant salts for password-based encryption.
pub fn cl4() -> Rule {
    cl(
        "CL4",
        "Do not use constant salts for PBE",
        "PBEKeySpec",
        F::Exists(CallPred::method("<init>").arg(2, A::ConstData)),
    )
}

/// CL5: Do not use fewer than 1 000 iterations for password-based
/// encryption.
pub fn cl5() -> Rule {
    cl(
        "CL5",
        "Do not use fewer than 1,000 iterations for PBE",
        "PBEKeySpec",
        F::Exists(CallPred::method("<init>").arg(3, A::IntLt(1000))),
    )
}

/// All five CryptoLint oracle rules.
pub fn cryptolint_rules() -> Vec<Rule> {
    vec![cl1(), cl2(), cl3(), cl4(), cl5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::ProjectContext;
    use analysis::{analyze, ApiModel, Usages};

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    #[test]
    fn five_rules() {
        let rules = cryptolint_rules();
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0].subject_class(), "Cipher");
        assert_eq!(rules[1].subject_class(), "IvParameterSpec");
        assert_eq!(rules[2].subject_class(), "SecretKeySpec");
        assert_eq!(rules[3].subject_class(), "PBEKeySpec");
        assert_eq!(rules[4].subject_class(), "PBEKeySpec");
    }

    #[test]
    fn cl1_matches_ecb() {
        let ecb = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding"); } }"#,
        );
        let gcm = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding"); } }"#,
        );
        assert!(cl1().matches(&ecb, &ProjectContext::plain()));
        assert!(!cl1().matches(&gcm, &ProjectContext::plain()));
    }

    #[test]
    fn cl2_matches_constant_iv() {
        let bad = usages(
            r#"class C { void m() { IvParameterSpec s = new IvParameterSpec(new byte[16]); } }"#,
        );
        assert!(cl2().matches(&bad, &ProjectContext::plain()));
    }
}
