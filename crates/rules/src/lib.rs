//! Security rules for the Java Crypto API: the rule language of §6.3,
//! the 13 elicited rules of Figure 9, CryptoLint's oracle rules CL1–CL5,
//! change classification (§6.2), the CryptoChecker (§6.4), and automatic
//! rule suggestion (§6.3).
//!
//! # Example
//!
//! ```
//! use analysis::{analyze, ApiModel};
//! use rules::{CryptoChecker, CheckedProject, ProjectContext};
//!
//! let unit = javalang::parse_compilation_unit(
//!     r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
//! )?;
//! let project = CheckedProject {
//!     name: "demo".to_owned(),
//!     usages: vec![analyze(&unit, &ApiModel::standard())],
//!     context: ProjectContext::plain(),
//! };
//! let checker = CryptoChecker::standard();
//! let violations = checker.violations(&project);
//! assert!(violations.contains(&"R7".to_owned()), "default AES is ECB");
//! # Ok::<(), javalang::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod builtin;
pub mod checker;
pub mod classify;
pub mod cryptolint;
pub mod dagcheck;
pub mod dsl;
pub mod formula;
pub mod rule;
pub mod suggest;

pub use builtin::all_rules;
pub use checker::{CheckScope, CheckedProject, CryptoChecker, RuleStats};
pub use classify::{classify_change, classify_dag_pair, ChangeClass};
pub use cryptolint::cryptolint_rules;
pub use dagcheck::clause_triggers;
pub use formula::{ArgConstraint, CallPred, Formula};
pub use rule::{Applicability, ClassClause, ContextCond, Evidence, ProjectContext, Rule};
pub use suggest::SuggestedRule;
