//! The 13 security rules elicited by DiffCode (paper Figure 9).

use crate::formula::{ArgConstraint as A, CallPred, Formula as F};
use crate::rule::{Applicability, ClassClause, ContextCond, Rule};

#[allow(clippy::too_many_arguments)]
fn rule(
    id: &str,
    description: &str,
    display: &str,
    positive: Vec<ClassClause>,
    negative: Vec<ClassClause>,
    context: ContextCond,
    applicability: Applicability,
    references: &[&str],
) -> Rule {
    Rule {
        id: id.to_owned(),
        description: description.to_owned(),
        display: display.to_owned(),
        positive,
        negative,
        context,
        applicability,
        references: references.iter().map(|r| (*r).to_owned()).collect(),
    }
}

fn simple(
    id: &str,
    description: &str,
    display: &str,
    class: &str,
    formula: F,
    references: &[&str],
) -> Rule {
    rule(
        id,
        description,
        display,
        vec![ClassClause::new(class, formula)],
        vec![],
        ContextCond::None,
        Applicability::ClassPresent(class.to_owned()),
        references,
    )
}

/// R1: Use SHA-256 instead of SHA-1.
pub fn r1() -> Rule {
    simple(
        "R1",
        "Use SHA-256 instead of SHA-1",
        "MessageDigest : getInstance(X) \u{2227} X=SHA-1",
        "MessageDigest",
        F::Exists(
            CallPred::method("getInstance").arg(1, A::InStrs(vec!["SHA-1".into(), "SHA1".into()])),
        ),
        &["Stevens et al., The first SHA-1 collision (2017) [30]"],
    )
}

/// R2: Do not use password-based encryption with an iteration count
/// below 1000.
pub fn r2() -> Rule {
    simple(
        "R2",
        "Do not use password-based encryption with iterations count less than 1000",
        "PBEKeySpec : <init>(_,_,X,_) \u{2227} X<1000",
        "PBEKeySpec",
        F::Exists(CallPred::method("<init>").arg(3, A::IntLt(1000))),
        &["Abadi & Warinschi, Password-Based Encryption Analyzed (2005) [7]"],
    )
}

/// R3: SecureRandom should be used with SHA-1PRNG.
pub fn r3() -> Rule {
    let prng = vec!["SHA1PRNG".to_owned(), "SHA-1PRNG".to_owned()];
    simple(
        "R3",
        "SecureRandom should be used with SHA-1PRNG",
        "SecureRandom : <init>(X) \u{2227} X\u{2260}SHA-1PRNG",
        "SecureRandom",
        F::Exists(CallPred {
            methods: vec!["<init>".into(), "getInstance".into()],
            args: vec![(1, A::NotInStrs(prng))],
        }),
        &["The Right Way to Use SecureRandom (2015) [2]"],
    )
}

/// R4: `SecureRandom.getInstanceStrong()` should be avoided on
/// server-side code where availability matters (it may block).
pub fn r4() -> Rule {
    simple(
        "R4",
        "SecureRandom with getInstanceStrong should be avoided",
        "SecureRandom : \u{00ac}getInstanceStrong",
        "SecureRandom",
        F::Exists(CallPred::method("getInstanceStrong")),
        &["Sethi, Proper use of Java SecureRandom (2016) [28]"],
    )
}

/// R5: Use the BouncyCastle provider for `Cipher` (the default provider
/// historically enforced the 128-bit key restriction).
pub fn r5() -> Rule {
    simple(
        "R5",
        "Use the BouncyCastle provider for Cipher",
        "Cipher : getInstance(_,X) \u{2227} X\u{2260}BC",
        "Cipher",
        F::Exists(CallPred::method("getInstance").arg(2, A::NotInStrs(vec!["BC".into()]))),
        &["Bouncy Castle vs JCA key-length restriction (2016) [3]"],
    )
}

/// R6: The underlying PRNG is vulnerable on Android API 16–18 unless
/// the Linux-PRNG fix is applied.
pub fn r6() -> Rule {
    rule(
        "R6",
        "The underlying PRNG is vulnerable on Android v16-18",
        "SecureRandom : <init>(_) \u{2227} \u{00ac}LPRNG \u{2227} MIN_SDK_VERSION\u{2265}16",
        vec![ClassClause::new(
            "SecureRandom",
            F::Exists(CallPred::creation()),
        )],
        vec![],
        ContextCond::AndroidPrngVulnerable,
        Applicability::ClassPresentWithContext("SecureRandom".to_owned()),
        &[
            "Kaplan et al., Attacking the Linux PRNG on Android (WOOT'14) [17]",
            "Android: Some SecureRandom Thoughts (2013) [1]",
        ],
    )
}

/// R7: Do not use `Cipher` in AES/ECB mode (a bare `"AES"` defaults to
/// ECB).
pub fn r7() -> Rule {
    simple(
        "R7",
        "Do not use Cipher in AES/ECB mode",
        "Cipher : getInstance(X) \u{2227} (X=AES \u{2228} X=AES/ECB)",
        "Cipher",
        F::Or(vec![
            F::Exists(CallPred::method("getInstance").arg(1, A::EqStr("AES".into()))),
            F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("AES/ECB".into()))),
        ]),
        &[
            "Bellare & Rogaway, Introduction to Modern Cryptography [9]",
            "Egele et al., CCS'13 [12]",
        ],
    )
}

/// R8: Do not use `Cipher` with DES.
pub fn r8() -> Rule {
    simple(
        "R8",
        "Do not use Cipher with DES mode",
        "Cipher : getInstance(X) \u{2227} X=DES",
        "Cipher",
        F::Or(vec![
            F::Exists(CallPred::method("getInstance").arg(1, A::EqStr("DES".into()))),
            F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("DES/".into()))),
        ]),
        &["CERT MSC61-J: Do not use insecure or weak cryptographic algorithms [23]"],
    )
}

/// R9: `IvParameterSpec` must not be initialized with a static byte
/// array.
pub fn r9() -> Rule {
    simple(
        "R9",
        "IvParameterSpec should not be initialized with a static byte array",
        "IvParameterSpec : <init>(X) \u{2227} X\u{2260}\u{22a4}byte[]",
        "IvParameterSpec",
        F::Exists(CallPred::method("<init>").arg(1, A::ConstData)),
        &["Bellare & Rogaway, Introduction to Modern Cryptography [9]"],
    )
}

/// R10: `SecretKeySpec` must not be built from a static key.
pub fn r10() -> Rule {
    simple(
        "R10",
        "SecretKeySpec should not be static",
        "SecretKeySpec : <init>(X) \u{2227} X\u{2260}\u{22a4}byte[]",
        "SecretKeySpec",
        F::Exists(CallPred::method("<init>").arg(1, A::ConstData)),
        &["Egele et al., CCS'13 [12]"],
    )
}

/// R11: Password-based encryption must not use a static salt.
pub fn r11() -> Rule {
    simple(
        "R11",
        "Do not use password-based encryption with static salt",
        "PBEKeySpec : <init>(_,X,_,_) \u{2227} X\u{2260}\u{22a4}byte[]",
        "PBEKeySpec",
        F::Exists(CallPred::method("<init>").arg(2, A::ConstData)),
        &["Egele et al., CCS'13 [12]"],
    )
}

/// R12: `SecureRandom` must not be seeded with a static seed.
pub fn r12() -> Rule {
    simple(
        "R12",
        "Do not use SecureRandom static seed",
        "SecureRandom : setSeed(X) \u{2227} X\u{2260}\u{22a4}byte[]",
        "SecureRandom",
        F::Exists(CallPred::method("setSeed").arg(1, A::ConstData)),
        &["Egele et al., CCS'13 [12]"],
    )
}

/// R13: Missing integrity (no HMAC) after an RSA-protected symmetric
/// key exchange — a composite rule over two `Cipher` objects and the
/// absence of a `Mac`.
pub fn r13() -> Rule {
    rule(
        "R13",
        "Missing integrity check after symmetric key exchange",
        "(Cipher : getInstance(X) \u{2227} startsWith(X,AES/CBC)) \u{2227} \
         (Cipher : getInstance(Y) \u{2227} Y=RSA) \u{2227} \
         \u{00ac}(Mac : getInstance(Z) \u{2227} startsWith(Z,Hmac))",
        vec![
            ClassClause::new(
                "Cipher",
                F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("AES/CBC".into()))),
            ),
            ClassClause::new(
                "Cipher",
                F::Or(vec![
                    F::Exists(CallPred::method("getInstance").arg(1, A::EqStr("RSA".into()))),
                    F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("RSA/".into()))),
                ]),
            ),
        ],
        vec![ClassClause::new(
            "Mac",
            F::Exists(CallPred::method("getInstance").arg(1, A::StartsWith("Hmac".into()))),
        )],
        ContextCond::None,
        Applicability::PositiveClausesMatch,
        &["Top 10 developer crypto mistakes (2017) [6]"],
    )
}

/// All 13 rules of Figure 9, in order.
pub fn all_rules() -> Vec<Rule> {
    vec![
        r1(),
        r2(),
        r3(),
        r4(),
        r5(),
        r6(),
        r7(),
        r8(),
        r9(),
        r10(),
        r11(),
        r12(),
        r13(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::ProjectContext;
    use analysis::{analyze, ApiModel, Usages};

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    fn plain() -> ProjectContext {
        ProjectContext::plain()
    }

    #[test]
    fn thirteen_rules_with_unique_ids() {
        let rules = all_rules();
        assert_eq!(rules.len(), 13);
        let mut ids: Vec<_> = rules.iter().map(|r| r.id.clone()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 13);
        assert_eq!(ids[0], "R1");
        assert_eq!(ids[12], "R13");
    }

    #[test]
    fn r1_flags_sha1_not_sha256() {
        let bad = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
        );
        let good = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-256"); } }"#,
        );
        assert!(r1().matches(&bad, &plain()));
        assert!(!r1().matches(&good, &plain()));
    }

    #[test]
    fn r2_flags_low_iterations() {
        let bad = usages(
            r#"class C { void m(char[] pw, byte[] salt) { PBEKeySpec s = new PBEKeySpec(pw, salt, 100, 256); } }"#,
        );
        let good = usages(
            r#"class C { void m(char[] pw, byte[] salt) { PBEKeySpec s = new PBEKeySpec(pw, salt, 10000, 256); } }"#,
        );
        assert!(r2().matches(&bad, &plain()));
        assert!(!r2().matches(&good, &plain()));
    }

    #[test]
    fn r3_flags_default_construction() {
        let bad = usages(r#"class C { void m() { SecureRandom r = new SecureRandom(); } }"#);
        let good = usages(
            r#"class C { void m() throws Exception { SecureRandom r = SecureRandom.getInstance("SHA1PRNG"); } }"#,
        );
        assert!(r3().matches(&bad, &plain()));
        assert!(!r3().matches(&good, &plain()));
    }

    #[test]
    fn r4_flags_get_instance_strong() {
        let bad = usages(
            r#"class C { void m() throws Exception { SecureRandom r = SecureRandom.getInstanceStrong(); } }"#,
        );
        assert!(r4().matches(&bad, &plain()));
    }

    #[test]
    fn r5_flags_missing_bc_provider() {
        let bad = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding"); } }"#,
        );
        let good = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC"); } }"#,
        );
        assert!(r5().matches(&bad, &plain()));
        assert!(!r5().matches(&good, &plain()));
    }

    #[test]
    fn r7_flags_default_and_explicit_ecb() {
        let default_mode = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
        );
        let explicit = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding"); } }"#,
        );
        let cbc = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
        );
        assert!(r7().matches(&default_mode, &plain()));
        assert!(r7().matches(&explicit, &plain()));
        assert!(!r7().matches(&cbc, &plain()));
    }

    #[test]
    fn r8_flags_des() {
        let bad = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("DES/CBC/PKCS5Padding"); } }"#,
        );
        assert!(r8().matches(&bad, &plain()));
    }

    #[test]
    fn r9_static_iv() {
        let bad = usages(
            r#"class C { void m() { byte[] iv = new byte[16]; IvParameterSpec s = new IvParameterSpec(iv); } }"#,
        );
        let good = usages(
            r#"
            class C {
                void m() {
                    byte[] iv = new byte[16];
                    SecureRandom r = new SecureRandom();
                    r.nextBytes(iv);
                    IvParameterSpec s = new IvParameterSpec(iv);
                }
            }
            "#,
        );
        assert!(r9().matches(&bad, &plain()));
        assert!(!r9().matches(&good, &plain()));
    }

    #[test]
    fn r10_static_key() {
        let bad = usages(
            r#"class C { void m() { byte[] key = { 1, 2, 3, 4 }; SecretKeySpec s = new SecretKeySpec(key, "AES"); } }"#,
        );
        let good = usages(
            r#"class C { void m(byte[] key) { SecretKeySpec s = new SecretKeySpec(key, "AES"); } }"#,
        );
        assert!(r10().matches(&bad, &plain()));
        assert!(!r10().matches(&good, &plain()));
    }

    #[test]
    fn r11_static_salt() {
        let bad = usages(
            r#"class C { void m(char[] pw) { byte[] salt = { 9, 9, 9, 9 }; PBEKeySpec s = new PBEKeySpec(pw, salt, 10000, 256); } }"#,
        );
        let good = usages(
            r#"class C { void m(char[] pw, byte[] salt) { PBEKeySpec s = new PBEKeySpec(pw, salt, 10000, 256); } }"#,
        );
        assert!(r11().matches(&bad, &plain()));
        assert!(!r11().matches(&good, &plain()));
    }

    #[test]
    fn r12_static_seed() {
        let bad = usages(
            r#"class C { void m() { SecureRandom r = new SecureRandom(); byte[] seed = { 5 }; r.setSeed(seed); } }"#,
        );
        let good = usages(
            r#"class C { void m(byte[] seed) { SecureRandom r = new SecureRandom(); r.setSeed(seed); } }"#,
        );
        assert!(r12().matches(&bad, &plain()));
        assert!(!r12().matches(&good, &plain()));
    }

    #[test]
    fn r13_composite_missing_mac() {
        let bad = usages(
            r#"
            class KeyExchange {
                void m(Key rsaKey, Key aesKey, byte[] iv) throws Exception {
                    Cipher wrap = Cipher.getInstance("RSA");
                    Cipher data = Cipher.getInstance("AES/CBC/PKCS5Padding");
                }
            }
            "#,
        );
        let good = usages(
            r#"
            class KeyExchange {
                void m(Key rsaKey, Key aesKey, byte[] iv) throws Exception {
                    Cipher wrap = Cipher.getInstance("RSA");
                    Cipher data = Cipher.getInstance("AES/CBC/PKCS5Padding");
                    Mac mac = Mac.getInstance("HmacSHA256");
                }
            }
            "#,
        );
        let only_aes = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
        );
        let r = r13();
        assert!(r.applicable(&bad, &plain()));
        assert!(r.matches(&bad, &plain()));
        assert!(r.applicable(&good, &plain()));
        assert!(!r.matches(&good, &plain()));
        assert!(!r.applicable(&only_aes, &plain()), "needs both ciphers");
    }
}
