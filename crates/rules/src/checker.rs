//! CryptoChecker — runs a rule set over analyzed projects and produces
//! the applicable/matching statistics of the paper's Figure 10.

use crate::rule::{ProjectContext, Rule};
use analysis::Usages;

/// One project as the checker sees it: the merged abstract usages of
/// all its files plus the project context.
#[derive(Debug, Clone)]
pub struct CheckedProject {
    /// Project name (for reports).
    pub name: String,
    /// Abstract usages of every file, analyzed and merged.
    pub usages: Vec<Usages>,
    /// Project-level facts.
    pub context: ProjectContext,
}

/// Per-rule aggregate over a set of projects (one Figure 10 row).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStats {
    /// Rule id.
    pub rule_id: String,
    /// Rule description.
    pub description: String,
    /// Projects with at least one usage the rule applies to.
    pub applicable: usize,
    /// Projects with at least one usage matching (violating) the rule.
    pub matching: usize,
}

impl RuleStats {
    /// `applicable` as a percentage of `total` projects.
    pub fn applicable_pct(&self, total: usize) -> f64 {
        percentage(self.applicable, total)
    }

    /// `matching` as a percentage of `applicable`.
    pub fn matching_pct(&self) -> f64 {
        percentage(self.matching, self.applicable)
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// How a project's files are presented to the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckScope {
    /// Each file is checked on its own. A rule with a negative clause
    /// (R13) then requires the missing evidence to be missing in the
    /// file that holds the positive evidence.
    #[default]
    PerFile,
    /// All files are merged into one usage view first — the paper's
    /// project-level reading ("the rule matches any projects that have
    /// the two Cipher objects but lack the required Mac object").
    Project,
}

/// The security checker built from the elicited rules.
#[derive(Debug, Clone)]
pub struct CryptoChecker {
    rules: Vec<Rule>,
    scope: CheckScope,
}

impl CryptoChecker {
    /// A checker over the given rules (per-file scope).
    pub fn new(rules: Vec<Rule>) -> Self {
        CryptoChecker {
            rules,
            scope: CheckScope::PerFile,
        }
    }

    /// A checker with all 13 rules of Figure 9.
    pub fn standard() -> Self {
        CryptoChecker::new(crate::builtin::all_rules())
    }

    /// Switches to project-level checking (see [`CheckScope::Project`]).
    pub fn with_scope(mut self, scope: CheckScope) -> Self {
        self.scope = scope;
        self
    }

    /// The rules the checker enforces.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The usage views a project is checked under.
    fn views(&self, project: &CheckedProject) -> Vec<Usages> {
        match self.scope {
            CheckScope::PerFile => project.usages.clone(),
            CheckScope::Project => vec![Usages::merged(project.usages.iter())],
        }
    }

    fn applicable_in(rule: &Rule, views: &[Usages], project: &CheckedProject) -> bool {
        views.iter().any(|u| rule.applicable(u, &project.context))
    }

    fn matches_in(rule: &Rule, views: &[Usages], project: &CheckedProject) -> bool {
        views.iter().any(|u| rule.matches(u, &project.context))
    }

    /// The rule ids violated by `project`.
    pub fn violations(&self, project: &CheckedProject) -> Vec<String> {
        let views = self.views(project);
        self.rules
            .iter()
            .filter(|r| Self::matches_in(r, &views, project))
            .map(|r| r.id.clone())
            .collect()
    }

    /// Aggregates applicable/matching counts over `projects` — the
    /// Figure 10 table.
    pub fn check_all(&self, projects: &[CheckedProject]) -> Vec<RuleStats> {
        let views: Vec<Vec<Usages>> = projects.iter().map(|p| self.views(p)).collect();
        self.rules
            .iter()
            .map(|rule| RuleStats {
                rule_id: rule.id.clone(),
                description: rule.description.clone(),
                applicable: projects
                    .iter()
                    .zip(&views)
                    .filter(|(p, v)| Self::applicable_in(rule, v, p))
                    .count(),
                matching: projects
                    .iter()
                    .zip(&views)
                    .filter(|(p, v)| {
                        Self::applicable_in(rule, v, p) && Self::matches_in(rule, v, p)
                    })
                    .count(),
            })
            .collect()
    }

    /// Number of projects violating at least one rule (the paper's
    /// ">57% of projects" headline).
    pub fn projects_with_any_violation(&self, projects: &[CheckedProject]) -> usize {
        projects
            .iter()
            .filter(|p| {
                let views = self.views(p);
                self.rules.iter().any(|r| Self::matches_in(r, &views, p))
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{analyze, ApiModel};

    fn project(name: &str, sources: &[&str]) -> CheckedProject {
        let api = ApiModel::standard();
        CheckedProject {
            name: name.to_owned(),
            usages: sources
                .iter()
                .map(|s| analyze(&javalang::parse_compilation_unit(s).unwrap(), &api))
                .collect(),
            context: ProjectContext::plain(),
        }
    }

    #[test]
    fn figure10_shape_on_tiny_corpus() {
        let p1 = project(
            "ecb-user",
            &[r#"class A { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#],
        );
        let p2 = project(
            "safe-user",
            &[
                r#"class B { void m() throws Exception { Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC"); } }"#,
            ],
        );
        let p3 = project(
            "digest-user",
            &[
                r#"class D { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
            ],
        );
        let projects = vec![p1, p2, p3];
        let checker = CryptoChecker::standard();
        let stats = checker.check_all(&projects);

        let r7 = stats.iter().find(|s| s.rule_id == "R7").unwrap();
        assert_eq!(r7.applicable, 2, "two projects use Cipher");
        assert_eq!(r7.matching, 1, "one uses ECB");

        let r1 = stats.iter().find(|s| s.rule_id == "R1").unwrap();
        assert_eq!(r1.applicable, 1);
        assert_eq!(r1.matching, 1);

        assert_eq!(checker.projects_with_any_violation(&projects), 2);
    }

    #[test]
    fn percentages() {
        let s = RuleStats {
            rule_id: "X".into(),
            description: String::new(),
            applicable: 50,
            matching: 25,
        };
        assert!((s.applicable_pct(100) - 50.0).abs() < 1e-9);
        assert!((s.matching_pct() - 50.0).abs() < 1e-9);
        let empty = RuleStats {
            rule_id: "Y".into(),
            description: String::new(),
            applicable: 0,
            matching: 0,
        };
        assert_eq!(empty.matching_pct(), 0.0);
    }

    #[test]
    fn violation_scoped_to_single_file_for_composites() {
        // RSA in one file, AES/CBC in another, Mac nowhere: per-file
        // evaluation means R13's positive clauses never co-occur.
        let split = project(
            "split",
            &[
                r#"class A { void m() throws Exception { Cipher c = Cipher.getInstance("RSA"); } }"#,
                r#"class B { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
            ],
        );
        let checker = CryptoChecker::standard();
        assert!(!checker.violations(&split).contains(&"R13".to_owned()));
    }

    #[test]
    fn project_scope_merges_files_for_composites() {
        let sources = [
            r#"class A { void m() throws Exception { Cipher c = Cipher.getInstance("RSA"); } }"#,
            r#"class B { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
        ];
        let split = project("split", &sources);
        let project_checker = CryptoChecker::standard().with_scope(CheckScope::Project);
        assert!(
            project_checker
                .violations(&split)
                .contains(&"R13".to_owned()),
            "the paper's project-level reading sees both ciphers"
        );

        // With a Mac in a third file, project scope clears R13.
        let with_mac = project(
            "with-mac",
            &[
                sources[0],
                sources[1],
                r#"class M { void m() throws Exception { Mac mac = Mac.getInstance("HmacSHA256"); } }"#,
            ],
        );
        assert!(!project_checker
            .violations(&with_mac)
            .contains(&"R13".to_owned()));
    }

    #[test]
    fn merged_usages_preserve_object_counts() {
        let api = ApiModel::standard();
        let a = analyze(
            &javalang::parse_compilation_unit(
                r#"class A { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
            )
            .unwrap(),
            &api,
        );
        let b = analyze(
            &javalang::parse_compilation_unit(
                r#"class B { void m() throws Exception { Cipher c = Cipher.getInstance("DES"); } }"#,
            )
            .unwrap(),
            &api,
        );
        let merged = analysis::Usages::merged([&a, &b]);
        assert_eq!(merged.objects_of_type("Cipher").count(), 2);
        let algos: Vec<String> = merged
            .objects_of_type("Cipher")
            .map(|s| merged.events_of(s)[0].args[0].label())
            .collect();
        assert!(algos.contains(&"AES".to_owned()));
        assert!(algos.contains(&"DES".to_owned()));
    }
}
