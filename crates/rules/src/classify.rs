//! Classifying code changes against an oracle rule (paper §6.2):
//! a change is a **security fix** if the rule triggers in the old
//! version but not the new one, a **buggy change** if it triggers only
//! in the new version, and **non-semantic** otherwise.

use crate::rule::{ProjectContext, Rule};
use analysis::Usages;

/// The classification of one code change against one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChangeClass {
    /// Rule triggered before, not after: the change fixed the issue.
    Fix,
    /// Rule triggers after, not before: the change introduced the issue.
    Bug,
    /// Rule triggers identically in both versions.
    NonSemantic,
}

impl ChangeClass {
    /// Short label used in the Figure 7 table.
    pub fn label(self) -> &'static str {
        match self {
            ChangeClass::Fix => "fix",
            ChangeClass::Bug => "bug",
            ChangeClass::NonSemantic => "none",
        }
    }
}

/// Classifies a (old, new) version pair against `rule`.
pub fn classify_change(
    rule: &Rule,
    old: &Usages,
    new: &Usages,
    ctx: &ProjectContext,
) -> ChangeClass {
    let before = rule.matches(old, ctx);
    let after = rule.matches(new, ctx);
    match (before, after) {
        (true, false) => ChangeClass::Fix,
        (false, true) => ChangeClass::Bug,
        _ => ChangeClass::NonSemantic,
    }
}

/// Classifies one paired usage change (old/new DAG of the same abstract
/// object) against `rule`, at the granularity of Figure 7: the rule's
/// positive clauses are evaluated on each DAG.
pub fn classify_dag_pair(
    rule: &Rule,
    old: &usagegraph::UsageDag,
    new: &usagegraph::UsageDag,
) -> ChangeClass {
    let triggers = |dag: &usagegraph::UsageDag| {
        rule.positive
            .iter()
            .all(|clause| crate::dagcheck::clause_triggers(clause, dag))
    };
    match (triggers(old), triggers(new)) {
        (true, false) => ChangeClass::Fix,
        (false, true) => ChangeClass::Bug,
        _ => ChangeClass::NonSemantic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::r7;
    use analysis::{analyze, ApiModel};

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    #[test]
    fn fix_bug_and_none() {
        let ecb = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
        );
        let cbc = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
        );
        let ctx = ProjectContext::plain();
        let rule = r7();
        assert_eq!(classify_change(&rule, &ecb, &cbc, &ctx), ChangeClass::Fix);
        assert_eq!(classify_change(&rule, &cbc, &ecb, &ctx), ChangeClass::Bug);
        assert_eq!(
            classify_change(&rule, &ecb, &ecb, &ctx),
            ChangeClass::NonSemantic
        );
        assert_eq!(
            classify_change(&rule, &cbc, &cbc, &ctx),
            ChangeClass::NonSemantic
        );
    }
}
