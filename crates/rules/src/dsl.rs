//! A textual rule language in the paper's Figure 9 notation.
//!
//! ```text
//! MessageDigest : getInstance(X) ∧ X=SHA-1
//! PBEKeySpec : <init>(_,_,X,_) ∧ X<1000
//! Cipher : getInstance(X) ∧ (X=AES ∨ X=AES/ECB)
//! (Cipher : getInstance(X) ∧ startsWith(X,AES/CBC))
//!   ∧ (Cipher : getInstance(Y) ∧ Y=RSA)
//!   ∧ ¬(Mac : getInstance(Z) ∧ startsWith(Z,Hmac))
//! ```
//!
//! ASCII spellings are accepted everywhere: `&&` for `∧`, `||` for
//! `∨`, `!` for `¬`, `!=` for `≠`, `>=` for `≥`, `T byte[]` as
//! `^byte[]` is not needed — `⊤byte[]` may be written `top`.
//!
//! The parsed formula is the **violation predicate**: a project matches
//! the rule when the formula holds. `X ≠ ⊤byte[]` follows the paper's
//! reading — "the argument is a *program constant*" (hard-coded key,
//! IV, salt, or seed).
//!
//! Supported shape (covers all 13 paper rules): a conjunction of
//! clauses; each clause is `[¬] Class : body` where the body is a
//! conjunction of method atoms (optionally negated), variable
//! constraints, `startsWith(Var, prefix)` atoms, and disjunctions of
//! constraints on one variable.

use crate::formula::{ArgConstraint, CallPred, Formula};
use crate::rule::{Applicability, ClassClause, ContextCond, Rule};
use std::error::Error;
use std::fmt;

/// An error produced while parsing a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRuleError {
    message: String,
}

impl ParseRuleError {
    fn new(message: impl Into<String>) -> Self {
        ParseRuleError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rule: {}", self.message)
    }
}

impl Error for ParseRuleError {}

/// Parses a rule in Figure 9 notation.
///
/// # Errors
///
/// Returns [`ParseRuleError`] when the text does not fit the supported
/// shape (see module docs).
///
/// # Example
///
/// ```
/// let rule = rules::dsl::parse_rule(
///     "RX",
///     "no SHA-1",
///     "MessageDigest : getInstance(X) \u{2227} X=SHA-1",
/// )?;
/// assert_eq!(rule.subject_class(), "MessageDigest");
/// # Ok::<(), rules::dsl::ParseRuleError>(())
/// ```
pub fn parse_rule(id: &str, description: &str, text: &str) -> Result<Rule, ParseRuleError> {
    let normalized = normalize(text);
    let clause_texts = split_top_level(&normalized)?;
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    let mut context = ContextCond::None;

    for clause_text in clause_texts {
        let (negated, body) = strip_negation(clause_text.trim());
        let body = strip_outer_parens(body.trim());
        let Some((class, formula_text)) = body.split_once(':') else {
            return Err(ParseRuleError::new(format!(
                "clause `{body}` has no `Class :` prefix"
            )));
        };
        let class = class.trim();
        if class.is_empty() || !class.chars().all(|c| c.is_alphanumeric()) {
            return Err(ParseRuleError::new(format!("bad class name `{class}`")));
        }
        let (formula, clause_context) = parse_clause_body(formula_text.trim())?;
        if clause_context == ContextCond::AndroidPrngVulnerable {
            context = ContextCond::AndroidPrngVulnerable;
        }
        let clause = ClassClause::new(class, formula);
        if negated {
            negative.push(clause);
        } else {
            positive.push(clause);
        }
    }

    if positive.is_empty() {
        return Err(ParseRuleError::new(
            "rule needs at least one positive clause",
        ));
    }
    let applicability = if positive.len() > 1 {
        Applicability::PositiveClausesMatch
    } else if context == ContextCond::AndroidPrngVulnerable {
        Applicability::ClassPresentWithContext(positive[0].class.clone())
    } else {
        Applicability::ClassPresent(positive[0].class.clone())
    };
    Ok(Rule {
        id: id.to_owned(),
        description: description.to_owned(),
        display: text.to_owned(),
        positive,
        negative,
        context,
        applicability,
        references: Vec::new(),
    })
}

fn normalize(text: &str) -> String {
    text.replace("&&", "\u{2227}")
        .replace("||", "\u{2228}")
        .replace("!=", "\u{2260}")
        .replace(">=", "\u{2265}")
        .replace("<=", "\u{2264}")
        .replace('!', "\u{00ac}")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Splits a conjunction at top-level `∧` (not inside parentheses).
/// Only splits between clauses when more than one `Class :` clause is
/// present; a single un-parenthesized clause stays whole.
fn split_top_level(text: &str) -> Result<Vec<String>, ParseRuleError> {
    // If the text starts with `(` or `¬(`, it is a multi-clause rule.
    let trimmed = text.trim();
    let multi = trimmed.starts_with('(') || trimmed.starts_with('\u{00ac}');
    if !multi {
        return Ok(vec![trimmed.to_owned()]);
    }
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in trimmed.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| ParseRuleError::new("unbalanced `)`"))?;
                current.push(c);
            }
            '\u{2227}' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if depth != 0 {
        return Err(ParseRuleError::new("unbalanced `(`"));
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    Ok(parts)
}

fn strip_negation(text: &str) -> (bool, &str) {
    match text.strip_prefix('\u{00ac}') {
        Some(rest) => (true, rest.trim_start()),
        None => (false, text),
    }
}

fn strip_outer_parens(text: &str) -> &str {
    let t = text.trim();
    if !t.starts_with('(') || !t.ends_with(')') {
        return t;
    }
    // Only strip if the parens match each other.
    let inner = &t[1..t.len() - 1];
    let mut depth = 0i64;
    for c in inner.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return t;
                }
            }
            _ => {}
        }
    }
    inner.trim()
}

/// One parsed conjunct of a clause body.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    /// `getInstance(X,_)` or `getInstanceStrong` — a (possibly negated)
    /// call atom with variable/placeholder parameters.
    Call {
        negated: bool,
        name: String,
        params: Vec<Option<char>>,
    },
    /// `X=SHA-1`, `X<1000`, `startsWith(X,AES/CBC)`, …
    Constraint {
        var: char,
        constraint: ArgConstraint,
    },
    /// `(X=AES ∨ X=AES/ECB)` — all disjuncts on the same variable.
    OrConstraints {
        var: char,
        constraints: Vec<ArgConstraint>,
    },
    /// `¬LPRNG` / `MIN_SDK_VERSION≥16` — project context.
    Context,
}

fn parse_clause_body(text: &str) -> Result<(Formula, ContextCond), ParseRuleError> {
    let conjuncts = split_conjunction(text)?;
    let mut items = Vec::new();
    let mut context_items = 0usize;
    for conjunct in &conjuncts {
        let item = parse_item(conjunct.trim())?;
        if item == Item::Context {
            context_items += 1;
        }
        items.push(item);
    }
    let context = if context_items > 0 {
        ContextCond::AndroidPrngVulnerable
    } else {
        ContextCond::None
    };

    // Bind variables to (call index, 1-based position).
    let calls: Vec<(usize, &Item)> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| matches!(it, Item::Call { .. }))
        .collect();
    if calls.is_empty() {
        return Err(ParseRuleError::new(format!(
            "clause `{text}` has no method atom"
        )));
    }
    let mut var_slot: Vec<(char, usize, usize)> = Vec::new(); // (var, call idx, pos)
    for (idx, item) in &calls {
        if let Item::Call { params, .. } = item {
            for (pos, p) in params.iter().enumerate() {
                if let Some(var) = p {
                    var_slot.push((*var, *idx, pos + 1));
                }
            }
        }
    }
    let slot_of = |var: char| -> Result<(usize, usize), ParseRuleError> {
        var_slot
            .iter()
            .find(|(v, _, _)| *v == var)
            .map(|(_, i, p)| (*i, *p))
            .ok_or_else(|| {
                ParseRuleError::new(format!("variable `{var}` is not bound by any call"))
            })
    };

    // Attach plain constraints to their calls.
    let mut call_args: Vec<Vec<(usize, ArgConstraint)>> = vec![Vec::new(); items.len()];
    let mut or_groups: Vec<(usize, usize, Vec<ArgConstraint>)> = Vec::new();
    for item in &items {
        match item {
            Item::Constraint { var, constraint } => {
                let (call_idx, pos) = slot_of(*var)?;
                call_args[call_idx].push((pos, constraint.clone()));
            }
            Item::OrConstraints { var, constraints } => {
                let (call_idx, pos) = slot_of(*var)?;
                or_groups.push((call_idx, pos, constraints.clone()));
            }
            _ => {}
        }
    }

    // Build the formula: one Exists/NotExists per call; a call with an
    // or-group becomes a disjunction of its variants.
    let mut parts = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let Item::Call {
            negated,
            name,
            params,
        } = item
        else {
            continue;
        };
        let base = CallPred {
            methods: vec![name.clone()],
            args: call_args[idx]
                .iter()
                .map(|(pos, c)| (*pos, c.clone()))
                .collect(),
        };
        let _ = params;
        let groups: Vec<&(usize, usize, Vec<ArgConstraint>)> =
            or_groups.iter().filter(|(ci, _, _)| *ci == idx).collect();
        let positive_formula = if groups.is_empty() {
            Formula::Exists(base.clone())
        } else {
            // Cartesian expansion over or-groups (in practice one).
            let mut variants: Vec<CallPred> = vec![base.clone()];
            for (_, pos, constraints) in groups {
                let mut next = Vec::new();
                for variant in &variants {
                    for constraint in constraints {
                        let mut v = variant.clone();
                        v.args.push((*pos, constraint.clone()));
                        next.push(v);
                    }
                }
                variants = next;
            }
            Formula::Or(variants.into_iter().map(Formula::Exists).collect())
        };
        parts.push(if *negated {
            match positive_formula {
                Formula::Exists(p) => Formula::NotExists(p),
                other => Formula::And(vec![]).clone_not(other),
            }
        } else {
            positive_formula
        });
    }
    let formula = if parts.len() == 1 {
        parts.pop().expect("one part")
    } else {
        Formula::And(parts)
    };
    Ok((formula, context))
}

/// Helper to negate a non-atomic formula (rare path).
trait CloneNot {
    fn clone_not(&self, f: Formula) -> Formula;
}

impl CloneNot for Formula {
    fn clone_not(&self, f: Formula) -> Formula {
        match f {
            Formula::Exists(p) => Formula::NotExists(p),
            Formula::NotExists(p) => Formula::Exists(p),
            Formula::Or(fs) => Formula::And(fs.into_iter().map(|x| self.clone_not(x)).collect()),
            Formula::And(fs) => Formula::Or(fs.into_iter().map(|x| self.clone_not(x)).collect()),
        }
    }
}

/// Splits a clause body at `∧` outside parentheses.
fn split_conjunction(text: &str) -> Result<Vec<String>, ParseRuleError> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| ParseRuleError::new("unbalanced `)`"))?;
                current.push(c);
            }
            '\u{2227}' if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if depth != 0 {
        return Err(ParseRuleError::new("unbalanced `(`"));
    }
    parts.push(current);
    Ok(parts)
}

fn parse_item(text: &str) -> Result<Item, ParseRuleError> {
    let (negated, body) = strip_negation(text);
    let body = body.trim();

    // Context atoms.
    if body == "LPRNG" || body == "HAS_LPRNG" {
        return Ok(Item::Context);
    }
    if body.starts_with("MIN_SDK_VERSION") {
        return Ok(Item::Context);
    }

    // `startsWith(X,prefix)`.
    if let Some(rest) = body.strip_prefix("startsWith(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| ParseRuleError::new("unterminated startsWith"))?;
        let (var, prefix) = inner
            .split_once(',')
            .ok_or_else(|| ParseRuleError::new("startsWith needs two arguments"))?;
        let var = parse_var(var.trim())?;
        if negated {
            return Err(ParseRuleError::new("negated startsWith is not supported"));
        }
        return Ok(Item::Constraint {
            var,
            constraint: ArgConstraint::StartsWith(prefix.trim().to_owned()),
        });
    }

    // Parenthesized disjunction of constraints.
    if body.starts_with('(') && body.ends_with(')') {
        let inner = &body[1..body.len() - 1];
        let disjuncts: Vec<&str> = inner.split('\u{2228}').collect();
        if disjuncts.len() < 2 {
            return Err(ParseRuleError::new(format!(
                "parenthesized group `{body}` is not a disjunction"
            )));
        }
        let mut var = None;
        let mut constraints = Vec::new();
        for d in disjuncts {
            let Item::Constraint { var: v, constraint } = parse_item(d.trim())? else {
                return Err(ParseRuleError::new(
                    "disjunctions may only contain variable constraints",
                ));
            };
            if *var.get_or_insert(v) != v {
                return Err(ParseRuleError::new(
                    "disjuncts must constrain the same variable",
                ));
            }
            constraints.push(constraint);
        }
        return Ok(Item::OrConstraints {
            var: var.expect("nonempty"),
            constraints,
        });
    }

    // Variable constraint `X=…` / `X≠…` / `X<…` / `X≥…`.
    for (op, make) in CONSTRAINT_OPS {
        if let Some((lhs, rhs)) = body.split_once(*op) {
            let lhs = lhs.trim();
            if lhs.len() == 1 {
                let var = parse_var(lhs)?;
                return Ok(Item::Constraint {
                    var,
                    constraint: make(rhs.trim())?,
                });
            }
        }
    }

    // Method atom `name(params)` or bare `name`.
    let (name, params) = match body.split_once('(') {
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseRuleError::new(format!("unterminated call `{body}`")))?;
            let params = if inner.trim().is_empty() {
                Vec::new()
            } else {
                inner
                    .split(',')
                    .map(|p| {
                        let p = p.trim();
                        if p == "_" {
                            Ok(None)
                        } else {
                            parse_var(p).map(Some)
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            (name.trim(), params)
        }
        None => (body, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '<' || c == '>' || c == '_')
    {
        return Err(ParseRuleError::new(format!("bad method name `{name}`")));
    }
    Ok(Item::Call {
        negated,
        name: name.to_owned(),
        params,
    })
}

type ConstraintBuilder = fn(&str) -> Result<ArgConstraint, ParseRuleError>;

const CONSTRAINT_OPS: &[(&str, ConstraintBuilder)] = &[
    ("\u{2260}", |rhs| {
        if rhs == "\u{22a4}byte[]" || rhs.eq_ignore_ascii_case("top") {
            // `X ≠ ⊤byte[]`: the argument is a program constant.
            Ok(ArgConstraint::ConstData)
        } else {
            Ok(ArgConstraint::NotInStrs(vec![rhs.to_owned()]))
        }
    }),
    ("\u{2265}", |rhs| {
        rhs.parse()
            .map(ArgConstraint::IntGe)
            .map_err(|_| ParseRuleError::new(format!("`≥` needs an integer, got `{rhs}`")))
    }),
    ("<", |rhs| {
        rhs.parse()
            .map(ArgConstraint::IntLt)
            .map_err(|_| ParseRuleError::new(format!("`<` needs an integer, got `{rhs}`")))
    }),
    ("=", |rhs| {
        Ok(match rhs.parse::<i64>() {
            Ok(n) => ArgConstraint::EqInt(n),
            Err(_) => ArgConstraint::EqStr(rhs.to_owned()),
        })
    }),
];

fn parse_var(text: &str) -> Result<char, ParseRuleError> {
    let mut chars = text.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if c.is_ascii_uppercase() => Ok(c),
        _ => Err(ParseRuleError::new(format!(
            "expected a variable (single uppercase letter), got `{text}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::ProjectContext;
    use analysis::{analyze, ApiModel, Usages};

    fn usages(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).unwrap();
        analyze(&unit, &ApiModel::standard())
    }

    fn plain() -> ProjectContext {
        ProjectContext::plain()
    }

    #[test]
    fn parses_all_thirteen_paper_displays() {
        for rule in crate::builtin::all_rules() {
            let parsed = parse_rule(&rule.id, &rule.description, &rule.display);
            assert!(parsed.is_ok(), "{}: {:?}", rule.id, parsed.err());
        }
    }

    #[test]
    fn r1_semantics_via_dsl() {
        let rule = parse_rule(
            "R1",
            "no SHA-1",
            "MessageDigest : getInstance(X) \u{2227} X=SHA-1",
        )
        .unwrap();
        let bad = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
        );
        let good = usages(
            r#"class C { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-256"); } }"#,
        );
        assert!(rule.matches(&bad, &plain()));
        assert!(!rule.matches(&good, &plain()));
    }

    #[test]
    fn ascii_spellings_accepted() {
        let rule = parse_rule("RX", "ascii", "PBEKeySpec : <init>(_,_,X,_) && X<1000").unwrap();
        let bad = usages(
            r#"class C { void m(char[] p, byte[] s) { PBEKeySpec k = new PBEKeySpec(p, s, 100, 256); } }"#,
        );
        assert!(rule.matches(&bad, &plain()));
    }

    #[test]
    fn disjunction_expands() {
        let rule = parse_rule(
            "R7",
            "no ecb",
            "Cipher : getInstance(X) \u{2227} (X=AES \u{2228} X=AES/ECB/PKCS5Padding)",
        )
        .unwrap();
        let default_aes = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
        );
        let explicit = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding"); } }"#,
        );
        let cbc = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding"); } }"#,
        );
        assert!(rule.matches(&default_aes, &plain()));
        assert!(rule.matches(&explicit, &plain()));
        assert!(!rule.matches(&cbc, &plain()));
    }

    #[test]
    fn top_byte_array_means_constant() {
        let rule = parse_rule(
            "R9",
            "no static IV",
            "IvParameterSpec : <init>(X) \u{2227} X\u{2260}\u{22a4}byte[]",
        )
        .unwrap();
        let bad = usages(
            r#"class C { void m() { IvParameterSpec s = new IvParameterSpec(new byte[16]); } }"#,
        );
        let good = usages(
            r#"class C { void m(byte[] iv) { IvParameterSpec s = new IvParameterSpec(iv); } }"#,
        );
        assert!(rule.matches(&bad, &plain()));
        assert!(!rule.matches(&good, &plain()));
    }

    #[test]
    fn composite_rule_with_negated_clause() {
        let rule = parse_rule(
            "R13",
            "missing mac",
            "(Cipher : getInstance(X) \u{2227} startsWith(X,AES/CBC)) \u{2227} \
             (Cipher : getInstance(Y) \u{2227} Y=RSA) \u{2227} \
             \u{00ac}(Mac : getInstance(Z) \u{2227} startsWith(Z,Hmac))",
        )
        .unwrap();
        assert_eq!(rule.positive.len(), 2);
        assert_eq!(rule.negative.len(), 1);
        assert_eq!(rule.applicability, Applicability::PositiveClausesMatch);

        let bad = usages(
            r#"
            class C {
                void m() throws Exception {
                    Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
                    Cipher b = Cipher.getInstance("RSA");
                }
            }
            "#,
        );
        let good = usages(
            r#"
            class C {
                void m() throws Exception {
                    Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
                    Cipher b = Cipher.getInstance("RSA");
                    Mac m = Mac.getInstance("HmacSHA256");
                }
            }
            "#,
        );
        assert!(rule.matches(&bad, &plain()));
        assert!(!rule.matches(&good, &plain()));
    }

    #[test]
    fn android_context_detected() {
        let rule = parse_rule(
            "R6",
            "android prng",
            "SecureRandom : <init>(_) \u{2227} \u{00ac}LPRNG \u{2227} MIN_SDK_VERSION\u{2265}16",
        )
        .unwrap();
        assert_eq!(rule.context, ContextCond::AndroidPrngVulnerable);
        let u = usages(r#"class C { void m() { SecureRandom r = new SecureRandom(); } }"#);
        assert!(!rule.matches(&u, &plain()));
        assert!(rule.matches(&u, &ProjectContext::android(17)));
    }

    #[test]
    fn negated_method_atom() {
        let rule = parse_rule(
            "RX",
            "must call init",
            "Cipher : getInstance(_) \u{2227} \u{00ac}init",
        )
        .unwrap();
        let uninitialized = usages(
            r#"class C { void m() throws Exception { Cipher c = Cipher.getInstance("AES"); } }"#,
        );
        let initialized = usages(
            r#"class C { void m(Key k) throws Exception { Cipher c = Cipher.getInstance("AES"); c.init(Cipher.ENCRYPT_MODE, k); } }"#,
        );
        assert!(rule.matches(&uninitialized, &plain()));
        assert!(!rule.matches(&initialized, &plain()));
    }

    #[test]
    fn error_cases() {
        assert!(parse_rule("E", "", "no colon here").is_err());
        assert!(
            parse_rule("E", "", "Cipher : X=AES").is_err(),
            "unbound variable"
        );
        assert!(parse_rule("E", "", "Cipher : getInstance(X").is_err());
        assert!(
            parse_rule("E", "", "\u{00ac}(Cipher : getInstance(_))").is_err(),
            "needs a positive clause"
        );
        assert!(parse_rule("E", "", "Cipher : getInstance(X) \u{2227} Y=Z").is_err());
        assert!(parse_rule("E", "", "PBEKeySpec : <init>(_,_,X,_) \u{2227} X<abc").is_err());
    }

    #[test]
    fn parsed_equivalents_agree_with_builtins() {
        // For rules whose Figure 9 display *is* the violation formula,
        // the DSL-parsed rule must agree with the hand-built one.
        let programs = [
            r#"class A { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-1"); } }"#,
            r#"class B { void m() throws Exception { MessageDigest d = MessageDigest.getInstance("SHA-256"); } }"#,
            r#"class C { void m(char[] p, byte[] s) { PBEKeySpec k = new PBEKeySpec(p, s, 999, 128); } }"#,
            r#"class D { void m(char[] p) { byte[] s = { 1 }; PBEKeySpec k = new PBEKeySpec(p, s, 4096, 128); } }"#,
            r#"class E { void m() { byte[] iv = new byte[16]; IvParameterSpec s = new IvParameterSpec(iv); } }"#,
            r#"class F { void m() { SecureRandom r = new SecureRandom(); byte[] x = { 1 }; r.setSeed(x); } }"#,
        ];
        let equivalent = ["R1", "R2", "R9", "R10", "R11", "R12"];
        for builtin in crate::builtin::all_rules() {
            if !equivalent.contains(&builtin.id.as_str()) {
                continue;
            }
            let parsed = parse_rule(&builtin.id, &builtin.description, &builtin.display).unwrap();
            for src in &programs {
                let u = usages(src);
                assert_eq!(
                    parsed.matches(&u, &plain()),
                    builtin.matches(&u, &plain()),
                    "{} disagrees on {src}",
                    builtin.id
                );
            }
        }
    }
}
