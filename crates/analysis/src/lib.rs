//! Lightweight AST-based static analysis deriving abstract crypto-API
//! usages from (partial) Java programs — DiffCode's §5.1 analyzer.
//!
//! The analyzer computes, for each allocation site of a tracked API
//! class, the set of [`UsageEvent`]s observed on the abstract object:
//! the constructor/factory call that created it, the methods invoked on
//! it, and the methods of *other* classes it was passed to.
//!
//! # Example
//!
//! ```
//! use analysis::{analyze, ApiModel};
//!
//! let unit = javalang::parse_compilation_unit(
//!     r#"
//!     class KeyUtil {
//!         javax.crypto.SecretKey load() throws Exception {
//!             javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES");
//!             return null;
//!         }
//!     }
//!     "#,
//! )?;
//! let usages = analyze(&unit, &ApiModel::standard());
//! let ciphers: Vec<_> = usages.objects_of_type("Cipher").collect();
//! assert_eq!(ciphers.len(), 1);
//! assert_eq!(usages.events_of(ciphers[0]).len(), 1);
//! # Ok::<(), javalang::ParseError>(())
//! ```

#![warn(missing_docs)]

mod analyzer;
mod api;
mod limits;

pub use analyzer::{analysis_steps, analyze, try_analyze, try_analyze_counted, UsageEvent, Usages};
pub use api::{
    looks_like_class_name, looks_like_const_name, ApiModel, TARGET_CLASSES, TRACKED_CLASSES,
};
pub use limits::{AnalysisError, AnalysisLimits};

#[cfg(test)]
mod tests {
    use super::*;
    use absdomain::AValue;

    fn usages_of(src: &str) -> Usages {
        let unit = javalang::parse_compilation_unit(src).expect("parse");
        analyze(&unit, &ApiModel::standard())
    }

    /// The paper's Figure 2 example, new version.
    const FIGURE2_NEW: &str = r#"
        class AESCipher {
            Cipher enc, dec;
            final String algorithm = "AES/CBC/PKCS5Padding";
            protected void setKeyAndIV(Secret key, String iv) {
                byte[] ivBytes;
                IvParameterSpec ivSpec;
                try {
                    ivBytes = Hex.decodeHex(iv.toCharArray());
                    ivSpec = new IvParameterSpec(ivBytes);
                    enc = Cipher.getInstance(algorithm);
                    enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
                    dec = Cipher.getInstance(algorithm);
                    dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
                } catch (Exception e) { }
            }
        }
    "#;

    #[test]
    fn figure2_two_cipher_objects() {
        let usages = usages_of(FIGURE2_NEW);
        let ciphers: Vec<_> = usages.objects_of_type("Cipher").collect();
        assert_eq!(ciphers.len(), 2, "one abstract object per getInstance site");
        let ivs: Vec<_> = usages.objects_of_type("IvParameterSpec").collect();
        assert_eq!(ivs.len(), 1);
    }

    #[test]
    fn figure2_enc_usage_events() {
        let usages = usages_of(FIGURE2_NEW);
        let enc = usages.objects_of_type("Cipher").next().unwrap();
        let events = usages.events_of(enc);
        assert_eq!(events.len(), 2, "getInstance + init: {events:?}");

        let get_instance = &events[0];
        assert_eq!(&*get_instance.method.name, "getInstance");
        assert_eq!(
            get_instance.args,
            vec![AValue::Str("AES/CBC/PKCS5Padding".into())],
            "field constant must flow into the factory call"
        );

        let init = &events[1];
        assert_eq!(&*init.method.name, "init");
        assert_eq!(init.args.len(), 3);
        assert_eq!(
            init.args[0],
            AValue::ApiConst {
                class: "Cipher".into(),
                name: "ENCRYPT_MODE".into()
            }
        );
        assert_eq!(
            init.args[1],
            AValue::TopObj {
                ty: Some("Secret".into())
            }
        );
        assert!(matches!(init.args[2], AValue::Obj { ref ty, .. } if &**ty == "IvParameterSpec"));
    }

    #[test]
    fn figure2_iv_spec_has_ctor_and_foreign_init() {
        let usages = usages_of(FIGURE2_NEW);
        let iv = usages.objects_of_type("IvParameterSpec").next().unwrap();
        let events = usages.events_of(iv);
        // <init>(⊤byte[]), Cipher.init (from enc), Cipher.init (from dec —
        // deduplicated because the abstract args are identical except the
        // mode constant).
        assert!(events.iter().any(|e| e.method.is_ctor()));
        let ctor = events.iter().find(|e| e.method.is_ctor()).unwrap();
        assert_eq!(
            ctor.args,
            vec![AValue::TopByteArray],
            "IV bytes derive from a parameter, hence ⊤byte[]"
        );
        assert!(
            events
                .iter()
                .any(|e| &*e.method.name == "init" && &*e.method.class == "Cipher"),
            "passing the spec to Cipher.init is a usage of the spec: {events:?}"
        );
    }

    #[test]
    fn static_byte_array_is_const() {
        let usages = usages_of(
            r#"
            class C {
                void m(Key key) throws Exception {
                    byte[] iv = { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15 };
                    IvParameterSpec spec = new IvParameterSpec(iv);
                }
            }
            "#,
        );
        let iv = usages.objects_of_type("IvParameterSpec").next().unwrap();
        let ctor = &usages.events_of(iv)[0];
        assert_eq!(ctor.args, vec![AValue::ConstByteArray]);
    }

    #[test]
    fn new_byte_array_without_randomization_is_const() {
        let usages = usages_of(
            r#"
            class C {
                void m() {
                    byte[] iv = new byte[16];
                    IvParameterSpec spec = new IvParameterSpec(iv);
                }
            }
            "#,
        );
        let iv = usages.objects_of_type("IvParameterSpec").next().unwrap();
        assert_eq!(usages.events_of(iv)[0].args, vec![AValue::ConstByteArray]);
    }

    #[test]
    fn next_bytes_havocs_the_array() {
        let usages = usages_of(
            r#"
            class C {
                void m() throws Exception {
                    byte[] iv = new byte[16];
                    SecureRandom random = new SecureRandom();
                    random.nextBytes(iv);
                    IvParameterSpec spec = new IvParameterSpec(iv);
                }
            }
            "#,
        );
        let iv = usages.objects_of_type("IvParameterSpec").next().unwrap();
        assert_eq!(
            usages.events_of(iv)[0].args,
            vec![AValue::TopByteArray],
            "randomized IV must not look constant"
        );
    }

    #[test]
    fn branches_fork_and_join() {
        let usages = usages_of(
            r#"
            class C {
                void m(boolean strong) throws Exception {
                    String algo;
                    if (strong) { algo = "SHA-256"; } else { algo = "SHA-1"; }
                    MessageDigest d = MessageDigest.getInstance(algo);
                    MessageDigest fixed = MessageDigest.getInstance("MD5");
                }
            }
            "#,
        );
        let digests: Vec<_> = usages.objects_of_type("MessageDigest").collect();
        assert_eq!(digests.len(), 2);
        assert_eq!(
            usages.events_of(digests[0])[0].args,
            vec![AValue::TopStr],
            "joined branches give ⊤str"
        );
        assert_eq!(
            usages.events_of(digests[1])[0].args,
            vec![AValue::Str("MD5".into())]
        );
    }

    #[test]
    fn helper_methods_are_inlined() {
        let usages = usages_of(
            r#"
            class C {
                Cipher create(String algo) throws Exception {
                    return Cipher.getInstance(algo);
                }
                void use(Key key) throws Exception {
                    Cipher c = create("DES");
                    c.init(Cipher.ENCRYPT_MODE, key);
                }
            }
            "#,
        );
        let ciphers: Vec<_> = usages.objects_of_type("Cipher").collect();
        assert_eq!(ciphers.len(), 1, "one allocation site inside the helper");
        let events = usages.events_of(ciphers[0]);
        assert!(
            events
                .iter()
                .any(|e| &*e.method.name == "getInstance"
                    && e.args == vec![AValue::Str("DES".into())]),
            "constant must flow through the inlined helper: {events:?}"
        );
        assert!(events.iter().any(|e| &*e.method.name == "init"));
    }

    #[test]
    fn recursion_terminates() {
        let usages = usages_of(
            r#"
            class C {
                void a(int n) { b(n); }
                void b(int n) { a(n); }
            }
            "#,
        );
        assert!(usages.objects.is_empty());
    }

    #[test]
    fn string_concat_folds() {
        let usages = usages_of(
            r#"
            class C {
                void m() throws Exception {
                    String mode = "CBC";
                    Cipher c = Cipher.getInstance("AES/" + mode + "/PKCS5Padding");
                }
            }
            "#,
        );
        let cipher = usages.objects_of_type("Cipher").next().unwrap();
        assert_eq!(
            usages.events_of(cipher)[0].args,
            vec![AValue::Str("AES/CBC/PKCS5Padding".into())]
        );
    }

    #[test]
    fn secure_random_set_seed_constant_detected() {
        let usages = usages_of(
            r#"
            class C {
                void m() {
                    SecureRandom r = new SecureRandom();
                    byte[] seed = { 1, 2, 3 };
                    r.setSeed(seed);
                }
            }
            "#,
        );
        let rng = usages.objects_of_type("SecureRandom").next().unwrap();
        let events = usages.events_of(rng);
        let set_seed = events
            .iter()
            .find(|e| &*e.method.name == "setSeed")
            .unwrap();
        assert_eq!(set_seed.args, vec![AValue::ConstByteArray]);
    }

    #[test]
    fn pbe_key_spec_iterations_tracked() {
        let usages = usages_of(
            r#"
            class C {
                void m(char[] password) {
                    byte[] salt = new byte[8];
                    PBEKeySpec spec = new PBEKeySpec(password, salt, 100, 256);
                }
            }
            "#,
        );
        let spec = usages.objects_of_type("PBEKeySpec").next().unwrap();
        let ctor = &usages.events_of(spec)[0];
        assert_eq!(ctor.args.len(), 4);
        assert_eq!(ctor.args[2], AValue::Int(100));
    }

    #[test]
    fn loops_analyze_body_once() {
        let usages = usages_of(
            r#"
            class C {
                void m() throws Exception {
                    for (int i = 0; i < 10; i++) {
                        MessageDigest d = MessageDigest.getInstance("SHA-256");
                    }
                }
            }
            "#,
        );
        assert_eq!(usages.objects_of_type("MessageDigest").count(), 1);
    }

    #[test]
    fn untracked_classes_get_sites_but_no_target_objects() {
        let usages =
            usages_of(r#"class C { void m() { StringBuilder sb = new StringBuilder(); } }"#);
        // Every allocation site is an abstract object (heap abstraction)…
        assert_eq!(usages.objects_of_type("StringBuilder").count(), 1);
        // …but no target-class objects exist.
        for class in crate::TARGET_CLASSES {
            assert_eq!(usages.objects_of_type(class).count(), 0);
        }
    }

    #[test]
    fn heap_tracks_fields_of_user_objects() {
        let usages = usages_of(
            r#"
            class Config {
                void m() throws Exception {
                    Settings settings = new Settings();
                    settings.algo = "SHA-256";
                    MessageDigest d = MessageDigest.getInstance(settings.algo);
                }
            }
            "#,
        );
        let digest = usages.objects_of_type("MessageDigest").next().unwrap();
        assert_eq!(
            usages.events_of(digest)[0].args,
            vec![AValue::Str("SHA-256".into())],
            "constant must flow through the object field"
        );
    }

    #[test]
    fn heap_joins_across_branches() {
        let usages = usages_of(
            r#"
            class Config {
                void m(boolean strong) throws Exception {
                    Settings settings = new Settings();
                    if (strong) { settings.algo = "SHA-256"; }
                    else { settings.algo = "SHA-1"; }
                    MessageDigest d = MessageDigest.getInstance(settings.algo);
                }
            }
            "#,
        );
        let digest = usages.objects_of_type("MessageDigest").next().unwrap();
        assert_eq!(usages.events_of(digest)[0].args, vec![AValue::TopStr]);
    }

    #[test]
    fn heap_chained_field_reads() {
        let usages = usages_of(
            r#"
            class Config {
                void m() throws Exception {
                    Outer outer = new Outer();
                    outer.inner = new Inner();
                    outer.inner.algo = "MD5";
                    MessageDigest d = MessageDigest.getInstance(outer.inner.algo);
                }
            }
            "#,
        );
        let digest = usages.objects_of_type("MessageDigest").next().unwrap();
        assert_eq!(
            usages.events_of(digest)[0].args,
            vec![AValue::Str("MD5".into())]
        );
    }

    #[test]
    fn step_budget_boundary_is_exact() {
        let unit = javalang::parse_compilation_unit(FIXTURE).expect("parse");
        let api = ApiModel::standard();
        let steps = analysis_steps(&unit, &api);
        assert!(steps > 0);

        let exact = AnalysisLimits {
            max_steps: steps,
            ..AnalysisLimits::DEFAULT
        };
        let ok = try_analyze(&unit, &api, &exact).expect("exact budget suffices");
        assert_eq!(
            ok,
            analyze(&unit, &api),
            "budgeted result matches unbudgeted"
        );

        let short = AnalysisLimits {
            max_steps: steps - 1,
            ..AnalysisLimits::DEFAULT
        };
        assert_eq!(
            try_analyze(&unit, &api, &short),
            Err(AnalysisError::StepBudgetExceeded {
                max_steps: steps - 1
            })
        );
    }

    const FIXTURE: &str = r#"
        class C {
            void m(boolean strong) throws Exception {
                String algo;
                if (strong) { algo = "SHA-256"; } else { algo = "SHA-1"; }
                MessageDigest d = MessageDigest.getInstance(algo);
            }
        }
    "#;

    #[test]
    fn ast_depth_limit_rejects_deep_trees() {
        let unit = javalang::parse_compilation_unit(FIXTURE).expect("parse");
        let api = ApiModel::standard();
        let depth = javalang::visit::ast_depth(&unit);
        let tight = AnalysisLimits {
            max_ast_depth: depth - 1,
            ..AnalysisLimits::DEFAULT
        };
        assert_eq!(
            try_analyze(&unit, &api, &tight),
            Err(AnalysisError::AstTooDeep {
                depth,
                max_depth: depth - 1
            })
        );
        let loose = AnalysisLimits {
            max_ast_depth: depth,
            ..AnalysisLimits::DEFAULT
        };
        assert!(try_analyze(&unit, &api, &loose).is_ok());
    }

    #[test]
    fn default_budget_handles_real_sources() {
        let unit = javalang::parse_compilation_unit(FIGURE2_NEW).expect("parse");
        let api = ApiModel::standard();
        let usages = try_analyze(&unit, &api, &AnalysisLimits::DEFAULT).expect("figure 2 is tiny");
        assert_eq!(usages, analyze(&unit, &api));
    }

    #[test]
    fn events_deduplicate_identical_usages() {
        let usages = usages_of(
            r#"
            class C {
                void m() throws Exception {
                    MessageDigest d = MessageDigest.getInstance("SHA-256");
                    d.reset();
                    d.reset();
                }
            }
            "#,
        );
        let d = usages.objects_of_type("MessageDigest").next().unwrap();
        let resets = usages
            .events_of(d)
            .iter()
            .filter(|e| &*e.method.name == "reset")
            .count();
        assert_eq!(resets, 1);
    }
}
