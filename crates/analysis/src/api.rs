//! A model of the Java Crypto API (and the few JDK helpers that matter
//! for tracking how constants flow into it).

use absdomain::{AValue, ValueKind};

/// The six target API classes of the paper's case study (Figure 5).
pub const TARGET_CLASSES: [&str; 6] = [
    "Cipher",
    "IvParameterSpec",
    "MessageDigest",
    "SecretKeySpec",
    "SecureRandom",
    "PBEKeySpec",
];

/// Crypto-API classes the analyzer tracks allocation sites for, beyond
/// the six targets (they appear as arguments/peers in usages and in
/// composite rules such as R13).
pub const TRACKED_CLASSES: [&str; 14] = [
    "Cipher",
    "IvParameterSpec",
    "MessageDigest",
    "SecretKeySpec",
    "SecureRandom",
    "PBEKeySpec",
    "Mac",
    "KeyGenerator",
    "KeyPairGenerator",
    "SecretKeyFactory",
    "KeyFactory",
    "Signature",
    "KeyStore",
    "GCMParameterSpec",
];

/// Static knowledge about the APIs the analyzer models.
#[derive(Debug, Clone, Default)]
pub struct ApiModel {
    _private: (),
}

impl ApiModel {
    /// The standard model used throughout the reproduction.
    pub fn standard() -> Self {
        ApiModel::default()
    }

    /// `true` if allocation sites of `class` should become abstract
    /// objects with tracked usage.
    pub fn is_tracked_class(&self, class: &str) -> bool {
        TRACKED_CLASSES.contains(&class)
    }

    /// `true` if the *static* call `class.method(..)` is a factory that
    /// returns an instance of `class`. The JCA convention is uniform:
    /// every engine class exposes `getInstance` overloads.
    pub fn is_factory(&self, class: &str, method: &str) -> bool {
        looks_like_class_name(class) && (method == "getInstance" || method == "getInstanceStrong")
    }

    /// The abstract result of calling `method` with `args`, for the few
    /// byte/char-array producers whose constness we propagate
    /// (`"iv".toCharArray()` is a constant array; `password.getBytes()`
    /// on an unknown string is `⊤byte[]`).
    pub fn eval_known_call(
        &self,
        method: &str,
        receiver: Option<&AValue>,
        args: &[AValue],
    ) -> Option<AValue> {
        match method {
            // char[]/byte[] producers that preserve constness. The
            // constness scan only runs once a producer matched — most
            // calls fall through to `None` on the name alone.
            "toCharArray" | "getBytes" | "decodeHex" | "decode" | "parseHexBinary" | "copyOf"
            | "copyOfRange" | "clone" => {
                let const_inputs = receiver.into_iter().chain(args.iter()).all(|v| {
                    matches!(
                        v.kind(),
                        ValueKind::Str | ValueKind::Int | ValueKind::Byte | ValueKind::ByteArray
                    ) && !v.is_top()
                });
                Some(if const_inputs {
                    AValue::ConstByteArray
                } else {
                    AValue::TopByteArray
                })
            }
            // Inherently data-dependent producers.
            "digest" | "doFinal" | "update" | "generateSeed" | "getEncoded" | "generateKey"
            | "generateSecret" | "sign" | "wrap" | "unwrap" => Some(AValue::TopByteArray),
            _ => None,
        }
    }

    /// `true` if calling `method` havocs the array passed to it (e.g.
    /// `SecureRandom.nextBytes(iv)` turns a zero-initialized constant
    /// array into runtime data).
    pub fn is_array_havoc(&self, method: &str) -> bool {
        matches!(method, "nextBytes" | "engineNextBytes" | "read")
    }
}

/// Heuristic used when a dotted name does not resolve to a local or
/// field: a capitalized segment is read as a class name.
pub fn looks_like_class_name(segment: &str) -> bool {
    segment
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase())
}

/// Heuristic for API constants: `Cipher.ENCRYPT_MODE`,
/// `Build.MIN_SDK_VERSION` — an ALL_CAPS terminal segment on a
/// class-like qualifier.
pub fn looks_like_const_name(segment: &str) -> bool {
    !segment.is_empty()
        && segment
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        && segment
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_follow_jca_convention() {
        let api = ApiModel::standard();
        assert!(api.is_factory("Cipher", "getInstance"));
        assert!(api.is_factory("SecureRandom", "getInstanceStrong"));
        assert!(api.is_factory("Mac", "getInstance"));
        assert!(!api.is_factory("cipher", "getInstance"));
        assert!(!api.is_factory("Cipher", "init"));
    }

    #[test]
    fn const_heuristics() {
        assert!(looks_like_const_name("ENCRYPT_MODE"));
        assert!(looks_like_const_name("SDK_INT"));
        assert!(!looks_like_const_name("getInstance"));
        assert!(!looks_like_const_name("Cipher"));
        assert!(looks_like_class_name("Cipher"));
        assert!(!looks_like_class_name("enc"));
    }

    #[test]
    fn known_calls_preserve_constness() {
        let api = ApiModel::standard();
        let const_str = AValue::Str("0011223344556677".into());
        assert_eq!(
            api.eval_known_call("toCharArray", Some(&const_str), &[]),
            Some(AValue::ConstByteArray)
        );
        assert_eq!(
            api.eval_known_call("toCharArray", Some(&AValue::TopStr), &[]),
            Some(AValue::TopByteArray)
        );
        assert_eq!(
            api.eval_known_call("digest", Some(&const_str), &[]),
            Some(AValue::TopByteArray)
        );
        assert_eq!(api.eval_known_call("frobnicate", None, &[]), None);
    }

    #[test]
    fn target_classes_match_paper_figure_5() {
        assert_eq!(TARGET_CLASSES.len(), 6);
        assert!(TARGET_CLASSES.contains(&"Cipher"));
        assert!(TARGET_CLASSES.contains(&"PBEKeySpec"));
        for t in TARGET_CLASSES {
            assert!(TRACKED_CLASSES.contains(&t));
        }
    }
}
