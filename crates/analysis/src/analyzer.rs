//! The forward abstract interpreter (paper §5.1).
//!
//! For every class in a compilation unit the analyzer evaluates field
//! initializers, then treats **every method as an entry method** —
//! exactly what the paper does for partial programs, where any public
//! method may be the entry. Execution forks at branches, loop bodies
//! are analyzed once (with a join back), and unqualified calls to
//! methods of the same class are inlined up to a small depth.
//!
//! The output is the paper's `AUses : AObjs → P(Methods × AStates)`
//! restricted to what DAG construction needs: for each allocation site,
//! the set of (method, abstract-argument-vector) events observed on it.

use crate::api::{looks_like_class_name, looks_like_const_name, ApiModel};
use crate::limits::{AnalysisError, AnalysisLimits};
use absdomain::{AValue, AllocSite, Env, MethodSig};
use intern::{intern, intern_owned, Sym};
use javalang::ast::*;
use std::collections::{BTreeMap, HashMap};

/// One observed API interaction: a method together with the abstract
/// state of its arguments at the call.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageEvent {
    /// The invoked method.
    pub method: MethodSig,
    /// Abstract argument values, in positional order (receiver not
    /// included; argument indices are 1-based in DAG labels).
    pub args: Vec<AValue>,
}

/// The abstract usages of one program version.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Usages {
    /// Type of each abstract object, keyed by allocation site.
    pub objects: BTreeMap<AllocSite, Sym>,
    /// Usage events per abstract object.
    pub events: BTreeMap<AllocSite, Vec<UsageEvent>>,
}

impl Usages {
    /// All allocation sites whose object has type `ty`, in site order.
    pub fn objects_of_type<'a>(&'a self, ty: &'a str) -> impl Iterator<Item = AllocSite> + 'a {
        self.objects
            .iter()
            .filter(move |&(_, t)| &**t == ty)
            .map(|(site, _)| *site)
    }

    /// The usage events recorded for `site`.
    pub fn events_of(&self, site: AllocSite) -> &[UsageEvent] {
        self.events.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The type of the object at `site`.
    pub fn type_of(&self, site: AllocSite) -> Option<&str> {
        self.objects.get(&site).map(|t| &**t)
    }

    /// Merges the usages of several separately analyzed files into one
    /// view (allocation sites are renumbered to stay disjoint). Used
    /// for project-level rule checking, where e.g. R13's clauses may be
    /// satisfied by different files of the same project.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Usages>) -> Usages {
        let mut out = Usages::default();
        let mut next: u32 = 0;
        for part in parts {
            // Renumber this part's sites to stay disjoint.
            let mut mapping: BTreeMap<AllocSite, AllocSite> = BTreeMap::new();
            for (site, ty) in &part.objects {
                let new_site = AllocSite(next);
                next += 1;
                mapping.insert(*site, new_site);
                out.objects.insert(new_site, ty.clone());
            }
            let remap = |v: &AValue| -> AValue {
                match v {
                    AValue::Obj { site, ty } => AValue::Obj {
                        site: *mapping.get(site).unwrap_or(site),
                        ty: ty.clone(),
                    },
                    other => other.clone(),
                }
            };
            for (site, events) in &part.events {
                let new_site = *mapping.get(site).unwrap_or(site);
                let new_events = events
                    .iter()
                    .map(|e| UsageEvent {
                        method: e.method.clone(),
                        args: e.args.iter().map(&remap).collect(),
                    })
                    .collect();
                out.events.insert(new_site, new_events);
            }
        }
        out
    }
}

/// Analyzes a parsed compilation unit, returning its abstract usages.
///
/// This is the trusted-input entry point: no step budget, no depth
/// pre-check. Parser-produced trees are depth-bounded by
/// [`javalang::Limits::max_nesting`], so the recursive walk is safe;
/// for untrusted or hand-built inputs use [`try_analyze`].
pub fn analyze(unit: &CompilationUnit, api: &ApiModel) -> Usages {
    run(unit, api, u64::MAX).0
}

/// Analyzes `unit` under explicit resource budgets.
///
/// # Errors
///
/// [`AnalysisError::AstTooDeep`] if the unit's tree is deeper than
/// `limits.max_ast_depth` (measured iteratively, before any recursion),
/// and [`AnalysisError::StepBudgetExceeded`] if the interpreter burns
/// through `limits.max_steps` before finishing.
pub fn try_analyze(
    unit: &CompilationUnit,
    api: &ApiModel,
    limits: &AnalysisLimits,
) -> Result<Usages, AnalysisError> {
    try_analyze_counted(unit, api, limits).map(|(usages, _)| usages)
}

/// [`try_analyze`], additionally reporting how many interpreter steps
/// the analysis consumed — the pipeline's observability layer
/// aggregates these into its `analysis.steps` counter, turning the
/// fuel budget into a measurable per-corpus cost.
///
/// # Errors
///
/// Same as [`try_analyze`].
pub fn try_analyze_counted(
    unit: &CompilationUnit,
    api: &ApiModel,
    limits: &AnalysisLimits,
) -> Result<(Usages, u64), AnalysisError> {
    if limits.max_ast_depth != usize::MAX {
        let depth = javalang::visit::ast_depth(unit);
        if depth > limits.max_ast_depth {
            return Err(AnalysisError::AstTooDeep {
                depth,
                max_depth: limits.max_ast_depth,
            });
        }
    }
    let mut analyzer = Analyzer::new(api, &unit.ast, limits.max_steps);
    analyzer.run_unit(unit);
    if analyzer.exhausted {
        return Err(AnalysisError::StepBudgetExceeded {
            max_steps: limits.max_steps,
        });
    }
    let steps = limits.max_steps - analyzer.fuel;
    Ok((analyzer.usages, steps))
}

/// Counts the interpreter steps a fault-free analysis of `unit` takes.
/// Exists so budget-boundary tests can pin "exactly enough fuel
/// succeeds, one step less fails" without hard-coding step counts.
pub fn analysis_steps(unit: &CompilationUnit, api: &ApiModel) -> u64 {
    let mut analyzer = Analyzer::new(api, &unit.ast, u64::MAX);
    analyzer.run_unit(unit);
    u64::MAX - analyzer.fuel
}

fn run(unit: &CompilationUnit, api: &ApiModel, fuel: u64) -> (Usages, bool) {
    let mut analyzer = Analyzer::new(api, &unit.ast, fuel);
    analyzer.run_unit(unit);
    (analyzer.usages, analyzer.exhausted)
}

const MAX_INLINE_DEPTH: usize = 3;

struct Analyzer<'a> {
    api: &'a ApiModel,
    /// The unit's expression/statement arena; child links in the tree
    /// are ids into it.
    ast: &'a Ast,
    /// Allocation sites interned by arena id, so re-analysis of a
    /// helper from several entry methods maps to the same site.
    sites: HashMap<ExprId, AllocSite>,
    next_site: u32,
    usages: Usages,
    /// `static final` constants of every class in the unit, keyed
    /// `Class.FIELD` — resolves the common constants-holder pattern
    /// (`Constants.HASH_ALGO`) across classes of the same file.
    unit_constants: BTreeMap<String, AValue>,
    /// Reusable scratch for composing `Class.FIELD` lookup keys
    /// without a per-lookup allocation.
    key_buf: String,
    /// Remaining step budget.
    fuel: u64,
    /// Set once the budget runs out; every interpreter entry point
    /// then returns immediately, unwinding the analysis without
    /// recursion or panics. The partial result is discarded by
    /// [`try_analyze`].
    exhausted: bool,
}

/// Per-entry execution context.
struct Ctx<'a> {
    class: &'a TypeDecl,
    depth: usize,
    call_stack: Vec<Sym>,
    /// Join of `return` expressions seen while inlining.
    ret: Option<AValue>,
}

impl<'a> Analyzer<'a> {
    fn new(api: &'a ApiModel, ast: &'a Ast, fuel: u64) -> Analyzer<'a> {
        Analyzer {
            api,
            ast,
            sites: HashMap::new(),
            next_site: 0,
            usages: Usages::default(),
            unit_constants: BTreeMap::new(),
            key_buf: String::new(),
            fuel,
            exhausted: false,
        }
    }

    fn run_unit(&mut self, unit: &'a CompilationUnit) {
        self.collect_unit_constants(unit);
        for class in unit.all_types() {
            self.analyze_class(class);
        }
    }

    /// Consumes `cost` steps; returns `true` when the budget is gone
    /// and the caller should bail out.
    fn charge(&mut self, cost: u64) -> bool {
        if self.exhausted {
            return true;
        }
        if self.fuel < cost {
            self.fuel = 0;
            self.exhausted = true;
            return true;
        }
        self.fuel -= cost;
        false
    }

    /// Clones `env` for a branch/inline fork, charging its size. The
    /// clone is a copy-on-write pointer bump, but the charge stays
    /// proportional to the env because the *potential* work a fork
    /// enables (first write unshares, join walks the bindings) is
    /// O(|env|) — and keeping the historical cost model keeps fuel
    /// accounting, and thus every mined artifact, bit-identical. When
    /// the budget is already gone the clone is skipped (the result
    /// will be discarded anyway).
    fn fork_env(&mut self, env: &Env) -> Env {
        if self.charge(1 + env.len() as u64) {
            return Env::new();
        }
        env.clone()
    }

    /// Collects `static final` field constants (strings, ints, and
    /// constant arrays) of every class, so sibling classes can resolve
    /// `Holder.CONST` references.
    fn collect_unit_constants(&mut self, unit: &'a CompilationUnit) {
        let ast = self.ast;
        for class in unit.all_types() {
            for field in class.fields() {
                if !(field.modifiers.is_static && field.modifiers.is_final) {
                    continue;
                }
                for d in &field.declarators {
                    let value = match d.init.map(|init| ast.expr(init)) {
                        Some(Expr::Literal(Lit::Str(v))) => AValue::Str(v.clone()),
                        Some(Expr::Literal(Lit::Int(v))) => AValue::Int(*v),
                        Some(Expr::Literal(Lit::Bool(v))) => AValue::Bool(*v),
                        Some(Expr::ArrayInit(_)) | Some(Expr::NewArray { .. }) => {
                            // Shared hard-coded material (keys, IVs).
                            match &field.ty {
                                Type::Array(inner) => match inner.as_ref() {
                                    Type::Primitive(PrimitiveType::Byte | PrimitiveType::Char) => {
                                        AValue::ConstByteArray
                                    }
                                    _ => continue,
                                },
                                _ => continue,
                            }
                        }
                        _ => continue,
                    };
                    self.unit_constants
                        .insert(format!("{}.{}", class.name, d.name), value);
                }
            }
        }
    }

    fn analyze_class(&mut self, class: &'a TypeDecl) {
        let ast = self.ast;
        // Pass 1: field initializers, evaluated in source order so later
        // fields can reference earlier constants.
        let mut fields = Env::new();
        let mut ctx = Ctx {
            class,
            depth: 0,
            call_stack: Vec::new(),
            ret: None,
        };
        for member in &class.members {
            if let Member::Field(field) = member {
                for d in &field.declarators {
                    let value = match d.init {
                        Some(init) => match ast.expr(init) {
                            Expr::ArrayInit(elems) => {
                                self.eval_array_literal(elems, &field.ty, &mut fields, &mut ctx)
                            }
                            _ => self.eval(init, &mut fields, &mut ctx),
                        },
                        None => AValue::Null,
                    };
                    fields.set(d.name.clone(), value);
                }
            }
        }
        // Initializer blocks share the field environment.
        for member in &class.members {
            if let Member::Initializer { body, .. } = member {
                let mut env = self.fork_env(&fields);
                let mut ctx = Ctx {
                    class,
                    depth: 0,
                    call_stack: Vec::new(),
                    ret: None,
                };
                self.exec_block(body, &mut env, &mut ctx);
            }
        }
        // Pass 2: every method is an entry method.
        for method in class.methods() {
            let Some(body) = &method.body else { continue };
            let mut env = self.fork_env(&fields);
            for param in &method.params {
                env.set(param.name.clone(), top_for_type(&param.ty));
            }
            let mut ctx = Ctx {
                class,
                depth: 0,
                call_stack: vec![method.name.clone()],
                ret: None,
            };
            self.exec_block(body, &mut env, &mut ctx);
        }
    }

    fn fresh_site(&mut self, key: ExprId, ty: &str) -> AllocSite {
        if let Some(site) = self.sites.get(&key) {
            return *site;
        }
        let site = AllocSite(self.next_site);
        self.next_site += 1;
        self.sites.insert(key, site);
        self.usages.objects.insert(site, intern(ty));
        site
    }

    fn record(&mut self, site: AllocSite, method: MethodSig, args: Vec<AValue>) {
        // Objects typically see a handful of calls (getInstance, init,
        // doFinal…); starting at capacity 4 skips the 1→2→4 growth
        // reallocations for the common case.
        let events = self
            .usages
            .events
            .entry(site)
            .or_insert_with(|| Vec::with_capacity(4));
        let event = UsageEvent { method, args };
        if !events.contains(&event) {
            events.push(event);
        }
    }

    /// Records `event` also on every argument that is a site-bound
    /// object — the paper's `Methods_t` includes methods *accepting* an
    /// instance of `t`.
    fn record_on_args(&mut self, method: &MethodSig, args: &[AValue]) {
        for arg in args {
            if let AValue::Obj { site, .. } = arg {
                self.record(*site, method.clone(), args.to_vec());
            }
        }
    }

    /// [`Analyzer::record`] at `site` followed by
    /// [`Analyzer::record_on_args`], taking ownership of `args`: the
    /// defensive argument-vector clone is paid only when some argument
    /// actually is a site-bound object — for the common
    /// constant-and-array argument lists the vector moves straight into
    /// the event.
    fn record_call(&mut self, site: AllocSite, method: &MethodSig, args: Vec<AValue>) {
        if args.iter().any(|a| matches!(a, AValue::Obj { .. })) {
            self.record(site, method.clone(), args.clone());
            self.record_on_args(method, &args);
        } else {
            self.record(site, method.clone(), args);
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(&mut self, block: &Block, env: &mut Env, ctx: &mut Ctx<'a>) {
        for stmt in &block.stmts {
            self.exec_stmt(*stmt, env, ctx);
        }
    }

    fn exec_stmt(&mut self, stmt: StmtId, env: &mut Env, ctx: &mut Ctx<'a>) {
        if self.charge(1) {
            return;
        }
        let ast = self.ast;
        match ast.stmt(stmt) {
            Stmt::Block(b) => self.exec_block(b, env, ctx),
            Stmt::LocalVar { ty, declarators } => {
                for d in declarators {
                    let value = match d.init {
                        Some(init) => match ast.expr(init) {
                            Expr::ArrayInit(elems) => self.eval_array_literal(elems, ty, env, ctx),
                            _ => self.eval(init, env, ctx),
                        },
                        None => AValue::Null,
                    };
                    env.set(d.name.clone(), value);
                }
            }
            Stmt::Expr(e) | Stmt::Throw(e) | Stmt::Assert(e) => {
                self.eval(*e, env, ctx);
            }
            Stmt::If { cond, then, alt } => {
                self.eval(*cond, env, ctx);
                let mut then_env = self.fork_env(env);
                self.exec_stmt(*then, &mut then_env, ctx);
                match alt {
                    Some(alt) => {
                        let mut alt_env = self.fork_env(env);
                        self.exec_stmt(*alt, &mut alt_env, ctx);
                        then_env.join_with(alt_env);
                        *env = then_env;
                    }
                    None => env.join_with(then_env),
                }
            }
            Stmt::While { cond, body } => {
                self.eval(*cond, env, ctx);
                let mut body_env = self.fork_env(env);
                self.exec_stmt(*body, &mut body_env, ctx);
                env.join_with(body_env);
            }
            Stmt::DoWhile { body, cond } => {
                // The body executes at least once.
                self.exec_stmt(*body, env, ctx);
                self.eval(*cond, env, ctx);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                for s in init {
                    self.exec_stmt(*s, env, ctx);
                }
                if let Some(c) = cond {
                    self.eval(*c, env, ctx);
                }
                let mut body_env = self.fork_env(env);
                self.exec_stmt(*body, &mut body_env, ctx);
                for u in update {
                    self.eval(*u, &mut body_env, ctx);
                }
                env.join_with(body_env);
            }
            Stmt::ForEach {
                ty,
                name,
                iterable,
                body,
            } => {
                self.eval(*iterable, env, ctx);
                let mut body_env = self.fork_env(env);
                body_env.set(name.clone(), top_for_type(ty));
                self.exec_stmt(*body, &mut body_env, ctx);
                body_env.remove(name);
                env.join_with(body_env);
            }
            Stmt::Return(value) => {
                if let Some(value) = value {
                    let v = self.eval(*value, env, ctx);
                    ctx.ret = Some(match ctx.ret.take() {
                        Some(prev) => prev.join(v),
                        None => v,
                    });
                }
            }
            Stmt::Try {
                resources,
                block,
                catches,
                finally,
            } => {
                for r in resources {
                    self.exec_stmt(*r, env, ctx);
                }
                self.exec_block(block, env, ctx);
                for catch in catches {
                    let mut catch_env = self.fork_env(env);
                    let exc_ty = catch
                        .types
                        .first()
                        .and_then(|t| t.simple_name())
                        .map(intern);
                    catch_env.set(catch.name.clone(), AValue::TopObj { ty: exc_ty });
                    self.exec_block(&catch.body, &mut catch_env, ctx);
                    catch_env.remove(&catch.name);
                    env.join_with(catch_env);
                }
                if let Some(f) = finally {
                    self.exec_block(f, env, ctx);
                }
            }
            Stmt::Switch { scrutinee, cases } => {
                self.eval(*scrutinee, env, ctx);
                let base = self.fork_env(env);
                for case in cases {
                    for label in &case.labels {
                        self.eval(*label, env, ctx);
                    }
                    let mut case_env = self.fork_env(&base);
                    for s in &case.body {
                        self.exec_stmt(*s, &mut case_env, ctx);
                    }
                    env.join_with(case_env);
                }
            }
            Stmt::Synchronized { monitor, body } => {
                self.eval(*monitor, env, ctx);
                self.exec_block(body, env, ctx);
            }
            Stmt::LocalType(_) | Stmt::Break | Stmt::Continue | Stmt::Empty | Stmt::Unparsed => {}
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, expr: ExprId, env: &mut Env, ctx: &mut Ctx<'a>) -> AValue {
        if self.charge(1) {
            return AValue::Unknown;
        }
        let ast = self.ast;
        match ast.expr(expr) {
            Expr::Literal(lit) => match lit {
                Lit::Int(v) => AValue::Int(*v),
                Lit::Float(_) => AValue::TopInt,
                Lit::Bool(b) => AValue::Bool(*b),
                Lit::Char(_) => AValue::ConstByte,
                Lit::Str(s) => AValue::Str(s.clone()),
                Lit::Null => AValue::Null,
            },
            Expr::Name(dotted) => self.eval_name(dotted, env),
            Expr::FieldAccess { target, name } => {
                if *ast.expr(*target) == Expr::This {
                    return env.get(name).cloned().unwrap_or(AValue::Unknown);
                }
                let receiver = self.eval(*target, env, ctx);
                match receiver {
                    AValue::Obj { site, .. } => env
                        .get(&heap_key(site, name))
                        .cloned()
                        .unwrap_or(AValue::Unknown),
                    _ => AValue::Unknown,
                }
            }
            Expr::MethodCall { target, name, args } => {
                self.eval_call(expr, *target, name, args, env, ctx)
            }
            Expr::New { ty, args, .. } => {
                let arg_vals: Vec<AValue> = args.iter().map(|a| self.eval(*a, env, ctx)).collect();
                let class = display_sym(ty);
                if ty.simple_name().is_some() {
                    // Per-allocation-site heap abstraction (paper §3.3):
                    // every constructor site is one abstract object, for
                    // tracked *and* untracked classes — the latter give
                    // field sensitivity (`holder.key = ...`) and argument
                    // usage events.
                    let site = self.fresh_site(expr, &class);
                    let sig = MethodSig::ctor(class.clone(), arg_vals.len());
                    self.record_call(site, &sig, arg_vals);
                    AValue::Obj { site, ty: class }
                } else {
                    AValue::TopObj {
                        ty: ty.simple_name().map(intern),
                    }
                }
            }
            Expr::NewArray { ty, dims, init } => {
                for d in dims {
                    self.eval(*d, env, ctx);
                }
                match init {
                    Some(elems) => {
                        let vals: Vec<AValue> =
                            elems.iter().map(|e| self.eval(*e, env, ctx)).collect();
                        array_value(ty, &vals, /*explicit_literal=*/ true)
                    }
                    None => {
                        // `new byte[16]` — a zero-filled, program-constant
                        // array (the classic static-IV idiom).
                        match ty {
                            Type::Primitive(PrimitiveType::Byte | PrimitiveType::Char) => {
                                AValue::ConstByteArray
                            }
                            Type::Primitive(PrimitiveType::Int) => AValue::TopIntArray,
                            _ => AValue::Unknown,
                        }
                    }
                }
            }
            Expr::ArrayInit(elems) => {
                let vals: Vec<AValue> = elems.iter().map(|e| self.eval(*e, env, ctx)).collect();
                infer_array_literal(&vals)
            }
            Expr::Assign { lhs, op, rhs } => {
                let rhs_val = if let Expr::ArrayInit(elems) = ast.expr(*rhs) {
                    let vals: Vec<AValue> = elems.iter().map(|e| self.eval(*e, env, ctx)).collect();
                    infer_array_literal(&vals)
                } else {
                    self.eval(*rhs, env, ctx)
                };
                let value = match op {
                    AssignOp::Assign => rhs_val,
                    _ => {
                        let old = self.eval_lvalue(*lhs, env);
                        // Compound assignment: fold when both constant.
                        match (&old, &rhs_val) {
                            (AValue::Str(a), AValue::Str(b)) if *op == AssignOp::Add => {
                                AValue::Str(intern_owned(format!("{a}{b}")))
                            }
                            (AValue::Str(a), AValue::Int(b)) if *op == AssignOp::Add => {
                                AValue::Str(intern_owned(format!("{a}{b}")))
                            }
                            (AValue::Int(a), AValue::Int(b)) => fold_int_assign(*a, *b, *op),
                            _ => old.join(rhs_val),
                        }
                    }
                };
                self.assign_lvalue(*lhs, value.clone(), env, ctx);
                value
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(*lhs, env, ctx);
                let r = self.eval(*rhs, env, ctx);
                fold_binary(*op, l, r)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(*expr, env, ctx);
                match (op, &v) {
                    (UnOp::Neg, AValue::Int(n)) => AValue::Int(-n),
                    (UnOp::BitNot, AValue::Int(n)) => AValue::Int(!n),
                    (UnOp::Not, AValue::Bool(b)) => AValue::Bool(!b),
                    (UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec, _) => {
                        // Increment havocs the variable.
                        if let Expr::Name(name) = ast.expr(*expr) {
                            if !name.contains('.') && env.get(name).is_some() {
                                env.set(name.clone(), AValue::TopInt);
                            }
                        }
                        AValue::TopInt
                    }
                    _ => v,
                }
            }
            Expr::Cast { ty, expr } => {
                let v = self.eval(*expr, env, ctx);
                if v == AValue::Unknown || matches!(v, AValue::TopObj { ty: None }) {
                    top_for_type(ty)
                } else {
                    v
                }
            }
            Expr::ArrayAccess { array, index } => {
                let a = self.eval(*array, env, ctx);
                self.eval(*index, env, ctx);
                match a {
                    AValue::IntArray(_) | AValue::TopIntArray => AValue::TopInt,
                    AValue::ConstByteArray => AValue::ConstByte,
                    AValue::TopByteArray => AValue::TopByte,
                    AValue::StrArray(_) | AValue::TopStrArray => AValue::TopStr,
                    _ => AValue::Unknown,
                }
            }
            Expr::Conditional { cond, then, alt } => {
                self.eval(*cond, env, ctx);
                let t = self.eval(*then, env, ctx);
                let a = self.eval(*alt, env, ctx);
                t.join(a)
            }
            Expr::InstanceOf { expr, .. } => {
                self.eval(*expr, env, ctx);
                AValue::TopBool
            }
            Expr::This => AValue::TopObj {
                ty: Some(ctx.class.name.clone()),
            },
            Expr::Super => AValue::TopObj {
                ty: ctx
                    .class
                    .extends
                    .as_ref()
                    .and_then(|t| t.simple_name())
                    .map(intern),
            },
            Expr::ClassLiteral(_) | Expr::Lambda | Expr::MethodRef | Expr::Unparsed => {
                AValue::Unknown
            }
        }
    }

    /// Resolves a (possibly dotted) name without splitting it into an
    /// allocated segment list: the first segment is checked against the
    /// environment, the rest walk the abstract heap.
    fn eval_name(&mut self, name: &str, env: &Env) -> AValue {
        if name.is_empty() {
            return AValue::Unknown;
        }
        let (first, rest) = match name.split_once('.') {
            Some((first, rest)) => (first, Some(rest)),
            None => (name, None),
        };
        if let Some(v) = env.get(first) {
            let Some(rest) = rest else {
                return v.clone();
            };
            // Field access on an abstract object: abstract heap lookup
            // `η(o, f)` (paper §3.3), chained for `a.b.c`.
            let mut current = v.clone();
            for field in rest.split('.') {
                let AValue::Obj { site, .. } = current else {
                    return AValue::Unknown;
                };
                current = env
                    .get(&heap_key(site, field))
                    .cloned()
                    .unwrap_or(AValue::Unknown);
            }
            return current;
        }
        if let Some((prefix, last)) = name.rsplit_once('.') {
            let qualifier = prefix.rsplit_once('.').map_or(prefix, |(_, q)| q);
            // Constants defined by a sibling class in the same unit
            // (`Constants.HASH_ALGO`).
            self.key_buf.clear();
            self.key_buf.push_str(qualifier);
            self.key_buf.push('.');
            self.key_buf.push_str(last);
            if let Some(v) = self.unit_constants.get(self.key_buf.as_str()) {
                return v.clone();
            }
            // `Cipher.ENCRYPT_MODE`-style API constants.
            if looks_like_const_name(last) && looks_like_class_name(qualifier) {
                return AValue::ApiConst {
                    class: intern(qualifier),
                    name: intern(last),
                };
            }
        }
        AValue::Unknown
    }

    /// Reads the current value of an assignment target.
    fn eval_lvalue(&mut self, lhs: ExprId, env: &Env) -> AValue {
        let ast = self.ast;
        match ast.expr(lhs) {
            Expr::Name(name) => match name.split_once('.') {
                None => env.get(name).cloned().unwrap_or(AValue::Unknown),
                Some((first, field)) if !field.contains('.') => match env.get(first) {
                    Some(AValue::Obj { site, .. }) => env
                        .get(&heap_key(*site, field))
                        .cloned()
                        .unwrap_or(AValue::Unknown),
                    _ => AValue::Unknown,
                },
                Some(_) => AValue::Unknown,
            },
            Expr::FieldAccess { target, name } if *ast.expr(*target) == Expr::This => {
                env.get(name).cloned().unwrap_or(AValue::Unknown)
            }
            _ => AValue::Unknown,
        }
    }

    fn assign_lvalue(&mut self, lhs: ExprId, value: AValue, env: &mut Env, ctx: &mut Ctx<'a>) {
        let ast = self.ast;
        match ast.expr(lhs) {
            Expr::Name(name) => match name.rsplit_once('.') {
                None => {
                    env.set(name.clone(), value);
                }
                Some((prefix, last)) => {
                    // `holder.field = value` (possibly chained) — abstract
                    // heap store. Strong update is sound here because each
                    // allocation site is a distinct abstract object.
                    let (first, path) = match prefix.split_once('.') {
                        Some((first, path)) => (first, path),
                        None => (prefix, ""),
                    };
                    let mut current = env.get(first).cloned();
                    for field in path.split('.').filter(|f| !f.is_empty()) {
                        current = match current {
                            Some(AValue::Obj { site, .. }) => {
                                env.get(&heap_key(site, field)).cloned()
                            }
                            _ => None,
                        };
                    }
                    if let Some(AValue::Obj { site, .. }) = current {
                        env.set(heap_key(site, last), value);
                    }
                }
            },
            Expr::FieldAccess { target, name } if *ast.expr(*target) == Expr::This => {
                env.set(name.clone(), value);
            }
            Expr::FieldAccess { target, name } => {
                if let AValue::Obj { site, .. } = self.eval(*target, env, ctx) {
                    env.set(heap_key(site, name), value);
                }
            }
            Expr::ArrayAccess { array, .. } => {
                // Storing a runtime value into a constant array havocs it.
                if let Expr::Name(name) = ast.expr(*array) {
                    if !name.contains('.') {
                        if let Some(old) = env.get(name).cloned() {
                            let havocked = match old {
                                AValue::ConstByteArray if value_is_const(&value) => {
                                    AValue::ConstByteArray
                                }
                                AValue::ConstByteArray | AValue::TopByteArray => {
                                    AValue::TopByteArray
                                }
                                AValue::IntArray(_) if value_is_const(&value) => old,
                                AValue::IntArray(_) | AValue::TopIntArray => AValue::TopIntArray,
                                AValue::StrArray(_) if value_is_const(&value) => old,
                                AValue::StrArray(_) | AValue::TopStrArray => AValue::TopStrArray,
                                other => other,
                            };
                            env.set(name.clone(), havocked);
                        }
                    }
                }
            }
            _ => {
                // Evaluate for side effects (e.g. `obj.field[i] = x`).
                let _ = self.eval(lhs, env, ctx);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_call(
        &mut self,
        call_expr: ExprId,
        target: Option<ExprId>,
        name: &str,
        args: &[ExprId],
        env: &mut Env,
        ctx: &mut Ctx<'a>,
    ) -> AValue {
        let ast = self.ast;
        let arg_vals: Vec<AValue> = args.iter().map(|a| self.eval(*a, env, ctx)).collect();

        // Array-havoc methods mutate their argument in place
        // (`random.nextBytes(iv)`).
        if self.api.is_array_havoc(name) {
            for arg in args {
                if let Expr::Name(arg_name) = ast.expr(*arg) {
                    if !arg_name.contains('.') {
                        if let Some(v) = env.get(arg_name).cloned() {
                            let havocked = match v {
                                AValue::ConstByteArray | AValue::TopByteArray => {
                                    AValue::TopByteArray
                                }
                                AValue::IntArray(_) | AValue::TopIntArray => AValue::TopIntArray,
                                other => other,
                            };
                            env.set(arg_name.clone(), havocked);
                        }
                    }
                }
            }
        }

        // Unqualified (or this-qualified) call: constructor chain, local
        // helper, or unknown static import.
        let is_this_call = match target {
            None => true,
            Some(t) => *ast.expr(t) == Expr::This,
        };
        if is_this_call {
            if name == "this" || name == "super" {
                return AValue::Unknown;
            }
            return self.inline_local_call(name, arg_vals, env, ctx);
        }
        let Some(target) = target else {
            // Unreachable given the `is_this_call` early return, but a
            // skip is the right degradation if that invariant drifts.
            return AValue::Unknown;
        };

        // Static call on a class name?
        if let Expr::Name(dotted) = ast.expr(target) {
            let first = dotted.split_once('.').map_or(&**dotted, |(f, _)| f);
            let last = dotted.rsplit_once('.').map_or(&**dotted, |(_, l)| l);
            if !first.is_empty() && env.get(first).is_none() {
                let class = last.to_owned();
                if looks_like_class_name(&class) {
                    return self.eval_static_call(call_expr, &class, name, arg_vals);
                }
            }
        }

        // Instance call.
        let recv = self.eval(target, env, ctx);
        let recv_class = match &recv {
            AValue::Obj { ty, .. } => Some(ty.clone()),
            AValue::TopObj { ty } => ty.clone(),
            _ => None,
        };
        let sig = MethodSig::new(
            recv_class.clone().unwrap_or_else(|| intern("?")),
            intern(name),
            arg_vals.len(),
        );
        // `eval_known_call` only reads the (immutable) API model, so
        // evaluating it first lets `arg_vals` move into the recorded
        // event instead of being cloned.
        let out = self
            .api
            .eval_known_call(name, Some(&recv), &arg_vals)
            .unwrap_or(AValue::Unknown);
        if let AValue::Obj { site, .. } = &recv {
            self.record_call(*site, &sig, arg_vals);
        } else {
            self.record_on_args(&sig, &arg_vals);
        }
        out
    }

    fn eval_static_call(
        &mut self,
        call_expr: ExprId,
        class: &str,
        name: &str,
        arg_vals: Vec<AValue>,
    ) -> AValue {
        if self.api.is_factory(class, name) && self.api.is_tracked_class(class) {
            let site = self.fresh_site(call_expr, class);
            let sig = MethodSig::new(intern(class), intern(name), arg_vals.len());
            self.record_call(site, &sig, arg_vals);
            return AValue::Obj {
                site,
                ty: intern(class),
            };
        }
        let sig = MethodSig::new(intern(class), intern(name), arg_vals.len());
        self.record_on_args(&sig, &arg_vals);
        if self.api.is_factory(class, name) {
            // Factory of an untracked class.
            return AValue::TopObj {
                ty: Some(intern(class)),
            };
        }
        self.api
            .eval_known_call(name, None, &arg_vals)
            .unwrap_or(AValue::Unknown)
    }

    fn inline_local_call(
        &mut self,
        name: &str,
        arg_vals: Vec<AValue>,
        env: &mut Env,
        ctx: &mut Ctx<'a>,
    ) -> AValue {
        if ctx.depth >= MAX_INLINE_DEPTH || ctx.call_stack.iter().any(|m| &**m == name) {
            return AValue::Unknown;
        }
        let callee = ctx
            .class
            .methods()
            .find(|m| &*m.name == name && m.params.len() == arg_vals.len() && m.body.is_some());
        let Some(callee) = callee else {
            return AValue::Unknown;
        };
        let Some(body) = callee.body.as_ref() else {
            return AValue::Unknown;
        };

        let mut callee_env = self.fork_env(env);
        for (param, value) in callee.params.iter().zip(arg_vals) {
            callee_env.set(param.name.clone(), value);
        }
        let mut callee_ctx = Ctx {
            class: ctx.class,
            depth: ctx.depth + 1,
            call_stack: {
                let mut s = ctx.call_stack.clone();
                s.push(intern(name));
                s
            },
            ret: None,
        };
        self.exec_block(body, &mut callee_env, &mut callee_ctx);

        // Propagate callee effects on variables the caller can see
        // (fields and shadow-free locals).
        let updates: Vec<(Sym, AValue)> = env
            .iter()
            .filter(|(k, _)| !callee.params.iter().any(|p| &p.name == *k))
            .filter_map(|(k, _)| callee_env.get(k).map(|v| (k.clone(), v.clone())))
            .collect();
        for (k, v) in updates {
            env.set(k, v);
        }
        callee_ctx.ret.unwrap_or(AValue::Unknown)
    }

    fn eval_array_literal(
        &mut self,
        elems: &[ExprId],
        declared: &Type,
        env: &mut Env,
        ctx: &mut Ctx<'a>,
    ) -> AValue {
        let vals: Vec<AValue> = elems.iter().map(|e| self.eval(*e, env, ctx)).collect();
        // Unwrap the declared array element type.
        let elem_ty = match declared {
            Type::Array(inner) => inner.as_ref().clone(),
            other => other.clone(),
        };
        array_value(&elem_ty, &vals, true)
    }
}

/// The env key used to store abstract heap entries `η(o, f)`. The `#`
/// separator cannot occur in a Java identifier, so heap entries never
/// collide with locals or fields of `this`.
fn heap_key(site: AllocSite, field: &str) -> String {
    format!("{site}#{field}")
}

/// [`Type::display_name`] as an interned symbol, without the
/// intermediate `String` for plain named types — the symbol the parser
/// interned *is* the display name when the type has no package
/// qualifier.
fn display_sym(ty: &Type) -> Sym {
    match ty {
        Type::Named { name, .. } => match name.rfind('.') {
            None => name.clone(),
            Some(dot) => intern(&name[dot + 1..]),
        },
        other => intern_owned(other.display_name()),
    }
}

/// `⊤`-value for a declared type (used for parameters and casts).
fn top_for_type(ty: &Type) -> AValue {
    match ty {
        Type::Primitive(p) => match p {
            PrimitiveType::Int | PrimitiveType::Long | PrimitiveType::Short => AValue::TopInt,
            PrimitiveType::Byte | PrimitiveType::Char => AValue::TopByte,
            PrimitiveType::Boolean => AValue::TopBool,
            PrimitiveType::Float | PrimitiveType::Double | PrimitiveType::Void => AValue::Unknown,
        },
        Type::Array(inner) => match inner.as_ref() {
            Type::Primitive(PrimitiveType::Byte | PrimitiveType::Char) => AValue::TopByteArray,
            Type::Primitive(PrimitiveType::Int | PrimitiveType::Long) => AValue::TopIntArray,
            Type::Named { name, .. } if name.ends_with("String") => AValue::TopStrArray,
            _ => AValue::Unknown,
        },
        Type::Named { .. } => match ty.simple_name() {
            Some("String") => AValue::TopStr,
            Some("Integer") | Some("Long") | Some("Short") => AValue::TopInt,
            Some("Boolean") => AValue::TopBool,
            Some("Byte") | Some("Character") => AValue::TopByte,
            other => AValue::TopObj {
                ty: other.map(intern),
            },
        },
        Type::Wildcard | Type::Unknown => AValue::Unknown,
    }
}

fn value_is_const(v: &AValue) -> bool {
    matches!(
        v,
        AValue::Int(_)
            | AValue::Str(_)
            | AValue::ConstByte
            | AValue::Bool(_)
            | AValue::ApiConst { .. }
    )
}

/// Abstracts an array literal with a known element type.
fn array_value(elem_ty: &Type, vals: &[AValue], _explicit: bool) -> AValue {
    match elem_ty {
        Type::Primitive(PrimitiveType::Byte | PrimitiveType::Char) => {
            if vals.iter().all(value_is_const) {
                AValue::ConstByteArray
            } else {
                AValue::TopByteArray
            }
        }
        Type::Primitive(PrimitiveType::Int | PrimitiveType::Long | PrimitiveType::Short) => {
            let consts: Option<Vec<i64>> = vals
                .iter()
                .map(|v| match v {
                    AValue::Int(n) => Some(*n),
                    _ => None,
                })
                .collect();
            match consts {
                Some(ns) => AValue::IntArray(ns),
                None => AValue::TopIntArray,
            }
        }
        Type::Named { name, .. } if name.ends_with("String") => {
            let consts: Option<Vec<Sym>> = vals
                .iter()
                .map(|v| match v {
                    AValue::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            match consts {
                Some(ss) => AValue::StrArray(ss),
                None => AValue::TopStrArray,
            }
        }
        _ => infer_array_literal(vals),
    }
}

/// Infers the abstraction of an array literal from its elements when no
/// declared type is available.
fn infer_array_literal(vals: &[AValue]) -> AValue {
    if !vals.is_empty() {
        let ints: Vec<i64> = vals
            .iter()
            .filter_map(|v| match v {
                AValue::Int(n) => Some(*n),
                _ => None,
            })
            .collect();
        if ints.len() == vals.len() {
            return AValue::IntArray(ints);
        }
        let strs: Vec<Sym> = vals
            .iter()
            .filter_map(|v| match v {
                AValue::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        if strs.len() == vals.len() {
            return AValue::StrArray(strs);
        }
    }
    if vals.iter().all(value_is_const) {
        AValue::ConstByteArray
    } else {
        AValue::TopByteArray
    }
}

fn fold_binary(op: BinOp, l: AValue, r: AValue) -> AValue {
    use BinOp::*;
    match (&l, &r) {
        (AValue::Str(a), AValue::Str(b)) if op == Add => {
            return AValue::Str(intern_owned(format!("{a}{b}")));
        }
        (AValue::Str(a), AValue::Int(b)) if op == Add => {
            return AValue::Str(intern_owned(format!("{a}{b}")));
        }
        (AValue::Int(a), AValue::Str(b)) if op == Add => {
            return AValue::Str(intern_owned(format!("{a}{b}")));
        }
        (AValue::Int(a), AValue::Int(b)) => {
            return match op {
                Add => AValue::Int(a.wrapping_add(*b)),
                Sub => AValue::Int(a.wrapping_sub(*b)),
                Mul => AValue::Int(a.wrapping_mul(*b)),
                Div if *b != 0 => AValue::Int(a / b),
                Rem if *b != 0 => AValue::Int(a % b),
                Shl => AValue::Int(a.wrapping_shl(*b as u32)),
                Shr => AValue::Int(a.wrapping_shr(*b as u32)),
                UShr => AValue::Int(((*a as u64) >> (*b as u64 % 64)) as i64),
                BitAnd => AValue::Int(a & b),
                BitOr => AValue::Int(a | b),
                BitXor => AValue::Int(a ^ b),
                Eq => AValue::Bool(a == b),
                Ne => AValue::Bool(a != b),
                Lt => AValue::Bool(a < b),
                Gt => AValue::Bool(a > b),
                Le => AValue::Bool(a <= b),
                Ge => AValue::Bool(a >= b),
                Div | Rem => AValue::TopInt,
                AndAnd | OrOr => AValue::TopBool,
            };
        }
        _ => {}
    }
    match op {
        Eq | Ne | Lt | Gt | Le | Ge | AndAnd | OrOr => AValue::TopBool,
        Add if l.kind() == absdomain::ValueKind::Str || r.kind() == absdomain::ValueKind::Str => {
            AValue::TopStr
        }
        _ => {
            if l.kind() == r.kind() {
                // Same kind but not constant-foldable: the kind's top.
                match l {
                    _ if l == r => l,
                    _ => l.join(r),
                }
            } else {
                AValue::Unknown
            }
        }
    }
}

fn fold_int_assign(a: i64, b: i64, op: AssignOp) -> AValue {
    match op {
        AssignOp::Add => AValue::Int(a.wrapping_add(b)),
        AssignOp::Sub => AValue::Int(a.wrapping_sub(b)),
        AssignOp::Mul => AValue::Int(a.wrapping_mul(b)),
        AssignOp::Div if b != 0 => AValue::Int(a / b),
        AssignOp::Rem if b != 0 => AValue::Int(a % b),
        AssignOp::And => AValue::Int(a & b),
        AssignOp::Or => AValue::Int(a | b),
        AssignOp::Xor => AValue::Int(a ^ b),
        AssignOp::Shl => AValue::Int(a.wrapping_shl(b as u32)),
        AssignOp::Shr => AValue::Int(a.wrapping_shr(b as u32)),
        AssignOp::UShr => AValue::Int(((a as u64) >> (b as u64 % 64)) as i64),
        _ => AValue::TopInt,
    }
}
