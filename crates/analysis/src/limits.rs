//! Resource budgets for the abstract interpreter.
//!
//! The parser already bounds source size, token count, and nesting
//! depth, but the interpreter adds its own blow-up dimensions: every
//! method is an entry method, branches fork the environment, and local
//! helpers are inlined. A pathological (or adversarial) file can be
//! cheap to parse yet expensive to analyze, so the interpreter carries
//! a step budget ("fuel") that turns runaway analyses into a typed
//! [`AnalysisError`] instead of a stalled mining shard.

use std::fmt;

/// Budgets applied by [`crate::try_analyze`] to one compilation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisLimits {
    /// Maximum number of interpreter steps. One step is charged per
    /// statement executed and per expression evaluated; forking the
    /// environment at a branch charges its current size, so the budget
    /// bounds total work, not just AST visits.
    pub max_steps: u64,
    /// Maximum AST depth accepted. The interpreter recurses along the
    /// tree, so this guards the call stack against hand-built (not
    /// parser-produced) pathological inputs. Checked up front via
    /// [`javalang::visit::ast_depth`], which is iterative.
    pub max_ast_depth: usize,
}

impl AnalysisLimits {
    /// Default budgets: 2 million steps (well under a second of work,
    /// three orders of magnitude above any real corpus file) and AST
    /// depth 512 (the parser's own ceiling leaves real files far
    /// below this).
    pub const DEFAULT: AnalysisLimits = AnalysisLimits {
        max_steps: 2_000_000,
        max_ast_depth: 512,
    };

    /// No step budget and no depth pre-check — the legacy behaviour of
    /// [`crate::analyze`], for trusted fixture inputs.
    pub const UNBOUNDED: AnalysisLimits = AnalysisLimits {
        max_steps: u64::MAX,
        max_ast_depth: usize::MAX,
    };
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits::DEFAULT
    }
}

/// Why [`crate::try_analyze`] refused to produce usages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The interpreter ran out of fuel before finishing the unit.
    StepBudgetExceeded {
        /// The budget that was exhausted.
        max_steps: u64,
    },
    /// The unit's AST is deeper than the configured maximum; running
    /// the recursive interpreter on it could overflow the stack.
    AstTooDeep {
        /// Measured depth of the unit.
        depth: usize,
        /// The configured ceiling.
        max_depth: usize,
    },
}

impl AnalysisError {
    /// Stable machine-readable name of the error kind, used for
    /// per-kind quarantine accounting.
    pub fn name(&self) -> &'static str {
        match self {
            AnalysisError::StepBudgetExceeded { .. } => "analysis-steps",
            AnalysisError::AstTooDeep { .. } => "ast-too-deep",
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::StepBudgetExceeded { max_steps } => {
                write!(f, "analysis exceeded its budget of {max_steps} steps")
            }
            AnalysisError::AstTooDeep { depth, max_depth } => {
                write!(f, "AST depth {depth} exceeds the maximum of {max_depth}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}
