//! Abstract-interpretation semantics: each test pins one behaviour of
//! the analyzer on a realistic crypto snippet.

use absdomain::AValue;
use analysis::{analyze, ApiModel, Usages};

fn usages(src: &str) -> Usages {
    let unit = javalang::parse_compilation_unit(src).expect("parse");
    assert!(unit.diagnostics.is_empty(), "{:?}", unit.diagnostics);
    analyze(&unit, &ApiModel::standard())
}

fn first_arg_of(usages: &Usages, class: &str, method: &str) -> AValue {
    let site = usages.objects_of_type(class).next().unwrap_or_else(|| {
        panic!("no {class} object");
    });
    usages
        .events_of(site)
        .iter()
        .find(|e| &*e.method.name == method)
        .unwrap_or_else(|| panic!("no {method} on {class}"))
        .args[0]
        .clone()
}

#[test]
fn switch_arms_join() {
    let u = usages(
        r#"
        class C {
            void m(int mode) throws Exception {
                String algo;
                switch (mode) {
                    case 1: algo = "SHA-256"; break;
                    case 2: algo = "SHA-512"; break;
                    default: algo = "SHA-256"; break;
                }
                MessageDigest d = MessageDigest.getInstance(algo);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::TopStr,
        "different arms force the join to ⊤str"
    );
}

#[test]
fn switch_with_identical_arms_keeps_constant() {
    let u = usages(
        r#"
        class C {
            void m(int mode) throws Exception {
                String algo = "SHA-256";
                switch (mode) {
                    case 1: log(); break;
                    default: log2(); break;
                }
                MessageDigest d = MessageDigest.getInstance(algo);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::Str("SHA-256".into())
    );
}

#[test]
fn conditional_expression_joins() {
    let u = usages(
        r#"
        class C {
            void m(boolean strong) throws Exception {
                MessageDigest d =
                    MessageDigest.getInstance(strong ? "SHA-512" : "SHA-256");
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::TopStr
    );
}

#[test]
fn try_catch_fallback_joins() {
    let u = usages(
        r#"
        class C {
            void m() throws Exception {
                String algo = "SHA-256";
                try {
                    probe();
                } catch (Exception e) {
                    algo = "SHA-1";
                }
                MessageDigest d = MessageDigest.getInstance(algo);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::TopStr,
        "catch path must join into the fall-through state"
    );
}

#[test]
fn foreach_element_is_top() {
    let u = usages(
        r#"
        class C {
            void m(String[] algos) throws Exception {
                for (String algo : algos) {
                    MessageDigest d = MessageDigest.getInstance(algo);
                }
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::TopStr
    );
}

#[test]
fn string_array_constant_indexing() {
    let u = usages(
        r#"
        class C {
            void m(int i) throws Exception {
                String[] algos = { "SHA-256", "SHA-512" };
                MessageDigest d = MessageDigest.getInstance(algos[i]);
            }
        }
        "#,
    );
    // Element reads of even constant arrays are ⊤str (index unknown).
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::TopStr
    );
}

#[test]
fn compound_string_concat_in_loop_stays_sound() {
    let u = usages(
        r#"
        class C {
            void m() throws Exception {
                String algo = "AES";
                algo += "/CBC";
                algo += "/PKCS5Padding";
                Cipher c = Cipher.getInstance(algo);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "Cipher", "getInstance"),
        AValue::Str("AES/CBC/PKCS5Padding".into())
    );
}

#[test]
fn interprocedural_argument_flow() {
    let u = usages(
        r#"
        class C {
            private MessageDigest make(String algo) throws Exception {
                return MessageDigest.getInstance(algo);
            }
            void a() throws Exception { MessageDigest d = make("SHA-1"); }
        }
        "#,
    );
    // The helper is analyzed both standalone (algo = ⊤str) and inlined
    // from `a` (algo = "SHA-1"); the constant event must be present.
    let site = u.objects_of_type("MessageDigest").next().unwrap();
    let algos: Vec<String> = u
        .events_of(site)
        .iter()
        .filter(|e| &*e.method.name == "getInstance")
        .map(|e| e.args[0].label())
        .collect();
    assert!(algos.contains(&"SHA-1".to_owned()), "{algos:?}");
}

#[test]
fn helper_called_from_two_entries_merges_events() {
    let u = usages(
        r#"
        class C {
            private MessageDigest make(String algo) throws Exception {
                return MessageDigest.getInstance(algo);
            }
            void a() throws Exception { MessageDigest d = make("SHA-1"); }
            void b() throws Exception { MessageDigest d = make("SHA-256"); }
        }
        "#,
    );
    // Same allocation site, two distinct getInstance events.
    let site = u.objects_of_type("MessageDigest").next().unwrap();
    let algos: Vec<String> = u
        .events_of(site)
        .iter()
        .filter(|e| &*e.method.name == "getInstance")
        .map(|e| e.args[0].label())
        .collect();
    assert_eq!(u.objects_of_type("MessageDigest").count(), 1);
    assert!(algos.contains(&"SHA-1".to_owned()), "{algos:?}");
    assert!(algos.contains(&"SHA-256".to_owned()), "{algos:?}");
}

#[test]
fn field_mutation_through_helper_is_visible() {
    let u = usages(
        r#"
        class C {
            String algo = "SHA-1";
            private void upgrade() { algo = "SHA-256"; }
            void m() throws Exception {
                upgrade();
                MessageDigest d = MessageDigest.getInstance(algo);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::Str("SHA-256".into())
    );
}

#[test]
fn do_while_executes_body_once() {
    let u = usages(
        r#"
        class C {
            void m() throws Exception {
                do {
                    MessageDigest d = MessageDigest.getInstance("MD5");
                } while (retry());
            }
        }
        "#,
    );
    assert_eq!(u.objects_of_type("MessageDigest").count(), 1);
}

#[test]
fn static_call_on_fully_qualified_class() {
    let u = usages(
        r#"
        class C {
            void m() throws Exception {
                javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("DES");
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "Cipher", "getInstance"),
        AValue::Str("DES".into())
    );
}

#[test]
fn cipher_modes_via_api_constants() {
    let u = usages(
        r#"
        class C {
            void m(Key key) throws Exception {
                Cipher c = Cipher.getInstance("AES");
                c.init(Cipher.DECRYPT_MODE, key);
            }
        }
        "#,
    );
    let site = u.objects_of_type("Cipher").next().unwrap();
    let init = u
        .events_of(site)
        .iter()
        .find(|e| &*e.method.name == "init")
        .unwrap();
    assert_eq!(
        init.args[0],
        AValue::ApiConst {
            class: "Cipher".into(),
            name: "DECRYPT_MODE".into()
        }
    );
}

#[test]
fn int_arithmetic_folds_into_iteration_count() {
    let u = usages(
        r#"
        class C {
            void m(char[] pw, byte[] salt) {
                int base = 1 << 10;
                PBEKeySpec spec = new PBEKeySpec(pw, salt, base * 64, 256);
            }
        }
        "#,
    );
    let site = u.objects_of_type("PBEKeySpec").next().unwrap();
    assert_eq!(u.events_of(site)[0].args[2], AValue::Int(65536));
}

#[test]
fn array_store_of_runtime_byte_havocs_constness() {
    let u = usages(
        r#"
        class C {
            void m(byte b) {
                byte[] iv = new byte[16];
                iv[0] = b;
                IvParameterSpec spec = new IvParameterSpec(iv);
            }
        }
        "#,
    );
    let site = u.objects_of_type("IvParameterSpec").next().unwrap();
    assert_eq!(u.events_of(site)[0].args[0], AValue::TopByteArray);
}

#[test]
fn array_store_of_constant_byte_keeps_constness() {
    let u = usages(
        r#"
        class C {
            void m() {
                byte[] iv = new byte[16];
                iv[0] = 7;
                IvParameterSpec spec = new IvParameterSpec(iv);
            }
        }
        "#,
    );
    let site = u.objects_of_type("IvParameterSpec").next().unwrap();
    assert_eq!(u.events_of(site)[0].args[0], AValue::ConstByteArray);
}

#[test]
fn mac_and_keygenerator_are_tracked() {
    let u = usages(
        r#"
        class C {
            void m(byte[] data, Key k) throws Exception {
                Mac mac = Mac.getInstance("HmacSHA256");
                mac.init(k);
                KeyGenerator kg = KeyGenerator.getInstance("AES");
                kg.init(256);
            }
        }
        "#,
    );
    assert_eq!(u.objects_of_type("Mac").count(), 1);
    assert_eq!(u.objects_of_type("KeyGenerator").count(), 1);
    let kg = u.objects_of_type("KeyGenerator").next().unwrap();
    let init = u
        .events_of(kg)
        .iter()
        .find(|e| &*e.method.name == "init")
        .unwrap();
    assert_eq!(init.args[0], AValue::Int(256));
}

#[test]
fn partial_program_with_unknown_types_still_analyzes() {
    let u = usages(
        r#"
        class C extends SomeUnknownBase implements Weird {
            void m(MysteryType mystery) throws Exception {
                MessageDigest d = MessageDigest.getInstance("SHA-256");
                mystery.consume(d.digest(mystery.payload()));
            }
        }
        "#,
    );
    assert_eq!(u.objects_of_type("MessageDigest").count(), 1);
}

#[test]
fn anonymous_class_body_does_not_break_analysis() {
    let u = usages(
        r#"
        class C {
            void m() throws Exception {
                Runnable r = new Runnable() { public void run() { } };
                Cipher c = Cipher.getInstance("AES");
            }
        }
        "#,
    );
    assert_eq!(u.objects_of_type("Cipher").count(), 1);
}

#[test]
fn constants_holder_class_resolves_across_classes() {
    let u = usages(
        r#"
        class Constants {
            static final String HASH_ALGO = "SHA-1";
            static final byte[] SHARED_IV = { 1, 2, 3, 4 };
        }
        class Worker {
            void m() throws Exception {
                MessageDigest d = MessageDigest.getInstance(Constants.HASH_ALGO);
                IvParameterSpec iv = new IvParameterSpec(Constants.SHARED_IV);
            }
        }
        "#,
    );
    assert_eq!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::Str("SHA-1".into())
    );
    let iv = u.objects_of_type("IvParameterSpec").next().unwrap();
    assert_eq!(
        u.events_of(iv)[0].args[0],
        AValue::ConstByteArray,
        "a shared hard-coded IV is still constant material"
    );
}

#[test]
fn non_final_cross_class_fields_stay_unknown() {
    let u = usages(
        r#"
        class Config { static String algo = "SHA-1"; }
        class Worker {
            void m() throws Exception {
                MessageDigest d = MessageDigest.getInstance(Config.algo);
            }
        }
        "#,
    );
    // Mutable statics are not constants; the analyzer must not assume
    // the initializer value.
    assert_ne!(
        first_arg_of(&u, "MessageDigest", "getInstance"),
        AValue::Str("SHA-1".into())
    );
}
