//! The resident server: listener, bounded admission queue, fixed
//! worker pool, per-request panic isolation, and graceful drain.
//!
//! Life of a connection:
//!
//! 1. The accept loop (nonblocking, polled so shutdown is observed
//!    within one tick) counts it `serve.accepted`, then either enqueues
//!    it or — past the queue watermark — sheds it on the spot with
//!    `429` + `Retry-After` (`serve.shed`).
//! 2. A worker pops it, reads the request under the per-request
//!    deadline ([`crate::http`]), and dispatches
//!    ([`crate::handlers`]) inside `catch_unwind`: a handler panic
//!    becomes a `500` with quarantine-style provenance and counts
//!    `serve.failed`; the worker survives. Everything else — including
//!    clean `4xx` rejections of malformed input — counts
//!    `serve.completed`.
//! 3. On shutdown (SIGINT/SIGTERM via [`diffcode::shutdown`], or a
//!    programmatic stop flag) the listener closes, queued connections
//!    drain under the drain deadline (whatever the deadline catches
//!    still queued is shed with `503`), the mining and cluster caches
//!    flush their append logs, and the counters are returned as a
//!    [`ServeSummary`].
//!
//! The accounting partition `accepted = completed + shed + failed`
//! holds exactly whenever the server is idle or stopped — it is checked
//! by the soak harness and rendered by `GET /metrics`.

use crate::handlers::{self, WorkerCtx};
use crate::http::{self, HttpCaps, Response};
use crate::ring::ExplainRing;
use diffcode::quarantine::PipelineLimits;
use diffcode::MiningCache;
use obs::MetricsRegistry;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Everything `diffcode serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Mining-cache directory; `None` serves without a cache.
    pub cache_dir: Option<PathBuf>,
    /// Cluster-cache directory (distance cells persisted by
    /// `diffcode mine --cluster-cache-dir`); `None` disables
    /// `GET /cluster/stats`.
    pub cluster_cache_dir: Option<PathBuf>,
    /// Directory of cloned repositories `POST /mine-repo` may walk;
    /// `None` (the default) disables the endpoint entirely. Requests
    /// name a repository relative to this root and can never escape it.
    pub repo_root: Option<PathBuf>,
    /// Per-request read deadline, milliseconds.
    pub deadline_ms: u64,
    /// Admission-queue watermark: connections beyond this are shed.
    pub queue_depth: usize,
    /// Drain deadline at shutdown, milliseconds.
    pub drain_ms: u64,
    /// `/explain` ring capacity.
    pub ring_capacity: usize,
    /// HTTP size caps.
    pub caps: HttpCaps,
    /// Honors the `X-Chaos-Sleep-Ms` / `X-Chaos-Panic` test headers.
    /// Off in production; the soak harness turns it on.
    pub chaos_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8091".to_owned(),
            threads: 4,
            cache_dir: None,
            cluster_cache_dir: None,
            repo_root: None,
            deadline_ms: 2_000,
            queue_depth: 64,
            drain_ms: 5_000,
            ring_capacity: 256,
            caps: HttpCaps::DEFAULT,
            chaos_hooks: false,
        }
    }
}

/// Final accounting returned when the server stops.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests answered (2xx and clean 4xx alike).
    pub completed: u64,
    /// Requests shed (429 at the watermark, 503 at drain).
    pub shed: u64,
    /// Requests failed (500: handler panic or internal error).
    pub failed: u64,
    /// Cache entries flushed over the server's lifetime (per-request
    /// flushes plus the final drain flush).
    pub flushed_entries: u64,
    /// The full final metrics registry.
    pub registry: MetricsRegistry,
}

impl Default for ServeSummary {
    fn default() -> Self {
        ServeSummary {
            accepted: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            flushed_entries: 0,
            registry: MetricsRegistry::new(),
        }
    }
}

/// State shared by the accept loop, the workers, and the handlers.
pub struct Shared {
    /// The server configuration.
    pub config: ServeConfig,
    /// The single metrics registry behind `GET /metrics`.
    pub registry: Mutex<MetricsRegistry>,
    /// The hot mining cache, when configured.
    pub cache: Option<RwLock<MiningCache>>,
    /// The persisted clustering distance cells, when configured.
    pub cluster_cache: Option<RwLock<diffcode::ClusterCache>>,
    /// The `/explain` verdict journal.
    pub ring: Mutex<ExplainRing>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
}

impl Shared {
    /// `true` once shutdown has begun (readiness goes 503).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Runs `f` on the locked registry, recovering a poisoned lock
    /// (metrics are monotone counters; a panicked writer cannot leave
    /// them torn in a way that matters more than losing them).
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        let mut guard = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

/// A running server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the drain to finish.
    pub fn shutdown(self) -> ServeSummary {
        self.stop.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the server to stop on its own (signal-triggered).
    /// If the server thread itself panicked there is no accounting to
    /// report and the default (all-zero) summary comes back.
    pub fn join(self) -> ServeSummary {
        self.thread.join().unwrap_or_default()
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `config.addr`, opens the cache (strict open: a corrupt
    /// mid-log fails loudly with the `cache verify` hint), and spawns
    /// the accept loop plus worker pool. Returns immediately.
    ///
    /// # Errors
    ///
    /// Bind failures and cache-open failures.
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("configuring listener: {e}"))?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(RwLock::new(
                // Same configuration as a one-shot `diffcode mine`
                // run, so served verdicts and mined ones share keys.
                MiningCache::open(
                    dir,
                    &[],
                    &PipelineLimits::DEFAULT,
                    usagegraph::DEFAULT_MAX_DEPTH,
                )
                .map_err(|e| format!("opening cache at {}: {e}", dir.display()))?,
            )),
            None => None,
        };

        let cluster_cache = match &config.cluster_cache_dir {
            Some(dir) => Some(RwLock::new(
                // Same configuration as `diffcode mine
                // --cluster-cache-dir`, so the served stats describe
                // exactly the cells mining runs read and write.
                diffcode::ClusterCache::open_default(dir)
                    .map_err(|e| format!("opening cluster cache at {}: {e}", dir.display()))?,
            )),
            None => None,
        };

        let shared = Arc::new(Shared {
            ring: Mutex::new(ExplainRing::new(config.ring_capacity)),
            registry: Mutex::new(MetricsRegistry::new()),
            cache,
            cluster_cache,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            config,
        });

        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || run(listener, shared, &stop))
                .map_err(|e| format!("spawning server thread: {e}"))?
        };
        Ok(ServerHandle { addr, stop, thread })
    }
}

/// The accept loop + drain sequence (runs on the server thread).
fn run(listener: TcpListener, shared: Arc<Shared>, stop: &AtomicBool) -> ServeSummary {
    let workers: Vec<_> = (0..shared.config.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect();

    while !stop.load(Ordering::SeqCst) && !diffcode::shutdown::requested() {
        match listener.accept() {
            Ok((stream, _peer)) => admit(&shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);

    // Drain: workers keep answering queued requests until the queue is
    // empty; whatever the drain deadline catches still queued is shed
    // with a fast 503 inside the workers.
    {
        let mut deadline = shared
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *deadline = Some(Instant::now() + Duration::from_millis(shared.config.drain_ms));
    }
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    for handle in workers.into_iter().flatten() {
        let _ = handle.join();
    }

    // Flush the cache append logs so a restart starts warm.
    let mut flushed = 0u64;
    if let Some(lock) = &shared.cache {
        let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
        match cache.flush() {
            Ok(n) => flushed = n as u64,
            Err(_) => shared.with_registry(|r| r.inc("serve.cache_flush_errors", 1)),
        }
    }
    if let Some(lock) = &shared.cluster_cache {
        let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
        match cache.flush() {
            Ok(n) => shared.with_registry(|r| r.inc("cluster.cache.flushed_entries", n as u64)),
            Err(_) => shared.with_registry(|r| r.inc("serve.cluster_cache_flush_errors", 1)),
        }
    }

    shared.with_registry(|r| {
        r.inc("cache.flushed_entries", flushed);
        ServeSummary {
            accepted: r.counter("serve.accepted"),
            completed: r.counter("serve.completed"),
            shed: r.counter("serve.shed"),
            failed: r.counter("serve.failed"),
            flushed_entries: r.counter("cache.flushed_entries"),
            registry: r.clone(),
        }
    })
}

/// Counts and enqueues one accepted connection, or sheds it with 429
/// when the queue is at the watermark.
fn admit(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    shared.with_registry(|r| r.inc("serve.accepted", 1));
    let rejected = {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= shared.config.queue_depth {
            Some(stream)
        } else {
            queue.push_back(stream);
            let len = queue.len();
            shared.with_registry(|r| r.set_gauge("serve.queue_depth", len as f64));
            None
        }
    };
    match rejected {
        None => shared.queue_cv.notify_one(),
        Some(mut stream) => {
            // Past the watermark: shed on the accept thread. The write
            // is bounded by the socket write timeout, so a client that
            // refuses to read its 429 cannot stall accepts for long.
            let mut resp = Response::json(
                429,
                "{\"error\":\"admission queue is full, retry shortly\"}".to_owned(),
            );
            resp.retry_after = Some(1);
            let _ = http::write_response(&mut stream, &resp);
            shared.with_registry(|r| {
                r.inc("serve.shed", 1);
                r.inc("serve.http_429", 1);
            });
        }
    }
}

/// One worker: pop, handle under `catch_unwind`, count, repeat — until
/// the queue runs dry during drain.
fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerCtx::new();
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(stream) = conn else { break };
        handle_connection(shared, &mut ctx, stream);
    }
}

/// Where one finished connection lands in the accounting partition.
/// (Shed connections are counted at their shed site — the 429
/// watermark rejection or the drain-deadline 503 — and never get here.)
enum Disposition {
    Completed,
    Failed,
}

fn handle_connection(shared: &Shared, ctx: &mut WorkerCtx, mut stream: TcpStream) {
    // Past the drain deadline: fast 503, no parsing.
    let past_drain = shared.draining()
        && shared
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some_and(|d| Instant::now() >= d);
    if past_drain {
        let mut resp = Response::json(503, "{\"error\":\"server is draining\"}".to_owned());
        resp.retry_after = Some(1);
        let _ = http::write_response(&mut stream, &resp);
        shared.with_registry(|r| {
            r.inc("serve.shed", 1);
            r.inc("serve.http_503", 1);
        });
        return;
    }

    let deadline = Instant::now() + Duration::from_millis(shared.config.deadline_ms);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        match http::read_request(&mut stream, deadline, &shared.config.caps) {
            Ok(req) => {
                let resp = handlers::handle(&req, shared, ctx);
                Some(resp)
            }
            Err(err) => {
                shared.with_registry(|r| r.inc(&format!("serve.recv_{}", err.name()), 1));
                err.status()
                    .map(|(status, msg)| Response::text(status, msg))
            }
        }
    }));

    let disposition = match outcome {
        Ok(Some(resp)) => {
            let status = resp.status;
            let delivered = http::write_response(&mut stream, &resp).is_ok();
            shared.with_registry(|r| {
                r.inc(&format!("serve.http_{status}"), 1);
                if !delivered {
                    r.inc("serve.response_write_errors", 1);
                }
            });
            if status == 500 {
                Disposition::Failed
            } else {
                Disposition::Completed
            }
        }
        // Peer vanished before sending a request; cleanly done.
        Ok(None) => Disposition::Completed,
        Err(payload) => {
            // A panic escaped a handler: the worker survives, the
            // client gets a 500 carrying quarantine-style provenance.
            let msg = panic_message(payload.as_ref());
            let body = crate::json::Json::Obj(vec![
                (
                    "error".to_owned(),
                    crate::json::Json::Str("internal error: handler panicked".to_owned()),
                ),
                (
                    "quarantine".to_owned(),
                    crate::json::Json::Obj(vec![
                        (
                            "kind".to_owned(),
                            crate::json::Json::Str("panic".to_owned()),
                        ),
                        ("error".to_owned(), crate::json::Json::Str(msg)),
                    ]),
                ),
            ]);
            let _ = http::write_response(&mut stream, &Response::json(500, body.render()));
            shared.with_registry(|r| r.inc("serve.http_500", 1));
            Disposition::Failed
        }
    };

    shared.with_registry(|r| match disposition {
        Disposition::Completed => r.inc("serve.completed", 1),
        Disposition::Failed => r.inc("serve.failed", 1),
    });
}

/// Extracts the message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
