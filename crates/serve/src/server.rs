//! The resident server: listener, bounded admission queue, fixed
//! worker pool, per-request panic isolation, and graceful drain.
//!
//! Life of a connection:
//!
//! 1. The accept loop (nonblocking, polled so shutdown is observed
//!    within one tick) counts it `serve.accepted`, then either enqueues
//!    it or — past the queue watermark — sheds it on the spot with
//!    `429` + `Retry-After` (`serve.shed`).
//! 2. A worker pops it, reads the request under the per-request
//!    deadline ([`crate::http`]), and dispatches
//!    ([`crate::handlers`]) inside `catch_unwind`: a handler panic
//!    becomes a `500` with quarantine-style provenance and counts
//!    `serve.failed`; the worker survives. Everything else — including
//!    clean `4xx` rejections of malformed input — counts
//!    `serve.completed`.
//! 3. On shutdown (SIGINT/SIGTERM via [`diffcode::shutdown`], or a
//!    programmatic stop flag) the listener closes, queued connections
//!    drain under the drain deadline (whatever the deadline catches
//!    still queued is shed with `503`), the mining and cluster caches
//!    flush their append logs, and the counters are returned as a
//!    [`ServeSummary`].
//!
//! The accounting partition `accepted = completed + shed + failed`
//! holds exactly whenever the server is idle or stopped — it is checked
//! by the soak harness and rendered by `GET /metrics`.

use crate::handlers::{self, WorkerCtx};
use crate::http::{self, HttpCaps, Response};
use crate::ring::ExplainRing;
use diffcode::quarantine::PipelineLimits;
use diffcode::MiningCache;
use obs::{LogLevel, Logger, MetricsRegistry, TraceSink};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Everything `diffcode serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Mining-cache directory; `None` serves without a cache.
    pub cache_dir: Option<PathBuf>,
    /// Cluster-cache directory (distance cells persisted by
    /// `diffcode mine --cluster-cache-dir`); `None` disables
    /// `GET /cluster/stats`.
    pub cluster_cache_dir: Option<PathBuf>,
    /// Directory of cloned repositories `POST /mine-repo` may walk;
    /// `None` (the default) disables the endpoint entirely. Requests
    /// name a repository relative to this root and can never escape it.
    pub repo_root: Option<PathBuf>,
    /// Per-request read deadline, milliseconds.
    pub deadline_ms: u64,
    /// Admission-queue watermark: connections beyond this are shed.
    pub queue_depth: usize,
    /// Drain deadline at shutdown, milliseconds.
    pub drain_ms: u64,
    /// `/explain` ring capacity.
    pub ring_capacity: usize,
    /// HTTP size caps.
    pub caps: HttpCaps,
    /// Honors the `X-Chaos-Sleep-Ms` / `X-Chaos-Panic` test headers.
    /// Off in production; the soak harness turns it on.
    pub chaos_hooks: bool,
    /// The structured logger every request and lifecycle event goes
    /// through. Cloning shares the underlying writer, so the binary can
    /// keep a handle for its own boot/drain events. Disabled by default
    /// (library embedders opt in); the `diffcode-serve` binary enables
    /// a stderr JSON logger unless told otherwise.
    pub logger: Logger,
    /// How many trace events `GET /trace/capture` retains (oldest
    /// evicted first). The capture sink records one instant per
    /// finished request plus lifecycle markers, so memory stays
    /// bounded no matter how long the server runs.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8091".to_owned(),
            threads: 4,
            cache_dir: None,
            cluster_cache_dir: None,
            repo_root: None,
            deadline_ms: 2_000,
            queue_depth: 64,
            drain_ms: 5_000,
            ring_capacity: 256,
            caps: HttpCaps::DEFAULT,
            chaos_hooks: false,
            logger: Logger::disabled(),
            trace_capacity: 2_048,
        }
    }
}

/// Final accounting returned when the server stops.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests answered (2xx and clean 4xx alike).
    pub completed: u64,
    /// Requests shed (429 at the watermark, 503 at drain).
    pub shed: u64,
    /// Requests failed (500: handler panic or internal error).
    pub failed: u64,
    /// Cache entries flushed over the server's lifetime (per-request
    /// flushes plus the final drain flush).
    pub flushed_entries: u64,
    /// The full final metrics registry.
    pub registry: MetricsRegistry,
}

impl Default for ServeSummary {
    fn default() -> Self {
        ServeSummary {
            accepted: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            flushed_entries: 0,
            registry: MetricsRegistry::new(),
        }
    }
}

/// State shared by the accept loop, the workers, and the handlers.
pub struct Shared {
    /// The server configuration.
    pub config: ServeConfig,
    /// The single metrics registry behind `GET /metrics`.
    pub registry: Mutex<MetricsRegistry>,
    /// The hot mining cache, when configured.
    pub cache: Option<RwLock<MiningCache>>,
    /// The persisted clustering distance cells, when configured.
    pub cluster_cache: Option<RwLock<diffcode::ClusterCache>>,
    /// The `/explain` verdict journal.
    pub ring: Mutex<ExplainRing>,
    /// The structured logger (clone of `config.logger`).
    pub log: Logger,
    /// The bounded capture sink behind `GET /trace/capture`: one
    /// instant per finished request, truncated to
    /// `config.trace_capacity` after each push.
    pub trace: Mutex<TraceSink>,
    /// When the server started (uptime for `GET /status`).
    pub started: Instant,
    next_request_id: AtomicU64,
    queue: Mutex<VecDeque<Conn>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
}

/// One admitted connection waiting for a worker, tagged with the
/// request id and admission timestamp that thread through the access
/// log, the explain ring, and quarantine provenance.
struct Conn {
    stream: TcpStream,
    id: u64,
    accepted: Instant,
}

impl Shared {
    /// `true` once shutdown has begun (readiness goes 503).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Current admission-queue depth (for `GET /status`).
    pub fn queue_len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Runs `f` on the locked registry, recovering a poisoned lock
    /// (metrics are monotone counters; a panicked writer cannot leave
    /// them torn in a way that matters more than losing them).
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        let mut guard = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }
}

/// A running server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the drain to finish.
    pub fn shutdown(self) -> ServeSummary {
        self.stop.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the server to stop on its own (signal-triggered).
    /// If the server thread itself panicked there is no accounting to
    /// report and the default (all-zero) summary comes back.
    pub fn join(self) -> ServeSummary {
        self.thread.join().unwrap_or_default()
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `config.addr`, opens the cache (strict open: a corrupt
    /// mid-log fails loudly with the `cache verify` hint), and spawns
    /// the accept loop plus worker pool. Returns immediately.
    ///
    /// # Errors
    ///
    /// Bind failures and cache-open failures.
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("configuring listener: {e}"))?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(RwLock::new(
                // Same configuration as a one-shot `diffcode mine`
                // run, so served verdicts and mined ones share keys.
                MiningCache::open(
                    dir,
                    &[],
                    &PipelineLimits::DEFAULT,
                    usagegraph::DEFAULT_MAX_DEPTH,
                )
                .map_err(|e| format!("opening cache at {}: {e}", dir.display()))?,
            )),
            None => None,
        };

        let cluster_cache = match &config.cluster_cache_dir {
            Some(dir) => Some(RwLock::new(
                // Same configuration as `diffcode mine
                // --cluster-cache-dir`, so the served stats describe
                // exactly the cells mining runs read and write.
                diffcode::ClusterCache::open_default(dir)
                    .map_err(|e| format!("opening cluster cache at {}: {e}", dir.display()))?,
            )),
            None => None,
        };

        let shared = Arc::new(Shared {
            ring: Mutex::new(ExplainRing::new(config.ring_capacity)),
            registry: Mutex::new(MetricsRegistry::new()),
            cache,
            cluster_cache,
            log: config.logger.clone(),
            trace: Mutex::new(TraceSink::enabled(1)),
            started: Instant::now(),
            next_request_id: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            config,
        });

        shared
            .log
            .event(LogLevel::Info, "serve.boot")
            .str("addr", &addr.to_string())
            .u64("threads", shared.config.threads.max(1) as u64)
            .bool("cache", shared.cache.is_some())
            .bool("cluster_cache", shared.cluster_cache.is_some())
            .str("version", env!("CARGO_PKG_VERSION"))
            .emit();
        trace_instant(&shared, "serve.boot", |a| {
            a.str("addr", addr.to_string());
        });

        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || run(listener, shared, &stop))
                .map_err(|e| format!("spawning server thread: {e}"))?
        };
        Ok(ServerHandle { addr, stop, thread })
    }
}

/// The accept loop + drain sequence (runs on the server thread).
fn run(listener: TcpListener, shared: Arc<Shared>, stop: &AtomicBool) -> ServeSummary {
    let workers: Vec<_> = (0..shared.config.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect();

    while !stop.load(Ordering::SeqCst) && !diffcode::shutdown::requested() {
        match listener.accept() {
            Ok((stream, _peer)) => admit(&shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);

    // Drain: workers keep answering queued requests until the queue is
    // empty; whatever the drain deadline catches still queued is shed
    // with a fast 503 inside the workers.
    {
        let mut deadline = shared
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *deadline = Some(Instant::now() + Duration::from_millis(shared.config.drain_ms));
    }
    shared.draining.store(true, Ordering::SeqCst);
    shared
        .log
        .event(LogLevel::Info, "serve.drain")
        .u64(
            "accepted",
            shared.with_registry(|r| r.counter("serve.accepted")),
        )
        .u64("queued", shared.queue_len() as u64)
        .u64("drain_ms", shared.config.drain_ms)
        .emit();
    trace_instant(&shared, "serve.drain", |_| {});
    shared.queue_cv.notify_all();
    for handle in workers.into_iter().flatten() {
        let _ = handle.join();
    }

    // Flush the cache append logs so a restart starts warm.
    let mut flushed = 0u64;
    if let Some(lock) = &shared.cache {
        let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
        match cache.flush() {
            Ok(n) => flushed = n as u64,
            Err(_) => shared.with_registry(|r| r.inc("serve.cache_flush_errors", 1)),
        }
        shared
            .log
            .event(LogLevel::Info, "serve.cache_flush")
            .str("cache", "mining")
            .u64("entries", flushed)
            .emit();
    }
    if let Some(lock) = &shared.cluster_cache {
        let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
        let entries = match cache.flush() {
            Ok(n) => {
                shared.with_registry(|r| r.inc("cluster.cache.flushed_entries", n as u64));
                n as u64
            }
            Err(_) => {
                shared.with_registry(|r| r.inc("serve.cluster_cache_flush_errors", 1));
                0
            }
        };
        shared
            .log
            .event(LogLevel::Info, "serve.cache_flush")
            .str("cache", "cluster")
            .u64("entries", entries)
            .emit();
    }

    let summary = shared.with_registry(|r| {
        r.inc("cache.flushed_entries", flushed);
        r.set_gauge("serve.log_emitted", shared.log.emitted() as f64);
        r.set_gauge("serve.log_dropped", shared.log.dropped() as f64);
        ServeSummary {
            accepted: r.counter("serve.accepted"),
            completed: r.counter("serve.completed"),
            shed: r.counter("serve.shed"),
            failed: r.counter("serve.failed"),
            flushed_entries: r.counter("cache.flushed_entries"),
            registry: r.clone(),
        }
    });
    shared
        .log
        .event(LogLevel::Info, "serve.drained")
        .u64("accepted", summary.accepted)
        .u64("completed", summary.completed)
        .u64("shed", summary.shed)
        .u64("failed", summary.failed)
        .u64("flushed_entries", summary.flushed_entries)
        .emit();
    // Bounded wait: a wedged writer must not stall shutdown forever.
    shared.log.sync(Duration::from_secs(2));
    summary
}

/// Appends one instant to the bounded capture sink.
fn trace_instant(shared: &Shared, name: &str, fill: impl FnOnce(&mut obs::AttrSet)) {
    let mut trace = shared.trace.lock().unwrap_or_else(PoisonError::into_inner);
    trace.instant_with(name, fill);
    let keep = shared.config.trace_capacity.max(1);
    trace.truncate_oldest(keep);
}

/// The per-endpoint span label for a request path: `serve.request.<label>`.
/// Unknown paths collapse into `other` so a URL-guessing client cannot
/// grow the registry without bound.
pub(crate) fn endpoint_label(path: &str) -> &'static str {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/mine" => "mine",
        "/mine-repo" => "mine_repo",
        "/check" => "check",
        "/metrics" => "metrics",
        "/cluster/stats" => "cluster_stats",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/status" => "status",
        "/trace/capture" => "trace_capture",
        _ if path.starts_with("/explain/") => "explain",
        _ => "other",
    }
}

/// Emits the full per-request observability record: the latency into
/// the `serve.request` histograms (overall and per endpoint), one
/// access-log line, and one bounded trace instant. Every accepted
/// connection — answered, shed, or panicked — lands here exactly once,
/// so access-log records partition the same way the counters do.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    shared: &Shared,
    id: u64,
    method: &str,
    path: &str,
    status: u16,
    latency: Duration,
    bytes: usize,
    outcome: &'static str,
) {
    let endpoint = if path == "-" {
        None
    } else {
        Some(endpoint_label(path))
    };
    let latency_ns = latency.as_nanos().min(u64::MAX as u128) as u64;
    shared.with_registry(|r| {
        r.record_span("serve.request", latency);
        if let Some(endpoint) = endpoint {
            r.record_span(&format!("serve.request.{endpoint}"), latency);
        }
    });
    let level = match outcome {
        "ok" => LogLevel::Info,
        "panic" => LogLevel::Error,
        _ => LogLevel::Warn,
    };
    shared
        .log
        .event(level, "serve.access")
        .u64("request_id", id)
        .str("method", method)
        .str("path", path)
        .str("endpoint", endpoint.unwrap_or("-"))
        .u64("status", u64::from(status))
        .u64("latency_ns", latency_ns)
        .u64("bytes", bytes as u64)
        .str("outcome", outcome)
        .emit();
    trace_instant(shared, "serve.request", |a| {
        a.u64("request_id", id)
            .str("endpoint", endpoint.unwrap_or("-"))
            .u64("status", u64::from(status))
            .u64("latency_ns", latency_ns)
            .str("outcome", outcome);
    });
}

/// Counts and enqueues one accepted connection, or sheds it with 429
/// when the queue is at the watermark.
fn admit(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
    let accepted = Instant::now();
    shared.with_registry(|r| r.inc("serve.accepted", 1));
    let rejected = {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= shared.config.queue_depth {
            Some(stream)
        } else {
            queue.push_back(Conn {
                stream,
                id,
                accepted,
            });
            let len = queue.len();
            shared.with_registry(|r| r.set_gauge("serve.queue_depth", len as f64));
            None
        }
    };
    match rejected {
        None => shared.queue_cv.notify_one(),
        Some(mut stream) => {
            // Past the watermark: shed on the accept thread. The write
            // is bounded by the socket write timeout, so a client that
            // refuses to read its 429 cannot stall accepts for long.
            let mut resp = Response::json(
                429,
                "{\"error\":\"admission queue is full, retry shortly\"}".to_owned(),
            );
            resp.retry_after = Some(1);
            let bytes = resp.body.len();
            let _ = http::write_response(&mut stream, &resp);
            shared.with_registry(|r| {
                r.inc("serve.shed", 1);
                r.inc("serve.http_429", 1);
            });
            finish_request(shared, id, "-", "-", 429, accepted.elapsed(), bytes, "shed");
        }
    }
}

/// One worker: pop, handle under `catch_unwind`, count, repeat — until
/// the queue runs dry during drain.
fn worker_loop(shared: &Shared) {
    let mut ctx = WorkerCtx::new();
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(conn) = conn else { break };
        handle_connection(shared, &mut ctx, conn);
    }
}

/// Where one finished connection lands in the accounting partition.
/// (Shed connections are counted at their shed site — the 429
/// watermark rejection or the drain-deadline 503 — and never get here.)
enum Disposition {
    Completed,
    Failed,
}

fn handle_connection(shared: &Shared, ctx: &mut WorkerCtx, conn: Conn) {
    let Conn {
        mut stream,
        id,
        accepted,
    } = conn;
    // Past the drain deadline: fast 503, no parsing.
    let past_drain = shared.draining()
        && shared
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some_and(|d| Instant::now() >= d);
    if past_drain {
        let mut resp = Response::json(503, "{\"error\":\"server is draining\"}".to_owned());
        resp.retry_after = Some(1);
        let bytes = resp.body.len();
        let _ = http::write_response(&mut stream, &resp);
        shared.with_registry(|r| {
            r.inc("serve.shed", 1);
            r.inc("serve.http_503", 1);
        });
        finish_request(shared, id, "-", "-", 503, accepted.elapsed(), bytes, "shed");
        return;
    }

    let deadline = Instant::now() + Duration::from_millis(shared.config.deadline_ms);
    let mut req_line: Option<(String, String)> = None;
    let mut deadline_hit = false;
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        match http::read_request(&mut stream, deadline, &shared.config.caps) {
            Ok(req) => {
                req_line = Some((req.method.clone(), req.path.clone()));
                let resp = handlers::handle(&req, shared, ctx, id);
                Some(resp)
            }
            Err(err) => {
                deadline_hit = err == http::RecvError::Deadline;
                shared.with_registry(|r| r.inc(&format!("serve.recv_{}", err.name()), 1));
                err.status()
                    .map(|(status, msg)| Response::text(status, msg))
            }
        }
    }));

    let (disposition, status, bytes) = match outcome {
        Ok(Some(resp)) => {
            let status = resp.status;
            let bytes = resp.body.len();
            let delivered = http::write_response(&mut stream, &resp).is_ok();
            shared.with_registry(|r| {
                r.inc(&format!("serve.http_{status}"), 1);
                if !delivered {
                    r.inc("serve.response_write_errors", 1);
                }
            });
            if status == 500 {
                (Disposition::Failed, status, bytes)
            } else {
                (Disposition::Completed, status, bytes)
            }
        }
        // Peer vanished before sending a request; cleanly done.
        Ok(None) => (Disposition::Completed, 0, 0),
        Err(payload) => {
            // A panic escaped a handler: the worker survives, the
            // client gets a 500 carrying quarantine-style provenance
            // stamped with the request id the access log records.
            let msg = panic_message(payload.as_ref());
            let body = crate::json::Json::Obj(vec![
                (
                    "error".to_owned(),
                    crate::json::Json::Str("internal error: handler panicked".to_owned()),
                ),
                ("request_id".to_owned(), crate::json::Json::Num(id as f64)),
                (
                    "quarantine".to_owned(),
                    crate::json::Json::Obj(vec![
                        (
                            "kind".to_owned(),
                            crate::json::Json::Str("panic".to_owned()),
                        ),
                        ("error".to_owned(), crate::json::Json::Str(msg)),
                    ]),
                ),
            ]);
            let resp = Response::json(500, body.render());
            let bytes = resp.body.len();
            let _ = http::write_response(&mut stream, &resp);
            shared.with_registry(|r| r.inc("serve.http_500", 1));
            (Disposition::Failed, 500, bytes)
        }
    };

    shared.with_registry(|r| match disposition {
        Disposition::Completed => r.inc("serve.completed", 1),
        Disposition::Failed => r.inc("serve.failed", 1),
    });
    let (method, path) = req_line.unwrap_or_else(|| ("-".to_owned(), "-".to_owned()));
    let result = match disposition {
        Disposition::Failed => "panic",
        Disposition::Completed if deadline_hit => "deadline",
        Disposition::Completed => "ok",
    };
    finish_request(
        shared,
        id,
        &method,
        &path,
        status,
        accepted.elapsed(),
        bytes,
        result,
    );
}

/// Extracts the message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
