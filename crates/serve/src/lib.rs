//! `diffcode serve`: a resident mining/checking service.
//!
//! One-shot `diffcode mine` pays cold-start on every invocation:
//! process spawn, cache open, first-touch of every interning table.
//! This crate keeps all of that hot in one process behind a std-only
//! HTTP/1.1 server — no async runtime, no TLS, no dependencies — and
//! wraps it in a full robustness envelope:
//!
//! - **Deadlines**: every request read races a per-request deadline
//!   ([`http`]); compute is bounded by the pipeline's own fuel budgets,
//!   so a 10 MB "Java file" or pathological nesting quarantines the
//!   request, never the worker.
//! - **Bounded admission**: a fixed queue with load shedding — past the
//!   watermark, clients get `429` + `Retry-After` instead of latency.
//! - **Panic isolation**: `catch_unwind` per request; a handler panic
//!   is a `500` with quarantine provenance and a surviving worker.
//! - **Graceful shutdown**: SIGTERM/Ctrl-C stops accepting, drains
//!   in-flight work under a drain deadline, and flushes the mining
//!   cache's append log.
//! - **Exact accounting**: `accepted = completed + shed + failed` is an
//!   invariant checked by the soak harness and visible in
//!   `GET /metrics`.
//!
//! The endpoints and their semantics live in [`handlers`]; the
//! connection lifecycle in [`server`].

#![warn(missing_docs)]

pub mod handlers;
pub mod http;
pub mod json;
pub mod ring;
pub mod server;

pub use http::{HttpCaps, Request, Response};
pub use json::Json;
pub use ring::{ExplainRecord, ExplainRing};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
