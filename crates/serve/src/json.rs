//! A minimal JSON codec for the service boundary.
//!
//! The workspace is zero-dependency, so the server carries its own
//! parser and renderer: a strict recursive-descent reader with a depth
//! budget (malicious nesting returns a typed error, never a stack
//! overflow) and a deterministic writer (object keys render in
//! insertion order, floats via Rust's shortest round-trip format).
//! Inputs are already bounded by the HTTP body cap before they reach
//! the parser, so the only in-parser budget needed is depth.

use std::fmt;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no non-finite numbers; null is the honest rendering.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as one JSON value with trailing whitespace only.
///
/// # Errors
///
/// Any syntax violation, nesting beyond [`MAX_DEPTH`], or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_keyword(&mut self, word: &str, message: &'static str) -> Result<(), JsonError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self
                .eat_keyword("null", "expected null")
                .map(|()| Json::Null),
            Some(b't') => self
                .eat_keyword("true", "expected true")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat_keyword("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str, so a
                    // char starts here by construction.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    match std::str::from_utf8(rest.get(..len).unwrap_or_default()) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos += len;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a paired \uXXXX low surrogate.
            self.eat(b'\\', "expected low surrogate")?;
            self.eat(b'u', "expected low surrogate")?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// The byte length of the UTF-8 scalar starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let text = r#"{"old":"class A {}","n":3,"f":1.5,"ok":true,"skip":null,"xs":[1,2]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("old").and_then(Json::as_str), Some("class A {}"));
        assert_eq!(v.get("n"), Some(&Json::Num(3.0)));
        assert_eq!(v.get("skip"), Some(&Json::Null));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}é\u{1F510}".to_owned());
        assert_eq!(parse(&v.render()).unwrap(), v);
        let surrogate = r#""🔐""#;
        assert_eq!(parse(surrogate).unwrap(), Json::Str("\u{1F510}".to_owned()));
    }

    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            "tru",
            "1e999",
            "\"\u{1}\"",
            r#""\ud800x""#,
            "{} {}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_budget_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok(), "the budget boundary is exact");
    }
}
