//! A bounded in-memory journal of served `/mine` verdicts.
//!
//! Every `/mine` request pushes one [`ExplainRecord`]; `GET
//! /explain/<fingerprint>` answers from this ring without re-running
//! anything. The ring is fixed-capacity — the oldest record is evicted
//! on overflow, so a resident server's memory stays bounded no matter
//! how long it runs — and records carry a monotone sequence number so
//! a client can tell a re-served fingerprint from a stale scrape.

use crate::json::Json;
use std::collections::VecDeque;

/// One served `/mine` verdict, kept for `/explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRecord {
    /// Monotone per-server sequence number (1-based).
    pub seq: u64,
    /// The admission-assigned id of the request that produced this
    /// verdict — the same id the access log and quarantine provenance
    /// carry, so one grep joins a verdict to its request record.
    pub request_id: u64,
    /// Content fingerprint of the `(old, new)` pair.
    pub fingerprint: String,
    /// `"mined"` or `"quarantined"`.
    pub verdict: &'static str,
    /// Cache status of the lookup: `hit`, `miss`, `stale_version`, or
    /// `off`.
    pub cache: &'static str,
    /// The tuple digest texts ([`diffcode::cli::tuple_digest`] format).
    pub tuples: Vec<String>,
    /// For quarantined verdicts: `(kind, error, excerpt)` provenance.
    pub skip: Option<(String, String, String)>,
}

impl ExplainRecord {
    /// The JSON rendering served by `/explain`.
    pub fn to_json(&self) -> Json {
        let skip = match &self.skip {
            Some((kind, error, excerpt)) => Json::Obj(vec![
                ("kind".to_owned(), Json::Str(kind.clone())),
                ("error".to_owned(), Json::Str(error.clone())),
                ("excerpt".to_owned(), Json::Str(excerpt.clone())),
            ]),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("seq".to_owned(), Json::Num(self.seq as f64)),
            ("request_id".to_owned(), Json::Num(self.request_id as f64)),
            (
                "fingerprint".to_owned(),
                Json::Str(self.fingerprint.clone()),
            ),
            ("verdict".to_owned(), Json::Str(self.verdict.to_owned())),
            ("cache".to_owned(), Json::Str(self.cache.to_owned())),
            (
                "tuples".to_owned(),
                Json::Arr(self.tuples.iter().cloned().map(Json::Str).collect()),
            ),
            ("skip".to_owned(), skip),
        ])
    }
}

/// The bounded verdict journal.
#[derive(Debug)]
pub struct ExplainRing {
    capacity: usize,
    next_seq: u64,
    records: VecDeque<ExplainRecord>,
}

impl ExplainRing {
    /// A ring holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ExplainRing {
            capacity: capacity.max(1),
            next_seq: 1,
            records: VecDeque::new(),
        }
    }

    /// Appends a record (evicting the oldest at capacity) and returns
    /// its sequence number.
    pub fn push(&mut self, mut record: ExplainRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        record.seq = seq;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
        seq
    }

    /// All records whose fingerprint starts with `prefix`, newest
    /// first.
    pub fn find(&self, prefix: &str) -> Vec<&ExplainRecord> {
        self.records
            .iter()
            .rev()
            .filter(|r| r.fingerprint.starts_with(prefix))
            .collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been served yet (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fp: &str) -> ExplainRecord {
        ExplainRecord {
            seq: 0,
            request_id: 7,
            fingerprint: fp.to_owned(),
            verdict: "mined",
            cache: "off",
            tuples: vec!["Cipher|...".to_owned()],
            skip: None,
        }
    }

    #[test]
    fn push_assigns_monotone_seqs_and_evicts_oldest() {
        let mut ring = ExplainRing::new(2);
        assert_eq!(ring.push(record("aa11")), 1);
        assert_eq!(ring.push(record("aa22")), 2);
        assert_eq!(ring.push(record("bb33")), 3);
        assert_eq!(ring.len(), 2);
        assert!(ring.find("aa11").is_empty(), "oldest evicted");
        let matches = ring.find("aa");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].seq, 2);
    }

    #[test]
    fn find_matches_prefixes_newest_first() {
        let mut ring = ExplainRing::new(8);
        ring.push(record("cafe01"));
        ring.push(record("cafe02"));
        ring.push(record("beef01"));
        let matches = ring.find("cafe");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].fingerprint, "cafe02");
        assert_eq!(matches[1].fingerprint, "cafe01");
        assert!(ring.find("").len() == 3, "empty prefix matches all");
    }

    #[test]
    fn records_render_as_json() {
        let mut rec = record("cafe");
        rec.skip = Some(("parse".to_owned(), "boom".to_owned(), "class ".to_owned()));
        let json = rec.to_json().render();
        assert!(json.contains("\"fingerprint\":\"cafe\""));
        assert!(json.contains("\"kind\":\"parse\""));
        assert!(json.contains("\"request_id\":7"), "{json}");
    }
}
