//! The `diffcode-serve` binary: `diffcode serve` delegates here (the
//! cargo-style external-subcommand pattern keeps the core CLI free of
//! a server dependency). Runs until SIGINT/SIGTERM, then drains and
//! reports final accounting.
//!
//! Diagnostics go through the structured logger (JSON lines on stderr
//! by default; `--log-format text` for a human-readable mirror,
//! `--log-file` to write to a size-rotated file instead). The two
//! stdout lines — the `listening on` handshake and the final
//! `drained:` accounting — are protocol, read by supervisors and the
//! smoke harness, and stay plain text.

use obs::{LogFormat, LogLevel, Logger};
use serve::{ServeConfig, Server};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
usage: diffcode-serve [--addr <host:port>] [--threads <N>] [--cache-dir <dir>]
                      [--cluster-cache-dir <dir>] [--repo-root <dir>]
                      [--deadline-ms <N>] [--queue-depth <N>] [--drain-ms <N>]
                      [--log-format json|text|off] [--log-file <path>]
                      [--log-max-bytes <N>] [--log-level debug|info|warn|error]

Resident mining/checking service. Endpoints:
  POST /mine                  {\"old\": ..., \"new\": ...} -> mined/quarantined verdict
  POST /mine-repo             {\"repo\": <name under --repo-root>} -> walk + mine
  POST /check                 {\"source\": ...} -> rule violations
  GET  /explain/<fingerprint> recent /mine verdicts for a fingerprint prefix
  GET  /metrics               Prometheus text exposition
  GET  /status                uptime, accounting, cache hit rates, latency percentiles
  GET  /trace/capture?events=N Chrome-trace snapshot of recent requests
  GET  /cluster/stats         persisted clustering distance-cell log stats
  GET  /healthz, /readyz      liveness; readiness goes 503 while draining

One structured access-log record per request (and lifecycle events) is
written as JSON lines on stderr, or to --log-file with size rotation at
--log-max-bytes (default 64 MiB). --log-format text renders the same
records human-readably; off disables logging entirely.

Shuts down gracefully on SIGINT/SIGTERM: stops accepting, drains the
queue under the drain deadline, flushes the mining and cluster caches.
Set DIFFCODE_SERVE_CHAOS=1 to honor the X-Chaos-* test headers.";

/// Log settings parsed from flags; folded into a [`Logger`] once.
struct LogArgs {
    format: Option<LogFormat>,
    file: Option<std::path::PathBuf>,
    max_bytes: u64,
    level: LogLevel,
}

impl Default for LogArgs {
    fn default() -> Self {
        LogArgs {
            format: Some(LogFormat::Json),
            file: None,
            max_bytes: 64 * 1024 * 1024,
            level: LogLevel::Info,
        }
    }
}

impl LogArgs {
    fn build(&self) -> Logger {
        match self.format {
            None => Logger::disabled(),
            Some(format) => match &self.file {
                Some(path) => Logger::file(path, self.max_bytes, format, self.level),
                None => Logger::stderr(format, self.level),
            },
        }
    }
}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut log = LogArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_owned())?;
            }
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
            "--cluster-cache-dir" => {
                config.cluster_cache_dir = Some(value("--cluster-cache-dir")?.into());
            }
            "--repo-root" => config.repo_root = Some(value("--repo-root")?.into()),
            "--deadline-ms" => {
                config.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms needs an integer".to_owned())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_owned())?;
            }
            "--drain-ms" => {
                config.drain_ms = value("--drain-ms")?
                    .parse()
                    .map_err(|_| "--drain-ms needs an integer".to_owned())?;
            }
            "--log-format" => {
                log.format = match value("--log-format")?.as_str() {
                    "json" => Some(LogFormat::Json),
                    "text" => Some(LogFormat::Text),
                    "off" => None,
                    _ => return Err("--log-format must be json, text, or off".to_owned()),
                };
            }
            "--log-file" => log.file = Some(value("--log-file")?.into()),
            "--log-max-bytes" => {
                log.max_bytes = value("--log-max-bytes")?
                    .parse()
                    .map_err(|_| "--log-max-bytes needs an integer".to_owned())?;
            }
            "--log-level" => {
                log.level = match value("--log-level")?.as_str() {
                    "debug" => LogLevel::Debug,
                    "info" => LogLevel::Info,
                    "warn" => LogLevel::Warn,
                    "error" => LogLevel::Error,
                    _ => return Err("--log-level must be debug, info, warn, or error".to_owned()),
                };
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if std::env::var_os("DIFFCODE_SERVE_CHAOS").is_some() {
        config.chaos_hooks = true;
    }
    config.logger = log.build();
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    diffcode::shutdown::install();
    // Shares the writer with the server (Logger clones share one
    // pipeline), so binary-level events interleave cleanly with the
    // access log.
    let log = config.logger.clone();
    let handle = match Server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            log.event(LogLevel::Error, "serve.boot_failed")
                .str("error", e.as_str())
                .emit();
            log.sync(std::time::Duration::from_secs(2));
            eprintln!("diffcode-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The listening line is the startup handshake: supervisors (and
    // the smoke script) read it to learn the bound port, so it must
    // reach the pipe immediately.
    println!("diffcode-serve listening on http://{}", handle.addr());
    let _ = std::io::stdout().flush();

    let summary = handle.join();
    println!(
        "diffcode-serve drained: accepted {} = completed {} + shed {} + failed {}; \
         flushed {} cache entries",
        summary.accepted, summary.completed, summary.shed, summary.failed, summary.flushed_entries
    );
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}
