//! The `diffcode-serve` binary: `diffcode serve` delegates here (the
//! cargo-style external-subcommand pattern keeps the core CLI free of
//! a server dependency). Runs until SIGINT/SIGTERM, then drains and
//! reports final accounting.

use serve::{ServeConfig, Server};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
usage: diffcode-serve [--addr <host:port>] [--threads <N>] [--cache-dir <dir>]
                      [--cluster-cache-dir <dir>] [--repo-root <dir>]
                      [--deadline-ms <N>] [--queue-depth <N>] [--drain-ms <N>]

Resident mining/checking service. Endpoints:
  POST /mine                  {\"old\": ..., \"new\": ...} -> mined/quarantined verdict
  POST /mine-repo             {\"repo\": <name under --repo-root>} -> walk + mine
  POST /check                 {\"source\": ...} -> rule violations
  GET  /explain/<fingerprint> recent /mine verdicts for a fingerprint prefix
  GET  /metrics               Prometheus text exposition
  GET  /cluster/stats         persisted clustering distance-cell log stats
  GET  /healthz, /readyz      liveness; readiness goes 503 while draining

Shuts down gracefully on SIGINT/SIGTERM: stops accepting, drains the
queue under the drain deadline, flushes the mining and cluster caches.
Set DIFFCODE_SERVE_CHAOS=1 to honor the X-Chaos-* test headers.";

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_owned())?;
            }
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
            "--cluster-cache-dir" => {
                config.cluster_cache_dir = Some(value("--cluster-cache-dir")?.into());
            }
            "--repo-root" => config.repo_root = Some(value("--repo-root")?.into()),
            "--deadline-ms" => {
                config.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms needs an integer".to_owned())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_owned())?;
            }
            "--drain-ms" => {
                config.drain_ms = value("--drain-ms")?
                    .parse()
                    .map_err(|_| "--drain-ms needs an integer".to_owned())?;
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if std::env::var_os("DIFFCODE_SERVE_CHAOS").is_some() {
        config.chaos_hooks = true;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    diffcode::shutdown::install();
    let handle = match Server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("diffcode-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The listening line is the startup handshake: supervisors (and
    // the smoke script) read it to learn the bound port, so it must
    // reach the pipe immediately.
    println!("diffcode-serve listening on http://{}", handle.addr());
    let _ = std::io::stdout().flush();

    let summary = handle.join();
    println!(
        "diffcode-serve drained: accepted {} = completed {} + shed {} + failed {}; \
         flushed {} cache entries",
        summary.accepted, summary.completed, summary.shed, summary.failed, summary.flushed_entries
    );
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}
