//! The five endpoints of the resident service.
//!
//! | route | answers |
//! |---|---|
//! | `POST /mine` | one `(old, new)` change → mined/quarantined verdict |
//! | `POST /mine-repo` | a cloned repo under `--repo-root` → walk + mine |
//! | `POST /check` | snippet(s) → rule violations |
//! | `GET /explain/<fingerprint>` | the ring-buffered verdict journal |
//! | `GET /metrics` | the registry in Prometheus text format |
//! | `GET /status` | uptime, accounting, cache hit rates, percentiles |
//! | `GET /trace/capture?events=N` | Chrome-trace snapshot of recent requests |
//! | `GET /cluster/stats` | the persisted clustering distance-cell log |
//! | `GET /healthz`, `GET /readyz` | liveness / drain-aware readiness |
//!
//! `/mine` goes through [`diffcode::DiffCode::process_pair_cached`] —
//! the exact look-aside path the one-shot `diffcode mine` loop uses —
//! and renders verdict tuples with [`diffcode::cli::tuple_digest`], so
//! a served verdict is byte-comparable to a mining run's digest parts.
//! The pipeline's own fuel budgets do the heavy robustness lifting: a
//! 10 MB "Java file" or pathologically nested source quarantines the
//! *request* (a clean JSON verdict with provenance), never the worker.

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::ring::ExplainRecord;
use crate::server::Shared;
use diffcode::mcache::ChangeOutcome;
use diffcode::pipeline::change_fingerprint;
use diffcode::DiffCode;
use std::sync::PoisonError;

/// Per-worker handler state: the pipeline instance (carries its own
/// metrics registry, merged into the shared one after each request).
pub struct WorkerCtx {
    dc: DiffCode,
}

impl WorkerCtx {
    /// A fresh pipeline at default limits and depth — the same
    /// configuration as a one-shot mining run.
    pub fn new() -> Self {
        WorkerCtx {
            dc: DiffCode::new(),
        }
    }
}

impl Default for WorkerCtx {
    fn default() -> Self {
        WorkerCtx::new()
    }
}

/// Routes one request. Always returns a response; panics escape to the
/// per-request `catch_unwind` in the server loop. `request_id` is the
/// admission-assigned id the access log records — handlers thread it
/// into explain-ring records so verdicts join to request records.
pub fn handle(req: &Request, shared: &Shared, ctx: &mut WorkerCtx, request_id: u64) -> Response {
    if shared.config.chaos_hooks {
        if let Some(ms) = req
            .header("x-chaos-sleep-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
        }
        if req.header("x-chaos-panic").is_some() {
            panic!("chaos fault injection: X-Chaos-Panic header present");
        }
    }

    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/mine") => mine(req, shared, ctx, request_id),
        ("POST", "/mine-repo") => mine_repo(req, shared, ctx, request_id),
        ("POST", "/check") => check(req),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/status") => status(shared),
        ("GET", "/cluster/stats") => cluster_stats(shared),
        ("GET", "/healthz") => Response::text(200, "ok"),
        ("GET", "/readyz") => {
            if shared.draining() {
                Response::text(503, "draining")
            } else {
                Response::text(200, "ready")
            }
        }
        ("GET", path) if path.starts_with("/explain/") => explain(path, shared),
        ("GET", path) if trace_capture_path(path) => trace_capture(path, shared),
        (
            _,
            "/mine" | "/mine-repo" | "/check" | "/metrics" | "/status" | "/cluster/stats"
            | "/healthz" | "/readyz",
        ) => err_json(405, "method not allowed for this path"),
        (_, path) if path.starts_with("/explain/") => err_json(405, "explain is GET-only"),
        (_, path) if trace_capture_path(path) => err_json(405, "trace capture is GET-only"),
        _ => err_json(404, "unknown path"),
    }
}

/// `true` for `/trace/capture` with or without a query string (the
/// request target arrives unsplit in `req.path`).
fn trace_capture_path(path: &str) -> bool {
    path.split('?').next() == Some("/trace/capture")
}

fn err_json(status: u16, message: &str) -> Response {
    let body = Json::Obj(vec![("error".to_owned(), Json::Str(message.to_owned()))]);
    Response::json(status, body.render())
}

/// Parses the request body as a JSON object.
fn body_json(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| err_json(400, "request body is not UTF-8"))?;
    json::parse(text).map_err(|e| err_json(400, &format!("request body: {e}")))
}

/// `POST /mine`: `{"old": "...", "new": "...", "classes": ["..."]?}`.
fn mine(req: &Request, shared: &Shared, ctx: &mut WorkerCtx, request_id: u64) -> Response {
    let body = match body_json(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(old) = body.get("old").and_then(Json::as_str) else {
        return err_json(400, "missing string field `old`");
    };
    let Some(new) = body.get("new").and_then(Json::as_str) else {
        return err_json(400, "missing string field `new`");
    };
    let classes: Vec<&str> = body
        .get("classes")
        .and_then(Json::as_array)
        .map(|items| items.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();

    let (outcome, cache_status) = match shared.cache.as_ref() {
        Some(lock) => {
            // Mining holds only a read lock: concurrent /mine requests
            // look the cache up in parallel and batch their writes in
            // per-request shard logs, absorbed under a brief write
            // lock afterwards — same pattern as parallel mining.
            let (result, log) = {
                let cache = lock.read().unwrap_or_else(PoisonError::into_inner);
                let mut view = cache.view();
                let result = ctx
                    .dc
                    .process_pair_cached(old, new, &classes, Some(&mut view));
                (result, view.into_log())
            };
            let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
            cache.absorb(log);
            match cache.flush() {
                Ok(n) => shared.with_registry(|r| r.inc("cache.flushed_entries", n as u64)),
                Err(_) => shared.with_registry(|r| r.inc("serve.cache_flush_errors", 1)),
            }
            result
        }
        None => ctx.dc.process_pair_cached(old, new, &classes, None),
    };

    // Fold the pipeline's own counters (cache.hit/miss, mine spans,
    // quarantine breakdown) into the served registry.
    let request_metrics = ctx.dc.take_metrics();
    shared.with_registry(|r| {
        r.merge(&request_metrics);
        r.inc("serve.mine_requests", 1);
    });

    let fingerprint = change_fingerprint(old, new);
    let tuples = diffcode::cli::outcome_digest_parts(&outcome);
    let (verdict, skip) = match &outcome {
        ChangeOutcome::Mined(_) => ("mined", None),
        ChangeOutcome::Skipped {
            kind,
            error,
            excerpt,
        } => (
            "quarantined",
            Some((kind.name().to_owned(), error.clone(), excerpt.clone())),
        ),
    };

    let seq = {
        let mut ring = shared.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.push(ExplainRecord {
            seq: 0,
            request_id,
            fingerprint: fingerprint.clone(),
            verdict,
            cache: cache_status,
            tuples: tuples.clone(),
            skip: skip.clone(),
        })
    };

    let skip_json = match skip {
        Some((kind, error, excerpt)) => Json::Obj(vec![
            ("kind".to_owned(), Json::Str(kind)),
            ("error".to_owned(), Json::Str(error)),
            ("excerpt".to_owned(), Json::Str(excerpt)),
        ]),
        None => Json::Null,
    };
    let body = Json::Obj(vec![
        ("fingerprint".to_owned(), Json::Str(fingerprint)),
        ("verdict".to_owned(), Json::Str(verdict.to_owned())),
        ("cache".to_owned(), Json::Str(cache_status.to_owned())),
        ("seq".to_owned(), Json::Num(seq as f64)),
        (
            "tuples".to_owned(),
            Json::Arr(tuples.into_iter().map(Json::Str).collect()),
        ),
        ("skip".to_owned(), skip_json),
    ]);
    Response::json(200, body.render())
}

/// Validates the optional `rev_range` field: a malformed value is a
/// 400, never a silent default. Option-shaped ranges (leading `-`) are
/// rejected here — mirroring the check inside gitsrc itself — so a
/// request body can never smuggle a git option (e.g. `--output=<path>`)
/// into the `git log` argument list.
fn parse_rev_range(body: &Json) -> Result<Option<String>, &'static str> {
    match body.get("rev_range") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let Some(s) = v.as_str() else {
                return Err("`rev_range` must be a string");
            };
            if s.is_empty() || s.starts_with('-') {
                return Err("`rev_range` must be a revision range, not an option");
            }
            Ok(Some(s.to_owned()))
        }
    }
}

/// Validates the optional `max_commits` field: only non-negative whole
/// numbers pass (a negative, fractional, or NaN value would otherwise
/// saturate or truncate silently in the `f64 -> usize` cast).
fn parse_max_commits(body: &Json) -> Result<Option<usize>, &'static str> {
    match body.get("max_commits") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0) {
            Some(n) => Ok(Some(n as usize)),
            None => Err("`max_commits` must be a non-negative integer"),
        },
    }
}

/// `POST /mine-repo`: `{"repo": "<name under --repo-root>",
/// "rev_range": "A..B"?, "max_commits": N?}` — walks the named cloned
/// repository with [`gitsrc`] and mines every extracted pre/post pair
/// through the shared cache, so a repeated request over an unchanged
/// repository replays cached outcomes. Disabled unless the server was
/// started with `--repo-root`; the name is resolved strictly under
/// that root (plain path components only — no absolute paths, no
/// `..`). Each mined pair lands in the `/explain` ring like a `/mine`
/// verdict would.
fn mine_repo(req: &Request, shared: &Shared, ctx: &mut WorkerCtx, request_id: u64) -> Response {
    let Some(root) = shared.config.repo_root.as_ref() else {
        return err_json(
            404,
            "repository mining disabled (start with --repo-root <dir>)",
        );
    };
    let body = match body_json(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("repo").and_then(Json::as_str) else {
        return err_json(400, "missing string field `repo`");
    };
    let rel = std::path::Path::new(name);
    let confined = !name.is_empty()
        && rel
            .components()
            .all(|c| matches!(c, std::path::Component::Normal(_)));
    if !confined {
        return err_json(400, "`repo` must be a relative name under the repo root");
    }
    let repo = root.join(rel);
    if !repo.is_dir() {
        return err_json(404, "no such repository under the repo root");
    }
    let rev_range = match parse_rev_range(&body) {
        Ok(v) => v,
        Err(msg) => return err_json(400, msg),
    };
    let max_commits = match parse_max_commits(&body) {
        Ok(v) => v,
        Err(msg) => return err_json(400, msg),
    };
    let opts = gitsrc::IngestOptions {
        rev_range,
        max_commits,
        limits: gitsrc::IngestLimits::DEFAULT,
    };
    let mut ingest_metrics = obs::MetricsRegistry::new();
    let report = match gitsrc::ingest_repo(&repo, &opts, &mut ingest_metrics) {
        Ok(report) => report,
        // The repo exists but git could not walk it: the request is
        // unprocessable, the worker is fine.
        Err(e) => return err_json(422, &format!("ingestion failed: {e}")),
    };

    // Mine every extracted pair through the same read-view / absorb
    // pattern as `/mine`, batching all writes into one shard log.
    let mut verdicts: Vec<(String, &'static str, &'static str)> = Vec::new();
    let process = |ctx: &mut WorkerCtx,
                   view: Option<&mut diffcode::mcache::MiningCacheView>,
                   verdicts: &mut Vec<(String, &'static str, &'static str)>| {
        let mut view = view;
        for change in report.corpus.code_changes() {
            let (outcome, cache_status) =
                ctx.dc
                    .process_pair_cached(change.old, change.new, &[], view.as_deref_mut());
            let fingerprint = change_fingerprint(change.old, change.new);
            let verdict = match &outcome {
                ChangeOutcome::Mined(_) => "mined",
                ChangeOutcome::Skipped { .. } => "quarantined",
            };
            let tuples = diffcode::cli::outcome_digest_parts(&outcome);
            let mut ring = shared.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.push(ExplainRecord {
                seq: 0,
                request_id,
                fingerprint: fingerprint.clone(),
                verdict,
                cache: cache_status,
                tuples,
                skip: match outcome {
                    ChangeOutcome::Mined(_) => None,
                    ChangeOutcome::Skipped {
                        kind,
                        error,
                        excerpt,
                    } => Some((kind.name().to_owned(), error, excerpt)),
                },
            });
            verdicts.push((fingerprint, verdict, cache_status));
        }
    };
    match shared.cache.as_ref() {
        Some(lock) => {
            let log = {
                let cache = lock.read().unwrap_or_else(PoisonError::into_inner);
                let mut view = cache.view();
                process(ctx, Some(&mut view), &mut verdicts);
                view.into_log()
            };
            let mut cache = lock.write().unwrap_or_else(PoisonError::into_inner);
            cache.absorb(log);
            match cache.flush() {
                Ok(n) => shared.with_registry(|r| r.inc("cache.flushed_entries", n as u64)),
                Err(_) => shared.with_registry(|r| r.inc("serve.cache_flush_errors", 1)),
            }
        }
        None => process(ctx, None, &mut verdicts),
    }

    let request_metrics = ctx.dc.take_metrics();
    shared.with_registry(|r| {
        r.merge(&ingest_metrics);
        r.merge(&request_metrics);
        r.inc("serve.mine_repo_requests", 1);
    });

    let mined = verdicts.iter().filter(|(_, v, _)| *v == "mined").count();
    let stats = &report.stats;
    let body = Json::Obj(vec![
        ("repo".to_owned(), Json::Str(name.to_owned())),
        (
            "commits_walked".to_owned(),
            Json::Num(stats.commits_walked as f64),
        ),
        (
            "commits_ingested".to_owned(),
            Json::Num(stats.commits_ingested as f64),
        ),
        ("pairs".to_owned(), Json::Num(stats.pairs as f64)),
        (
            "renames_followed".to_owned(),
            Json::Num(stats.renames_followed as f64),
        ),
        ("additions".to_owned(), Json::Num(stats.additions as f64)),
        ("deletions".to_owned(), Json::Num(stats.deletions as f64)),
        (
            "ingest_quarantined".to_owned(),
            Json::Num(report.skips.len() as f64),
        ),
        ("mined".to_owned(), Json::Num(mined as f64)),
        (
            "mine_quarantined".to_owned(),
            Json::Num((verdicts.len() - mined) as f64),
        ),
        (
            "changes".to_owned(),
            Json::Arr(
                verdicts
                    .into_iter()
                    .map(|(fingerprint, verdict, cache)| {
                        Json::Obj(vec![
                            ("fingerprint".to_owned(), Json::Str(fingerprint)),
                            ("verdict".to_owned(), Json::Str(verdict.to_owned())),
                            ("cache".to_owned(), Json::Str(cache.to_owned())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Response::json(200, body.render())
}

/// `POST /check`: `{"source": "..."}` or
/// `{"files": [{"name": "...", "source": "..."}]}`.
fn check(req: &Request) -> Response {
    let body = match body_json(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let files: Vec<(String, String)> =
        if let Some(source) = body.get("source").and_then(Json::as_str) {
            vec![("request".to_owned(), source.to_owned())]
        } else if let Some(items) = body.get("files").and_then(Json::as_array) {
            let mut files = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let Some(source) = item.get("source").and_then(Json::as_str) else {
                    return err_json(400, "each file needs a string field `source`");
                };
                let name = item
                    .get("name")
                    .and_then(Json::as_str)
                    .map_or_else(|| format!("file{i}"), ToOwned::to_owned);
                files.push((name, source.to_owned()));
            }
            files
        } else {
            return err_json(400, "expected `source` or `files`");
        };
    if files.is_empty() {
        return err_json(400, "no files to check");
    }

    let (report, violated) = diffcode::cli::render_check(&files, rules::ProjectContext::plain());
    let body = Json::Obj(vec![
        ("violated_rules".to_owned(), Json::Num(violated as f64)),
        ("files".to_owned(), Json::Num(files.len() as f64)),
        ("report".to_owned(), Json::Str(report)),
    ]);
    Response::json(200, body.render())
}

/// `GET /explain/<fingerprint-prefix>`.
fn explain(path: &str, shared: &Shared) -> Response {
    let prefix = path.trim_start_matches("/explain/");
    if prefix.is_empty() {
        return err_json(400, "expected /explain/<fingerprint-prefix>");
    }
    let ring = shared.ring.lock().unwrap_or_else(PoisonError::into_inner);
    let matches = ring.find(prefix);
    if matches.is_empty() {
        return err_json(
            404,
            "no served change matches that fingerprint prefix (the ring holds recent /mine verdicts only)",
        );
    }
    let body = Json::Obj(vec![
        ("found".to_owned(), Json::Num(matches.len() as f64)),
        (
            "records".to_owned(),
            Json::Arr(matches.iter().map(|r| r.to_json()).collect()),
        ),
    ]);
    Response::json(200, body.render())
}

/// `GET /cluster/stats`: the state of the persisted clustering
/// distance-cell log — how warm the next `mine --cluster-cache-dir`
/// run on this directory starts.
fn cluster_stats(shared: &Shared) -> Response {
    let Some(lock) = shared.cluster_cache.as_ref() else {
        return err_json(
            404,
            "no cluster cache configured (start with --cluster-cache-dir)",
        );
    };
    let stats = {
        let cache = lock.read().unwrap_or_else(PoisonError::into_inner);
        cache.store().stats()
    };
    let body = Json::Obj(vec![
        (
            "namespace".to_owned(),
            Json::Str(diffcode::CLUSTER_NAMESPACE.to_owned()),
        ),
        (
            "clustering_version".to_owned(),
            Json::Num(f64::from(diffcode::CLUSTERING_VERSION)),
        ),
        (
            "entries".to_owned(),
            Json::Num(stats.current_entries as f64),
        ),
        (
            "stale_entries".to_owned(),
            Json::Num(stats.stale_entries as f64),
        ),
        (
            "records_loaded".to_owned(),
            Json::Num(stats.records_loaded as f64),
        ),
        ("file_bytes".to_owned(), Json::Num(stats.file_bytes as f64)),
        (
            "corrupt_tail_bytes".to_owned(),
            Json::Num(stats.corrupt_tail_bytes as f64),
        ),
    ]);
    Response::json(200, body.render())
}

/// `GET /metrics`: deterministic Prometheus text. Logger throughput is
/// snapshotted into gauges just before rendering, so scrape output
/// carries the current emitted/dropped counts.
fn metrics(shared: &Shared) -> Response {
    let emitted = shared.log.emitted();
    let dropped = shared.log.dropped();
    let text = shared.with_registry(|r| {
        r.set_gauge("serve.log_emitted", emitted as f64);
        r.set_gauge("serve.log_dropped", dropped as f64);
        obs::to_prometheus_text(r)
    });
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: text.into_bytes(),
        retry_after: None,
    }
}

/// Hit-rate summary for a cache's `<prefix>.hit` / `.miss` /
/// `.stale_version` counters; `Null` before any lookup happened.
fn cache_rate_json(r: &obs::MetricsRegistry, prefix: &str) -> Json {
    let hits = r.counter(&format!("{prefix}.hit"));
    let misses = r.counter(&format!("{prefix}.miss"));
    let stale = r.counter(&format!("{prefix}.stale_version"));
    let total = hits + misses + stale;
    let rate = if total == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / total as f64)
    };
    Json::Obj(vec![
        ("hits".to_owned(), Json::Num(hits as f64)),
        ("misses".to_owned(), Json::Num(misses as f64)),
        ("stale".to_owned(), Json::Num(stale as f64)),
        ("hit_rate".to_owned(), rate),
    ])
}

/// `GET /status`: one JSON page of live runtime introspection —
/// uptime, the accounting partition, cache hit rates, logger
/// throughput, and the per-endpoint latency percentile table computed
/// from the registry's log-linear histograms.
fn status(shared: &Shared) -> Response {
    let uptime_ms = shared.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
    let trace_events = {
        let trace = shared.trace.lock().unwrap_or_else(PoisonError::into_inner);
        trace.len()
    };
    let body = shared.with_registry(|r| {
        let mut endpoints: Vec<(String, Json)> = Vec::new();
        for (name, span) in r.spans() {
            let label = if name == "serve.request" {
                "all"
            } else if let Some(rest) = name.strip_prefix("serve.request.") {
                rest
            } else {
                continue;
            };
            let mut fields = vec![
                ("count".to_owned(), Json::Num(span.count as f64)),
                (
                    "mean_ns".to_owned(),
                    Json::Num(span.sum_ns as f64 / span.count.max(1) as f64),
                ),
            ];
            if let Some(hist) = r.hist(name) {
                for (key, q) in [
                    ("p50_ns", 0.50),
                    ("p90_ns", 0.90),
                    ("p95_ns", 0.95),
                    ("p99_ns", 0.99),
                    ("p999_ns", 0.999),
                ] {
                    fields.push((key.to_owned(), Json::Num(hist.quantile(q) as f64)));
                }
            }
            fields.push(("max_ns".to_owned(), Json::Num(span.max_ns as f64)));
            endpoints.push((label.to_owned(), Json::Obj(fields)));
        }
        Json::Obj(vec![
            (
                "version".to_owned(),
                Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
            ),
            ("uptime_ms".to_owned(), Json::Num(uptime_ms as f64)),
            ("draining".to_owned(), Json::Bool(shared.draining())),
            (
                "requests".to_owned(),
                Json::Obj(vec![
                    (
                        "accepted".to_owned(),
                        Json::Num(r.counter("serve.accepted") as f64),
                    ),
                    (
                        "completed".to_owned(),
                        Json::Num(r.counter("serve.completed") as f64),
                    ),
                    ("shed".to_owned(), Json::Num(r.counter("serve.shed") as f64)),
                    (
                        "failed".to_owned(),
                        Json::Num(r.counter("serve.failed") as f64),
                    ),
                ]),
            ),
            (
                "queue".to_owned(),
                Json::Obj(vec![
                    ("depth".to_owned(), Json::Num(shared.queue_len() as f64)),
                    (
                        "capacity".to_owned(),
                        Json::Num(shared.config.queue_depth as f64),
                    ),
                ]),
            ),
            (
                "cache".to_owned(),
                if shared.cache.is_some() {
                    cache_rate_json(r, "cache")
                } else {
                    Json::Null
                },
            ),
            (
                "cluster_cache".to_owned(),
                if shared.cluster_cache.is_some() {
                    cache_rate_json(r, "cluster.cache")
                } else {
                    Json::Null
                },
            ),
            (
                "log".to_owned(),
                Json::Obj(vec![
                    ("emitted".to_owned(), Json::Num(shared.log.emitted() as f64)),
                    ("dropped".to_owned(), Json::Num(shared.log.dropped() as f64)),
                ]),
            ),
            (
                "trace".to_owned(),
                Json::Obj(vec![
                    ("events".to_owned(), Json::Num(trace_events as f64)),
                    (
                        "capacity".to_owned(),
                        Json::Num(shared.config.trace_capacity as f64),
                    ),
                ]),
            ),
            ("endpoints".to_owned(), Json::Obj(endpoints)),
        ])
    });
    Response::json(200, body.render())
}

/// `GET /trace/capture?events=N`: the most recent `N` events of the
/// bounded capture sink in Chrome trace-event JSON (default 256),
/// loadable in Perfetto / `chrome://tracing`.
fn trace_capture(path: &str, shared: &Shared) -> Response {
    let mut events = 256usize;
    if let Some((_, query)) = path.split_once('?') {
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            if key != "events" {
                return err_json(400, "unknown trace capture parameter (expected events=N)");
            }
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => events = n,
                _ => return err_json(400, "`events` must be a positive integer"),
            }
        }
    }
    let json = {
        let trace = shared.trace.lock().unwrap_or_else(PoisonError::into_inner);
        obs::to_chrome_json_tail(&trace, events)
    };
    Response::json(200, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Json {
        json::parse(text).unwrap()
    }

    #[test]
    fn rev_range_accepts_ranges_and_rejects_option_shapes() {
        assert_eq!(parse_rev_range(&body("{}")), Ok(None));
        assert_eq!(parse_rev_range(&body(r#"{"rev_range": null}"#)), Ok(None));
        assert_eq!(
            parse_rev_range(&body(r#"{"rev_range": "v1..v2"}"#)),
            Ok(Some("v1..v2".to_owned()))
        );
        // Option-shaped or degenerate values must 400, not reach git.
        assert!(parse_rev_range(&body(r#"{"rev_range": "--output=/tmp/pwn"}"#)).is_err());
        assert!(parse_rev_range(&body(r#"{"rev_range": "-n1"}"#)).is_err());
        assert!(parse_rev_range(&body(r#"{"rev_range": ""}"#)).is_err());
        assert!(parse_rev_range(&body(r#"{"rev_range": 3}"#)).is_err());
    }

    #[test]
    fn max_commits_accepts_whole_numbers_only() {
        assert_eq!(parse_max_commits(&body("{}")), Ok(None));
        assert_eq!(
            parse_max_commits(&body(r#"{"max_commits": null}"#)),
            Ok(None)
        );
        assert_eq!(
            parse_max_commits(&body(r#"{"max_commits": 30}"#)),
            Ok(Some(30))
        );
        assert_eq!(
            parse_max_commits(&body(r#"{"max_commits": 0}"#)),
            Ok(Some(0))
        );
        // Negative, fractional, and non-numeric values must 400
        // instead of saturating/truncating through the usize cast.
        assert!(parse_max_commits(&body(r#"{"max_commits": -1}"#)).is_err());
        assert!(parse_max_commits(&body(r#"{"max_commits": 2.5}"#)).is_err());
        assert!(parse_max_commits(&body(r#"{"max_commits": "30"}"#)).is_err());
    }
}
