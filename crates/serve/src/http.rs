//! Minimal HTTP/1.1 request reading and response writing over
//! `std::net::TcpStream`, built for hostile clients.
//!
//! Every read races a per-request deadline: the socket read timeout is
//! re-armed with the *remaining* time before each `read`, so a
//! slowloris client dripping one byte per pause cannot hold a worker
//! past the deadline — the loop returns [`RecvError::Deadline`] and the
//! worker answers 408. Head bytes (request line + headers) and body
//! bytes are capped independently ([`HttpCaps`]), a lying
//! `Content-Length` is a typed 400/413, and a peer that hangs up
//! mid-request is a clean [`RecvError::Closed`] — in every case the
//! worker survives and the failure is counted, which is the robustness
//! envelope the soak harness pins.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Size caps for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpCaps {
    /// Request line + headers, bytes.
    pub max_head_bytes: usize,
    /// Body bytes (also the cap on `Content-Length`).
    pub max_body_bytes: usize,
    /// Header count.
    pub max_headers: usize,
}

impl HttpCaps {
    /// Production defaults: 64 KiB of head, 32 MiB of body — a 10 MB
    /// "Java file" fits (and then quarantines in the pipeline on its
    /// own source budget); a 64 MiB bomb is shed at the HTTP layer.
    pub const DEFAULT: HttpCaps = HttpCaps {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 32 * 1024 * 1024,
        max_headers: 128,
    };
}

impl Default for HttpCaps {
    fn default() -> Self {
        HttpCaps::DEFAULT
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`).
    pub method: String,
    /// The request target (path, no normalization).
    pub path: String,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The per-request deadline elapsed mid-read (slowloris, stalls).
    Deadline,
    /// Head bytes or header count exceeded [`HttpCaps`].
    HeadTooLarge,
    /// Declared body length exceeded [`HttpCaps`].
    BodyTooLarge,
    /// Syntactically broken request (bad request line, bogus
    /// `Content-Length`, truncated head or body).
    Malformed(&'static str),
    /// The peer closed before sending anything; nothing to answer.
    Closed,
    /// A transport error other than timeout; the socket is unusable.
    Io,
}

impl RecvError {
    /// The HTTP status this error maps to, or `None` when the peer is
    /// gone and no response can be delivered.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            RecvError::Deadline => Some((408, "request deadline exceeded")),
            RecvError::HeadTooLarge => Some((431, "request head exceeds the configured cap")),
            RecvError::BodyTooLarge => Some((413, "request body exceeds the configured cap")),
            RecvError::Malformed(what) => Some((400, what)),
            RecvError::Closed | RecvError::Io => None,
        }
    }

    /// Stable counter suffix (`serve.recv_<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            RecvError::Deadline => "deadline",
            RecvError::HeadTooLarge => "head_too_large",
            RecvError::BodyTooLarge => "body_too_large",
            RecvError::Malformed(_) => "malformed",
            RecvError::Closed => "closed",
            RecvError::Io => "io",
        }
    }
}

/// One deadline-aware read: re-arms the socket timeout with the time
/// remaining, then reads. `Ok(0)` is EOF.
fn read_some(
    stream: &mut TcpStream,
    deadline: Instant,
    buf: &mut [u8],
) -> Result<usize, RecvError> {
    loop {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            return Err(RecvError::Deadline);
        };
        if stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .is_err()
        {
            return Err(RecvError::Io);
        }
        match stream.read(buf) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(RecvError::Deadline)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(RecvError::Io),
        }
    }
}

/// Reads one full request under `deadline` and `caps`.
///
/// # Errors
///
/// See [`RecvError`]; every failure mode of a hostile or broken client
/// maps to exactly one variant.
pub fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
    caps: &HttpCaps,
) -> Result<Request, RecvError> {
    // Phase 1: accumulate until the blank line ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > caps.max_head_bytes {
            return Err(RecvError::HeadTooLarge);
        }
        let mut chunk = [0u8; 4096];
        let n = read_some(stream, deadline, &mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(RecvError::Closed)
            } else {
                Err(RecvError::Malformed("truncated request head"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > caps.max_head_bytes {
        return Err(RecvError::HeadTooLarge);
    }

    let head_bytes = buf[..head_end].to_vec();
    let head =
        std::str::from_utf8(&head_bytes).map_err(|_| RecvError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty()
        || path.is_empty()
        || !version.starts_with("HTTP/1.")
        || parts.next().is_some()
    {
        return Err(RecvError::Malformed("bad request line"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= caps.max_headers {
            return Err(RecvError::HeadTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Phase 2: the body, exactly Content-Length bytes.
    let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RecvError::Malformed("invalid content-length"))?,
        None => 0,
    };
    if body_len > caps.max_body_bytes {
        return Err(RecvError::BodyTooLarge);
    }
    let mut body = buf.split_off(head_end + 4);
    body.reserve(body_len.saturating_sub(body.len()));
    while body.len() < body_len {
        let mut chunk = [0u8; 16 * 1024];
        let want = (body_len - body.len()).min(chunk.len());
        let n = read_some(stream, deadline, &mut chunk[..want])?;
        if n == 0 {
            return Err(RecvError::Malformed("truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(body_len);

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response to deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Adds a `Retry-After: <seconds>` header (load shedding).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response (a newline is appended).
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{body}\n").into_bytes(),
            retry_after: None,
        }
    }

    /// The standard reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Serializes and writes `resp`. Write failures are returned for
/// accounting but the connection is torn down either way — every
/// response carries `Connection: close`.
///
/// # Errors
///
/// Transport errors (including the socket write timeout).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        Response::reason(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn deadline_ms(ms: u64) -> Instant {
        Instant::now() + Duration::from_millis(ms)
    }

    #[test]
    fn reads_a_post_with_body() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /mine HTTP/1.1\r\nContent-Length: 4\r\nX-Tag: a\r\n\r\nbody")
            .unwrap();
        let req = read_request(&mut server, deadline_ms(500), &HttpCaps::DEFAULT).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/mine");
        assert_eq!(req.header("x-tag"), Some("a"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn slowloris_hits_the_deadline_not_the_worker() {
        let (client, mut server) = pair();
        // Client sends nothing at all; the read loop must give up.
        let start = Instant::now();
        let err = read_request(&mut server, deadline_ms(80), &HttpCaps::DEFAULT).unwrap_err();
        assert_eq!(err, RecvError::Deadline);
        assert!(start.elapsed() < Duration::from_secs(2));
        drop(client);
    }

    #[test]
    fn truncated_and_bogus_requests_are_typed() {
        let (mut client, mut server) = pair();
        client.write_all(b"POST /mi").unwrap();
        drop(client);
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &HttpCaps::DEFAULT),
            Err(RecvError::Malformed("truncated request head"))
        );

        let (mut client, mut server) = pair();
        client
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n")
            .unwrap();
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &HttpCaps::DEFAULT),
            Err(RecvError::Malformed("invalid content-length"))
        );

        let (client, mut server) = pair();
        drop(client);
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &HttpCaps::DEFAULT),
            Err(RecvError::Closed)
        );
    }

    #[test]
    fn caps_reject_oversized_head_and_body() {
        let caps = HttpCaps {
            max_head_bytes: 256,
            max_body_bytes: 128,
            max_headers: 4,
        };
        let (mut client, mut server) = pair();
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 4096));
        client.write_all(&big).unwrap();
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &caps),
            Err(RecvError::HeadTooLarge)
        );

        let (mut client, mut server) = pair();
        client
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 4096\r\n\r\n")
            .unwrap();
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &caps),
            Err(RecvError::BodyTooLarge)
        );

        let (mut client, mut server) = pair();
        client
            .write_all(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\ne: 5\r\n\r\n")
            .unwrap();
        assert_eq!(
            read_request(&mut server, deadline_ms(500), &caps),
            Err(RecvError::HeadTooLarge)
        );
    }

    #[test]
    fn responses_round_trip_with_retry_after() {
        let (mut client, mut server) = pair();
        let mut resp = Response::json(429, "{}".to_owned());
        resp.retry_after = Some(1);
        write_response(&mut server, &resp).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
