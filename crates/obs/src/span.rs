//! Wall-clock timing spans with min/max/sum/count aggregation.

use std::time::{Duration, Instant};

/// Aggregated statistics for one named span: how many times it ran and
/// the minimum / maximum / total duration, in nanoseconds.
///
/// Spans never store individual samples, so recording is O(1) and a
/// registry stays small no matter how many times a stage runs (one
/// entry per span *name*, not per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of recorded runs.
    pub count: u64,
    /// Total duration across all runs, ns.
    pub sum_ns: u64,
    /// Shortest run, ns (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest run, ns.
    pub max_ns: u64,
}

impl SpanStats {
    /// Folds one duration into the aggregate.
    pub fn record(&mut self, duration: Duration) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Merges another aggregate into this one (shard join).
    pub fn absorb(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean duration in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// `true` when the internal ordering invariants hold:
    /// `min ≤ mean ≤ max ≤ sum` for non-empty spans.
    pub fn is_consistent(&self) -> bool {
        if self.count == 0 {
            self.sum_ns == 0 && self.min_ns == 0 && self.max_ns == 0
        } else {
            self.min_ns <= self.max_ns
                && self.max_ns <= self.sum_ns
                && self.min_ns <= self.mean_ns()
                && self.mean_ns() <= self.max_ns
        }
    }
}

/// A started wall clock; pairs with [`crate::MetricsRegistry::record_span`]
/// when the closure-based [`crate::MetricsRegistry::time`] does not fit
/// (e.g. the timed region spans several borrows).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Renders a nanosecond duration as a compact human unit
/// (`1.234ms`, `5.6µs`, `890ns`, `2.345s`).
///
/// Values that would *round up to* the next unit's threshold are
/// promoted to that unit (999 999 ns is `1.000ms`, never `1000.0µs`),
/// so the mantissa always stays below 1000 within each unit band.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    if ns < 1_000_000 {
        let s = format!("{:.1}µs", ns as f64 / 1e3);
        if !s.starts_with("1000") {
            return s;
        }
    }
    if ns < 1_000_000_000 {
        let s = format!("{:.3}ms", ns as f64 / 1e6);
        if !s.starts_with("1000") {
            return s;
        }
    }
    format!("{:.3}s", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_min_max_sum() {
        let mut s = SpanStats::default();
        s.record(Duration::from_nanos(30));
        s.record(Duration::from_nanos(10));
        s.record(Duration::from_nanos(20));
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.sum_ns, 60);
        assert_eq!(s.mean_ns(), 20);
        assert!(s.is_consistent());
    }

    #[test]
    fn absorb_merges_and_handles_empty_sides() {
        let mut a = SpanStats::default();
        let mut b = SpanStats::default();
        b.record(Duration::from_nanos(5));
        b.record(Duration::from_nanos(15));
        a.absorb(&b);
        assert_eq!(a, b, "absorbing into empty copies");
        let mut c = SpanStats::default();
        c.record(Duration::from_nanos(100));
        a.absorb(&c);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 100);
        assert_eq!(a.sum_ns, 120);
        let before = a;
        a.absorb(&SpanStats::default());
        assert_eq!(a, before, "absorbing empty is a no-op");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(890), "890ns");
        assert_eq!(fmt_ns(5_600), "5.6µs");
        assert_eq!(fmt_ns(1_234_000), "1.234ms");
        assert_eq!(fmt_ns(2_345_000_000), "2.345s");
    }

    #[test]
    fn fmt_ns_edges_zero_and_sub_microsecond() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(1), "1ns");
        assert_eq!(fmt_ns(999), "999ns");
    }

    #[test]
    fn fmt_ns_exact_unit_boundaries() {
        assert_eq!(fmt_ns(1_000), "1.0µs");
        assert_eq!(fmt_ns(1_000_000), "1.000ms");
        assert_eq!(fmt_ns(1_000_000_000), "1.000s");
    }

    #[test]
    fn fmt_ns_rounding_never_overflows_the_unit() {
        // 999 999 ns rounds to 1000.0 in µs — it must render in the
        // next unit up, not as "1000.0µs".
        assert_eq!(fmt_ns(999_999), "1.000ms");
        assert_eq!(fmt_ns(999_950), "1.000ms");
        assert_eq!(fmt_ns(999_949), "999.9µs");
        assert_eq!(fmt_ns(999_999_999), "1.000s");
        assert_eq!(fmt_ns(999_999_499), "999.999ms");
    }

    #[test]
    fn fmt_ns_u64_max_is_finite_seconds() {
        // u64::MAX ns ≈ 584.5 years; just assert it renders in seconds
        // without panicking or losing the unit.
        let s = fmt_ns(u64::MAX);
        assert!(
            s.ends_with('s') && !s.ends_with("ms") && !s.ends_with("ns"),
            "{s}"
        );
        assert_eq!(s, "18446744073.710s");
    }
}
