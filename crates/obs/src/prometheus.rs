//! Prometheus text-format exposition for a [`MetricsRegistry`].
//!
//! The resident server's `GET /metrics` endpoint renders a registry
//! snapshot in the Prometheus exposition format (version 0.0.4): a
//! `# HELP` + `# TYPE` header plus sample lines per metric,
//! `diffcode_`-prefixed, with registry names sanitized to the
//! `[a-zA-Z0-9_]` metric-name alphabet (every other byte becomes `_`)
//! and label values escaped per the text format (`\\`, `\"`, `\n`).
//! Output is **deterministic** for a given registry state — names
//! render in sorted order, floats with a fixed format, and histogram
//! bucket edges are a fixed layout ([`crate::hist::EXPOSITION_EDGES`]) — which
//! is what lets the soak harness assert that two scrapes of an idle
//! server are byte-identical.
//!
//! Counters map to `counter`, gauges to `gauge`, and each timing span
//! to the four legacy samples (`<name>_count`, `<name>_sum_ns`,
//! `<name>_min_ns`, `<name>_max_ns`) **plus** a native `histogram`
//! family `<name>_latency_ns` with cumulative `_bucket{le="…"}` series
//! at the canonical `2^k - 1` nanosecond edges (exact counts — every
//! edge is an inclusive bucket boundary of the log-linear layout),
//! `_sum` and `_count`.

use crate::hist::{Histogram, EXPOSITION_EDGES};
use crate::MetricsRegistry;
use std::fmt::Write as _;

/// Rewrites a registry name (`serve.http_requests`, `mine.change`) into
/// the Prometheus metric-name alphabet, prefixed with `diffcode_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("diffcode_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a string for a `# HELP` line or a label value per the text
/// exposition format: backslash, double quote (labels only, harmless
/// in help text), and newline.
fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            ch => out.push(ch),
        }
    }
    out
}

/// Renders a gauge value the way Prometheus expects: integral values
/// without a fractional part, everything else with enough digits to
/// round-trip, and non-finite values as `NaN`/`+Inf`/`-Inf`.
fn gauge_value(value: f64) -> String {
    if value.is_nan() {
        return "NaN".to_owned();
    }
    if value.is_infinite() {
        return if value > 0.0 { "+Inf" } else { "-Inf" }.to_owned();
    }
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn header(out: &mut String, metric: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {metric} {}", escape_text(help));
    let _ = writeln!(out, "# TYPE {metric} {kind}");
}

/// Renders the registry in the Prometheus text exposition format.
/// Deterministic: same registry state, same bytes.
pub fn to_prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let metric = metric_name(name);
        header(
            &mut out,
            &metric,
            &format!("Monotonic counter {name} from the diffcode registry."),
            "counter",
        );
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in registry.gauges() {
        let metric = metric_name(name);
        header(
            &mut out,
            &metric,
            &format!("Gauge {name} from the diffcode registry."),
            "gauge",
        );
        let _ = writeln!(out, "{metric} {}", gauge_value(value));
    }
    let empty_hist = Histogram::new();
    for (name, span) in registry.spans() {
        let base = metric_name(name);
        header(
            &mut out,
            &format!("{base}_count"),
            &format!("Number of recorded runs of span {name}."),
            "counter",
        );
        let _ = writeln!(out, "{base}_count {}", span.count);
        header(
            &mut out,
            &format!("{base}_sum_ns"),
            &format!("Total duration of span {name} in nanoseconds."),
            "counter",
        );
        let _ = writeln!(out, "{base}_sum_ns {}", span.sum_ns);
        header(
            &mut out,
            &format!("{base}_min_ns"),
            &format!("Shortest run of span {name} in nanoseconds."),
            "gauge",
        );
        let _ = writeln!(out, "{base}_min_ns {}", span.min_ns);
        header(
            &mut out,
            &format!("{base}_max_ns"),
            &format!("Longest run of span {name} in nanoseconds."),
            "gauge",
        );
        let _ = writeln!(out, "{base}_max_ns {}", span.max_ns);

        // Native histogram family over the fixed log-linear layout:
        // cumulative counts at the canonical 2^k - 1 edges are exact
        // (each edge is an inclusive bucket upper bound), so the
        // series carries no estimation error — only the inter-edge
        // resolution is quantized.
        let hist = registry.hist(name).unwrap_or(&empty_hist);
        let family = format!("{base}_latency_ns");
        header(
            &mut out,
            &family,
            &format!(
                "Log-linear latency histogram for span {} in nanoseconds.",
                name
            ),
            "histogram",
        );
        for &edge in &EXPOSITION_EDGES {
            let _ = writeln!(
                out,
                "{family}_bucket{{le=\"{edge}\"}} {}",
                hist.count_le(edge)
            );
        }
        let _ = writeln!(out, "{family}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{family}_sum {}", hist.sum_ns());
        let _ = writeln!(out, "{family}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_counters_gauges_and_spans_deterministically() {
        let mut reg = MetricsRegistry::new();
        reg.inc("serve.accepted", 7);
        reg.inc("mine.code_changes", 3);
        reg.set_gauge("serve.queue_depth", 2.0);
        reg.set_gauge("cache.hit_rate", 0.25);
        reg.record_span("serve.request", Duration::from_nanos(1_500));
        reg.record_span("serve.request", Duration::from_nanos(500));

        let text = to_prometheus_text(&reg);
        let again = to_prometheus_text(&reg);
        assert_eq!(text, again, "idle scrapes are byte-identical");

        assert!(text.contains("# TYPE diffcode_serve_accepted counter"));
        assert!(text.contains("# HELP diffcode_serve_accepted "));
        assert!(text.contains("diffcode_serve_accepted 7"));
        assert!(text.contains("diffcode_mine_code_changes 3"));
        assert!(text.contains("diffcode_serve_queue_depth 2"));
        assert!(text.contains("diffcode_cache_hit_rate 0.25"));
        assert!(text.contains("diffcode_serve_request_count 2"));
        assert!(text.contains("diffcode_serve_request_sum_ns 2000"));
        assert!(text.contains("diffcode_serve_request_min_ns 500"));
        assert!(text.contains("diffcode_serve_request_max_ns 1500"));
        // Counters render before gauges, names sorted within a section.
        let accepted = text.find("diffcode_serve_accepted").unwrap();
        let changes = text.find("diffcode_mine_code_changes").unwrap();
        assert!(changes < accepted, "sorted counter order");
    }

    #[test]
    fn every_sample_family_has_help_and_type() {
        let mut reg = MetricsRegistry::new();
        reg.inc("c", 1);
        reg.set_gauge("g", 1.0);
        reg.record_span("s", Duration::from_nanos(100));
        let text = to_prometheus_text(&reg);
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let metric = line.split([' ', '{']).next().unwrap();
            // A sample belongs either to a family named exactly after
            // it, or (histogram members _bucket/_sum/_count) to the
            // family with the suffix stripped.
            let covered = [metric]
                .into_iter()
                .chain(
                    ["_bucket", "_sum", "_count"]
                        .iter()
                        .filter_map(|s| metric.strip_suffix(s)),
                )
                .any(|family| {
                    text.contains(&format!("# HELP {family} "))
                        && text.contains(&format!("# TYPE {family} "))
                });
            assert!(covered, "missing HELP/TYPE for {metric}: {text}");
        }
    }

    #[test]
    fn spans_expose_a_cumulative_histogram_family() {
        let mut reg = MetricsRegistry::new();
        reg.record_span("serve.request", Duration::from_nanos(300));
        reg.record_span("serve.request", Duration::from_nanos(70_000));
        let text = to_prometheus_text(&reg);
        assert!(text.contains("# TYPE diffcode_serve_request_latency_ns histogram"));
        // 300ns <= 511 (first sample only); 70_000ns <= 131071.
        assert!(
            text.contains("diffcode_serve_request_latency_ns_bucket{le=\"255\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("diffcode_serve_request_latency_ns_bucket{le=\"511\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("diffcode_serve_request_latency_ns_bucket{le=\"131071\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("diffcode_serve_request_latency_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("diffcode_serve_request_latency_ns_sum 70300"),
            "{text}"
        );
        assert!(
            text.contains("diffcode_serve_request_latency_ns_count 2"),
            "{text}"
        );
        // Buckets are cumulative and monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket counts: {line}");
            last = v;
        }
    }

    #[test]
    fn sanitizes_names_and_non_finite_gauges() {
        let mut reg = MetricsRegistry::new();
        reg.inc("weird name:with/chars", 1);
        reg.set_gauge("g.nan", f64::NAN);
        reg.set_gauge("g.inf", f64::INFINITY);
        let text = to_prometheus_text(&reg);
        assert!(text.contains("diffcode_weird_name_with_chars 1"));
        assert!(text.contains("diffcode_g_nan NaN"));
        assert!(text.contains("diffcode_g_inf +Inf"));
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        assert_eq!(escape_text("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
        let mut reg = MetricsRegistry::new();
        reg.inc("odd\nname", 1);
        let text = to_prometheus_text(&reg);
        assert!(
            text.contains("# HELP diffcode_odd_name Monotonic counter odd\\nname"),
            "{text}"
        );
        // The escaped newline keeps every HELP record on one line.
        for line in text.lines().filter(|l| l.starts_with("# HELP")) {
            assert!(line.split(' ').count() >= 4, "truncated HELP: {line}");
        }
    }
}
