//! Prometheus text-format exposition for a [`MetricsRegistry`].
//!
//! The resident server's `GET /metrics` endpoint renders a registry
//! snapshot in the Prometheus exposition format (version 0.0.4): one
//! `# TYPE` line plus one sample line per metric, `diffcode_`-prefixed,
//! with registry names sanitized to the `[a-zA-Z0-9_]` metric-name
//! alphabet (every other byte becomes `_`). Output is **deterministic**
//! for a given registry state — names render in sorted order and floats
//! with a fixed format — which is what lets the soak harness assert
//! that two scrapes of an idle server are byte-identical.
//!
//! Counters map to `counter`, gauges to `gauge`, and each timing span
//! to four `counter`/`gauge` samples: `<name>_count`, `<name>_sum_ns`,
//! `<name>_min_ns`, `<name>_max_ns`.

use crate::MetricsRegistry;
use std::fmt::Write as _;

/// Rewrites a registry name (`serve.http_requests`, `mine.change`) into
/// the Prometheus metric-name alphabet, prefixed with `diffcode_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("diffcode_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a gauge value the way Prometheus expects: integral values
/// without a fractional part, everything else with enough digits to
/// round-trip, and non-finite values as `NaN`/`+Inf`/`-Inf`.
fn gauge_value(value: f64) -> String {
    if value.is_nan() {
        return "NaN".to_owned();
    }
    if value.is_infinite() {
        return if value > 0.0 { "+Inf" } else { "-Inf" }.to_owned();
    }
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Renders the registry in the Prometheus text exposition format.
/// Deterministic: same registry state, same bytes.
pub fn to_prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let metric = metric_name(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in registry.gauges() {
        let metric = metric_name(name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", gauge_value(value));
    }
    for (name, span) in registry.spans() {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base}_count counter");
        let _ = writeln!(out, "{base}_count {}", span.count);
        let _ = writeln!(out, "# TYPE {base}_sum_ns counter");
        let _ = writeln!(out, "{base}_sum_ns {}", span.sum_ns);
        let _ = writeln!(out, "# TYPE {base}_min_ns gauge");
        let _ = writeln!(out, "{base}_min_ns {}", span.min_ns);
        let _ = writeln!(out, "# TYPE {base}_max_ns gauge");
        let _ = writeln!(out, "{base}_max_ns {}", span.max_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_counters_gauges_and_spans_deterministically() {
        let mut reg = MetricsRegistry::new();
        reg.inc("serve.accepted", 7);
        reg.inc("mine.code_changes", 3);
        reg.set_gauge("serve.queue_depth", 2.0);
        reg.set_gauge("cache.hit_rate", 0.25);
        reg.record_span("serve.request", Duration::from_nanos(1_500));
        reg.record_span("serve.request", Duration::from_nanos(500));

        let text = to_prometheus_text(&reg);
        let again = to_prometheus_text(&reg);
        assert_eq!(text, again, "idle scrapes are byte-identical");

        assert!(text.contains("# TYPE diffcode_serve_accepted counter"));
        assert!(text.contains("diffcode_serve_accepted 7"));
        assert!(text.contains("diffcode_mine_code_changes 3"));
        assert!(text.contains("diffcode_serve_queue_depth 2"));
        assert!(text.contains("diffcode_cache_hit_rate 0.25"));
        assert!(text.contains("diffcode_serve_request_count 2"));
        assert!(text.contains("diffcode_serve_request_sum_ns 2000"));
        assert!(text.contains("diffcode_serve_request_min_ns 500"));
        assert!(text.contains("diffcode_serve_request_max_ns 1500"));
        // Counters render before gauges, names sorted within a section.
        let accepted = text.find("diffcode_serve_accepted").unwrap();
        let changes = text.find("diffcode_mine_code_changes").unwrap();
        assert!(changes < accepted, "sorted counter order");
    }

    #[test]
    fn sanitizes_names_and_non_finite_gauges() {
        let mut reg = MetricsRegistry::new();
        reg.inc("weird name:with/chars", 1);
        reg.set_gauge("g.nan", f64::NAN);
        reg.set_gauge("g.inf", f64::INFINITY);
        let text = to_prometheus_text(&reg);
        assert!(text.contains("diffcode_weird_name_with_chars 1"));
        assert!(text.contains("diffcode_g_nan NaN"));
        assert!(text.contains("diffcode_g_inf +Inf"));
    }
}
