//! # obs — lightweight pipeline observability
//!
//! A zero-dependency metrics layer for the DiffCode pipeline:
//! monotonic **counters**, wall-clock **timing spans** aggregated as
//! min/max/sum/count ([`SpanStats`]) *and* as log-linear latency
//! **histograms** with p50/p90/p99/p999 quantiles ([`Histogram`]),
//! and labeled **gauges**, all collected into a [`MetricsRegistry`].
//! For per-item audit trails — ordered events, hierarchical spans, one
//! decision record per mined change — see the structured tracing layer
//! ([`TraceSink`]) and its Chrome trace-event exporter ([`chrome`]).
//! For operational event streams (access logs, lifecycle events) see
//! the JSON-lines structured logger ([`log`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Always-on and cheap.** Recording is a `BTreeMap` upsert on an
//!    interned-by-name entry; spans aggregate instead of sampling, so
//!    memory is bounded by the number of distinct names.
//! 2. **Mergeable.** Parallel mining gives each shard its own registry
//!    and [`MetricsRegistry::merge`]s them on join — no locks, no
//!    atomics, no shared state on the hot path.
//! 3. **Reconcilable.** Counters mirror the pipeline's own accounting
//!    ([`check_funnel`]/[`check_partition`] verify the Figure 6 funnel
//!    and the `processed = mined + skipped` partition), so a snapshot
//!    that disagrees with `MiningStats`/`FilterStats` is a bug, not a
//!    rendering choice.
//! 4. **Machine-readable.** [`MetricsRegistry::to_json`] emits a
//!    stable, versioned snapshot (deterministic key order) that CI and
//!    the bench crate consume.
//!
//! # Example
//!
//! ```
//! use obs::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.inc("mine.mined", 3);
//! reg.inc("mine.skipped", 1);
//! reg.inc("mine.code_changes", 4);
//! let total = reg.time("mine.run", || 40 + 2);
//! assert_eq!(total, 42);
//! assert_eq!(reg.counter("mine.mined"), 3);
//! assert!(reg.span("mine.run").is_some());
//! obs::check_partition(&reg, "mine.code_changes", &["mine.mined", "mine.skipped"]).unwrap();
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
mod json;
pub mod log;
pub mod prometheus;
mod span;
mod trace;

pub use chrome::{to_chrome_json, to_chrome_json_tail};
pub use hist::Histogram;
pub use json::{to_json, SNAPSHOT_VERSION};
pub use log::{LogFormat, LogLevel, Logger};
pub use prometheus::to_prometheus_text;
pub use span::{fmt_ns, SpanStats, Stopwatch};
pub use trace::{
    AttrSet, NameId, SpanId, TraceConfig, TraceEvent, TraceKind, TraceSink, TraceValue,
};

use std::collections::BTreeMap;
use std::time::Duration;

/// The collection point for one pipeline run (or one shard of it).
///
/// Plain owned data: `Send`, cheap to create per worker, merged on
/// join. Deliberately *not* behind a lock — concurrency is handled by
/// giving each thread its own registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, SpanEntry>,
}

/// One span's aggregate and its latency histogram, stored side by side
/// so the record hot path pays a single map lookup (and a single key
/// allocation on first sight) for both.
#[derive(Debug, Clone, Default, PartialEq)]
struct SpanEntry {
    stats: SpanStats,
    hist: Histogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    // -- counters ------------------------------------------------------

    /// Adds `delta` to the monotonic counter `name`.
    pub fn inc(&mut self, name: &str, delta: u64) {
        if delta == 0 && !self.counters.contains_key(name) {
            // Materialize the entry so zero-valued stages still appear
            // in snapshots (a funnel stage that filtered everything is
            // a data point, not an absence).
            self.counters.insert(name.to_owned(), 0);
            return;
        }
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in stable (sorted) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    // -- gauges --------------------------------------------------------

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges in stable (sorted) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    // -- spans ---------------------------------------------------------

    /// Folds one measured duration into span `name`: the min/max/sum
    /// aggregate *and* the latency histogram, so every span answers
    /// quantile queries with no extra instrumentation at call sites.
    pub fn record_span(&mut self, name: &str, duration: Duration) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        let entry = self.spans.entry(name.to_owned()).or_default();
        entry.stats.record(duration);
        entry.hist.record(ns);
    }

    /// Times `f` and records the wall-clock duration under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let result = f();
        self.record_span(name, sw.elapsed());
        result
    }

    /// Aggregate for span `name`, if it ever ran.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name).map(|e| &e.stats)
    }

    /// All spans in stable (sorted) order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStats)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), &v.stats))
    }

    /// Latency histogram for span `name`, if it ever ran.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name).map(|e| &e.hist)
    }

    /// All span histograms in stable (sorted) order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), &v.hist))
    }

    // -- aggregation ---------------------------------------------------

    /// Merges `other` into `self`: counters add, spans absorb, gauges
    /// take `other`'s value (last write wins, matching [`Self::set_gauge`]).
    ///
    /// **Gauge determinism.** Counters and spans are commutative and
    /// associative, but gauges make `merge` order-sensitive: the value
    /// that survives is the one from the *last* `merge` call whose
    /// registry carries that gauge. This is a contract, not an
    /// accident — callers that merge shard registries must do so in
    /// shard order (as `mine_parallel`-style orchestrators do, and as
    /// [`TraceSink::absorb`] requires for traces), which makes the
    /// surviving gauge deterministically the highest-numbered shard's.
    /// Merging in any other fixed order is also deterministic, just a
    /// different convention; only a *varying* order (e.g. completion
    /// order) would make snapshots flap.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, span) in &other.spans {
            let entry = self.spans.entry(name.clone()).or_default();
            entry.stats.absorb(&span.stats);
            entry.hist.merge(&span.hist);
        }
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// Serializes to the stable, versioned JSON snapshot (schema
    /// [`SNAPSHOT_VERSION`]; deterministic key order).
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }
}

/// Checks that the counters named by `stages` form a non-increasing
/// funnel (`stages[0] ≥ stages[1] ≥ …`), the Figure 6 invariant.
///
/// # Errors
///
/// Names the first adjacent pair that violates the ordering.
pub fn check_funnel(registry: &MetricsRegistry, stages: &[&str]) -> Result<(), String> {
    for pair in stages.windows(2) {
        let (a, b) = (registry.counter(pair[0]), registry.counter(pair[1]));
        if a < b {
            return Err(format!(
                "funnel violated: {} = {a} < {} = {b}",
                pair[0], pair[1]
            ));
        }
    }
    Ok(())
}

/// Checks that counter `total` equals the sum of the `parts` counters —
/// the `processed = mined + skipped` style partition invariant.
///
/// # Errors
///
/// Reports both sides of the failed equality.
pub fn check_partition(
    registry: &MetricsRegistry,
    total: &str,
    parts: &[&str],
) -> Result<(), String> {
    let expected = registry.counter(total);
    let sum: u64 = parts.iter().map(|p| registry.counter(p)).sum();
    if expected != sum {
        return Err(format!(
            "partition violated: {total} = {expected} but {} = {sum}",
            parts.join(" + ")
        ));
    }
    Ok(())
}

/// Checks that the `hit` counter accounts for at least `min_rate` of
/// all lookups (`hit / (hit + Σ parts)`, where `parts` are the non-hit
/// outcomes: miss, stale, …) — the warm-cache CI gate invariant. Zero
/// lookups passes: an empty run has no hit rate to violate.
///
/// # Errors
///
/// Reports the achieved rate and every counter that went into it.
pub fn check_hit_rate(
    registry: &MetricsRegistry,
    hit: &str,
    parts: &[&str],
    min_rate: f64,
) -> Result<(), String> {
    let hits = registry.counter(hit);
    let others: u64 = parts.iter().map(|p| registry.counter(p)).sum();
    let total = hits + others;
    if total == 0 {
        return Ok(());
    }
    let rate = hits as f64 / total as f64;
    if rate < min_rate {
        let breakdown: Vec<String> = parts
            .iter()
            .map(|p| format!("{p} = {}", registry.counter(p)))
            .collect();
        return Err(format!(
            "hit rate violated: {hit} = {hits} of {total} lookups ({rate:.3} < {min_rate:.3}; {})",
            breakdown.join(", ")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("x"), 0);
        reg.inc("x", 2);
        reg.inc("x", 3);
        assert_eq!(reg.counter("x"), 5);
        reg.inc("zero", 0);
        assert!(reg.counters().any(|(n, v)| n == "zero" && v == 0));
    }

    #[test]
    fn time_records_a_span_and_returns_the_value() {
        let mut reg = MetricsRegistry::new();
        let v = reg.time("work", || 7);
        assert_eq!(v, 7);
        let span = reg.span("work").unwrap();
        assert_eq!(span.count, 1);
        assert!(span.is_consistent());
    }

    #[test]
    fn merge_adds_counters_and_absorbs_spans() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.record_span("s", Duration::from_nanos(10));
        a.set_gauge("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.inc("only_b", 4);
        b.record_span("s", Duration::from_nanos(30));
        b.set_gauge("g", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("only_b"), 4);
        assert_eq!(a.gauge("g"), Some(2.0), "gauges: last write wins");
        let s = a.span("s").unwrap();
        assert_eq!((s.count, s.min_ns, s.max_ns, s.sum_ns), (2, 10, 30, 40));
    }

    #[test]
    fn merge_is_associative_on_counters_and_spans() {
        let mk = |n: u64, ns: u64| {
            let mut r = MetricsRegistry::new();
            r.inc("c", n);
            r.record_span("s", Duration::from_nanos(ns));
            r
        };
        let (a, b, c) = (mk(1, 5), mk(2, 50), mk(3, 500));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_gauges_are_last_write_wins_in_merge_order() {
        // Pins the gauge contract documented on `merge`: whichever
        // shard is merged last supplies the surviving value, in either
        // direction — so a caller that fixes the merge order (shard
        // order) gets a deterministic snapshot.
        let mut shard_a = MetricsRegistry::new();
        shard_a.set_gauge("g", 1.0);
        shard_a.inc("n", 1);
        let mut shard_b = MetricsRegistry::new();
        shard_b.set_gauge("g", 2.0);
        shard_b.inc("n", 2);

        let mut ab = MetricsRegistry::new();
        ab.merge(&shard_a);
        ab.merge(&shard_b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&shard_b);
        ba.merge(&shard_a);

        assert_eq!(ab.gauge("g"), Some(2.0), "last merge (b) wins");
        assert_eq!(ba.gauge("g"), Some(1.0), "last merge (a) wins");
        // Counters stay order-independent; only gauges are sensitive.
        assert_eq!(ab.counter("n"), ba.counter("n"));
        // A merge whose registry lacks the gauge leaves it untouched.
        ab.merge(&MetricsRegistry::new());
        assert_eq!(ab.gauge("g"), Some(2.0));
    }

    #[test]
    fn record_span_populates_the_histogram() {
        let mut reg = MetricsRegistry::new();
        for ns in [100u64, 200, 300, 400] {
            reg.record_span("s", Duration::from_nanos(ns));
        }
        let hist = reg.hist("s").expect("histogram recorded alongside span");
        assert_eq!(hist.count(), reg.span("s").unwrap().count);
        assert_eq!(hist.sum_ns(), reg.span("s").unwrap().sum_ns);
        let p50 = hist.quantile(0.5);
        assert!((200..=213).contains(&p50), "p50 = {p50}");

        let mut other = MetricsRegistry::new();
        other.record_span("s", Duration::from_nanos(10_000));
        reg.merge(&other);
        assert_eq!(reg.hist("s").unwrap().count(), 5, "merge merges histograms");
    }

    #[test]
    fn funnel_check_accepts_monotone_and_names_violations() {
        let mut reg = MetricsRegistry::new();
        reg.inc("f.total", 10);
        reg.inc("f.a", 6);
        reg.inc("f.b", 6);
        reg.inc("f.c", 2);
        check_funnel(&reg, &["f.total", "f.a", "f.b", "f.c"]).unwrap();
        reg.inc("f.b", 5);
        let err = check_funnel(&reg, &["f.a", "f.b"]).unwrap_err();
        assert!(err.contains("f.a = 6 < f.b = 11"), "{err}");
    }

    #[test]
    fn partition_check() {
        let mut reg = MetricsRegistry::new();
        reg.inc("total", 5);
        reg.inc("p1", 3);
        reg.inc("p2", 2);
        check_partition(&reg, "total", &["p1", "p2"]).unwrap();
        reg.inc("p2", 1);
        assert!(check_partition(&reg, "total", &["p1", "p2"]).is_err());
    }

    #[test]
    fn hit_rate_check() {
        // No lookups at all: nothing to violate.
        check_hit_rate(&MetricsRegistry::new(), "c.hit", &["c.miss"], 0.95).unwrap();

        let mut reg = MetricsRegistry::new();
        reg.inc("c.hit", 97);
        reg.inc("c.miss", 2);
        reg.inc("c.stale", 1);
        check_hit_rate(&reg, "c.hit", &["c.miss", "c.stale"], 0.95).unwrap();

        reg.inc("c.miss", 10);
        let err = check_hit_rate(&reg, "c.hit", &["c.miss", "c.stale"], 0.95).unwrap_err();
        assert!(err.contains("c.hit = 97"), "{err}");
        assert!(err.contains("c.miss = 12"), "{err}");
    }
}
