//! Structured event tracing: ordered [`TraceEvent`]s with hierarchical
//! spans, per-change decision records, and deterministic sampling.
//!
//! Where [`crate::MetricsRegistry`] answers *how many* ("12 changes
//! were filtered"), a [`TraceSink`] answers *which one and why* ("this
//! change, from this commit, was dropped by `fdup` as a duplicate of
//! that fingerprint"). Same design constraints as the registry, in the
//! same priority order:
//!
//! 1. **Cheap when off.** A disabled sink reduces every call to one
//!    branch on a bool; attribute construction runs inside closures
//!    that are never invoked.
//! 2. **Mergeable.** One plain owned sink per worker shard, absorbed
//!    on join *in shard order* ([`TraceSink::absorb`]) — no locks, no
//!    atomics. Each absorbed shard becomes its own lane (Chrome `tid`),
//!    so per-lane event order and span nesting survive the merge, and a
//!    shard whose worker died simply contributes no lane.
//! 3. **Deterministic.** Sequence numbers are per-sink monotonic,
//!    span IDs are allocated in call order, and sampling is seed-free
//!    modular arithmetic on a per-sink counter — a rerun over the same
//!    input selects exactly the same events. Only the `ts_ns` wall
//!    clock values differ between runs.
//! 4. **Exportable.** [`TraceSink::to_chrome_json`] writes the Chrome
//!    trace-event format (loadable in Perfetto / `chrome://tracing`)
//!    with zero dependencies.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// An interned event/attribute name (index into the sink's name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// A span identity within one sink. `SpanId(0)` is the root ("no
/// span"): events outside any open span have it as parent, and it is
/// what [`TraceSink::begin`] returns from a disabled sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel.
    pub const ROOT: SpanId = SpanId(0);
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// UTF-8 text.
    Str(String),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl TraceValue {
    /// The string payload, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this value is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TraceValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Str(s) => write!(f, "{s}"),
            TraceValue::U64(v) => write!(f, "{v}"),
            TraceValue::I64(v) => write!(f, "{v}"),
            TraceValue::F64(v) => write!(f, "{v}"),
            TraceValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened ([`TraceSink::begin`]).
    Begin,
    /// A span closed ([`TraceSink::end`]).
    End,
    /// A point-in-time marker ([`TraceSink::instant`]).
    Instant,
    /// A per-item decision record ([`TraceSink::decision_with`]).
    /// Never sampled out.
    Decision,
}

/// One ordered trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic per-sink sequence number (renumbered on absorb so the
    /// merged sink stays monotonic).
    pub seq: u64,
    /// Nanoseconds since the owning sink's epoch. Monotonic *per lane*;
    /// lanes have independent epochs.
    pub ts_ns: u64,
    /// Which merged sink this event came from (Chrome `tid`). The
    /// absorbing sink's own events are lane 0; each absorbed shard gets
    /// the next lane in absorb (= shard) order.
    pub lane: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Interned event name (resolve via [`TraceSink::name`]).
    pub name: NameId,
    /// The span this event opens/closes, or [`SpanId::ROOT`] for
    /// instants and decisions.
    pub span: SpanId,
    /// The enclosing span at emit time ([`SpanId::ROOT`] at top level).
    pub parent: SpanId,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(NameId, TraceValue)>,
}

/// Builder for an event's attributes. Only ever constructed inside the
/// `*_with` closures, so a disabled sink never allocates one.
#[derive(Debug, Default)]
pub struct AttrSet {
    items: Vec<(String, TraceValue)>,
}

impl AttrSet {
    /// Adds a string attribute.
    pub fn str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.items
            .push((key.to_owned(), TraceValue::Str(value.into())));
        self
    }

    /// Adds an unsigned integer attribute.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.items.push((key.to_owned(), TraceValue::U64(value)));
        self
    }

    /// Adds a signed integer attribute.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.items.push((key.to_owned(), TraceValue::I64(value)));
        self
    }

    /// Adds a floating-point attribute.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.items.push((key.to_owned(), TraceValue::F64(value)));
        self
    }

    /// Adds a boolean attribute.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.items.push((key.to_owned(), TraceValue::Bool(value)));
        self
    }
}

/// The shareable part of a sink's configuration: what
/// [`mine_parallel`-style](crate::MetricsRegistry) orchestrators hand
/// to each worker so per-shard sinks sample identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether events are recorded at all.
    pub enabled: bool,
    /// Keep every `sample`-th span/instant (≥ 1; decisions always kept).
    pub sample: u64,
}

/// An ordered, mergeable collection of trace events.
///
/// Plain owned data, `Send`, no locks: concurrency is handled by giving
/// each worker its own sink and [`TraceSink::absorb`]ing them on join
/// in shard order — the same discipline as [`crate::MetricsRegistry`].
#[derive(Debug)]
pub struct TraceSink {
    enabled: bool,
    sample: u64,
    names: Vec<String>,
    index: HashMap<String, NameId>,
    events: Vec<TraceEvent>,
    next_seq: u64,
    next_span: u64,
    next_lane: u32,
    /// Open spans: (id, kept-by-sampling, name).
    stack: Vec<(SpanId, bool, NameId)>,
    /// Modular sampling counter (spans + instants; decisions excluded).
    tick: u64,
    epoch: Instant,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl TraceSink {
    /// A sink that records nothing; every call short-circuits on one
    /// branch. The default state of a pipeline.
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            sample: 1,
            names: Vec::new(),
            index: HashMap::new(),
            events: Vec::new(),
            next_seq: 0,
            next_span: 1,
            next_lane: 1,
            stack: Vec::new(),
            tick: 0,
            epoch: Instant::now(),
        }
    }

    /// A recording sink keeping every `sample`-th span/instant
    /// (clamped to ≥ 1). Decisions are always retained.
    pub fn enabled(sample: u64) -> Self {
        TraceSink {
            enabled: true,
            sample: sample.max(1),
            ..TraceSink::disabled()
        }
    }

    /// A fresh sink with the same configuration — how parallel mining
    /// builds one sink per worker shard.
    pub fn from_config(config: TraceConfig) -> Self {
        if config.enabled {
            TraceSink::enabled(config.sample)
        } else {
            TraceSink::disabled()
        }
    }

    /// This sink's shareable configuration.
    pub fn config(&self) -> TraceConfig {
        TraceConfig {
            enabled: self.enabled,
            sample: self.sample,
        }
    }

    /// `true` when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All recorded events, in sequence order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Drops the oldest events so at most `keep` remain — the bound a
    /// long-lived capture sink (e.g. `diffcode serve`'s
    /// `/trace/capture` ring) applies after each append. Interned
    /// names are retained: the name table is bounded by the number of
    /// distinct event names, not by traffic. Callers that record only
    /// instants are unaffected by truncation; a Begin whose End is
    /// truncated away would dangle, so bounded sinks should record
    /// point events.
    pub fn truncate_oldest(&mut self, keep: usize) {
        if self.events.len() > keep {
            let excess = self.events.len() - keep;
            self.events.drain(..excess);
        }
    }

    /// `true` when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Resolves an interned name.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up the id of an interned name, if any event used it.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied()
    }

    /// The value of `event`'s attribute `key`, if present.
    pub fn attr<'e>(&self, event: &'e TraceEvent, key: &str) -> Option<&'e TraceValue> {
        let id = self.lookup(key)?;
        event.attrs.iter().find(|(k, _)| *k == id).map(|(_, v)| v)
    }

    /// The string value of `event`'s attribute `key`, if present.
    pub fn attr_str<'e>(&self, event: &'e TraceEvent, key: &str) -> Option<&'e str> {
        self.attr(event, key).and_then(TraceValue::as_str)
    }

    fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.index.get(name) {
            return *id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn current_parent(&self) -> SpanId {
        self.stack.last().map_or(SpanId::ROOT, |(id, _, _)| *id)
    }

    /// Advances the modular sampling counter; `true` when this item is
    /// retained. Sampling is decided per *span* at `begin` (the end
    /// event follows its begin's fate, so B/E pairs never split) and
    /// per instant.
    fn sampled(&mut self) -> bool {
        let kept = self.tick.is_multiple_of(self.sample);
        self.tick += 1;
        kept
    }

    fn push(
        &mut self,
        kind: TraceKind,
        name: &str,
        span: SpanId,
        parent: SpanId,
        attrs: Vec<(String, TraceValue)>,
    ) {
        let name = self.intern(name);
        let attrs = attrs
            .into_iter()
            .map(|(k, v)| (self.intern(&k), v))
            .collect();
        let event = TraceEvent {
            seq: self.next_seq,
            ts_ns: self.now_ns(),
            lane: 0,
            kind,
            name,
            span,
            parent,
            attrs,
        };
        self.next_seq += 1;
        self.events.push(event);
    }

    /// Opens a span. Returns [`SpanId::ROOT`] when disabled; otherwise
    /// a fresh id that must be closed with [`TraceSink::end`].
    pub fn begin(&mut self, name: &str) -> SpanId {
        self.begin_with(name, |_| {})
    }

    /// [`TraceSink::begin`] with attributes; the closure only runs when
    /// the sink is enabled *and* the span survives sampling.
    pub fn begin_with(&mut self, name: &str, fill: impl FnOnce(&mut AttrSet)) -> SpanId {
        if !self.enabled {
            return SpanId::ROOT;
        }
        let kept = self.sampled();
        let span = SpanId(self.next_span);
        self.next_span += 1;
        if kept {
            let parent = self.current_parent();
            let mut attrs = AttrSet::default();
            fill(&mut attrs);
            self.push(TraceKind::Begin, name, span, parent, attrs.items);
        }
        let name = self.intern(name);
        self.stack.push((span, kept, name));
        span
    }

    /// Closes a span opened by [`TraceSink::begin`]. Descendants still
    /// open at that point — abandoned by a panic unwind caught above
    /// this span, or by an early-return error path — are closed first,
    /// innermost out, so every recorded `Begin` always gets a matching
    /// `End`. Ending a span that is not on the stack is a no-op.
    pub fn end(&mut self, span: SpanId) {
        if !self.enabled || span == SpanId::ROOT {
            return;
        }
        let Some(pos) = self.stack.iter().rposition(|(id, _, _)| *id == span) else {
            return;
        };
        while self.stack.len() > pos {
            let (id, kept, name) = self.stack.pop().expect("len > pos >= 0");
            if kept {
                let parent = self.current_parent();
                let name = self.names[name.0 as usize].clone();
                self.push(TraceKind::End, &name, id, parent, Vec::new());
            }
        }
    }

    /// Records a point-in-time marker (subject to sampling).
    pub fn instant(&mut self, name: &str) {
        self.instant_with(name, |_| {});
    }

    /// [`TraceSink::instant`] with attributes.
    pub fn instant_with(&mut self, name: &str, fill: impl FnOnce(&mut AttrSet)) {
        if !self.enabled {
            return;
        }
        if !self.sampled() {
            return;
        }
        let parent = self.current_parent();
        let mut attrs = AttrSet::default();
        fill(&mut attrs);
        self.push(TraceKind::Instant, name, SpanId::ROOT, parent, attrs.items);
    }

    /// Records a decision event. Decisions carry per-item provenance
    /// and are **always retained** — sampling never drops them, so the
    /// one-decision-per-change completeness invariant holds at any
    /// `--trace-sample` value.
    pub fn decision_with(&mut self, name: &str, fill: impl FnOnce(&mut AttrSet)) {
        if !self.enabled {
            return;
        }
        let parent = self.current_parent();
        let mut attrs = AttrSet::default();
        fill(&mut attrs);
        self.push(TraceKind::Decision, name, SpanId::ROOT, parent, attrs.items);
    }

    /// Merges another sink's events into this one, assigning them the
    /// next free lane. Call in shard order on join: lane numbers then
    /// reflect shard order, sequence numbers continue this sink's
    /// monotonic counter, and span ids are offset into this sink's id
    /// space — so the merged trace of a parallel run is the shards'
    /// traces concatenated, exactly like the mining result itself.
    ///
    /// A disabled receiving sink drops everything (symmetry with
    /// recording); a dead shard simply never gets absorbed and its lane
    /// number is never allocated.
    pub fn absorb(&mut self, other: TraceSink) {
        if !self.enabled {
            return;
        }
        let lane = self.next_lane;
        self.next_lane += 1;
        let span_offset = self.next_span - 1;
        self.next_span += other.next_span - 1;
        let remap = |id: SpanId| {
            if id == SpanId::ROOT {
                SpanId::ROOT
            } else {
                SpanId(id.0 + span_offset)
            }
        };
        for event in other.events {
            let name = self.intern(&other.names[event.name.0 as usize]);
            let attrs = event
                .attrs
                .into_iter()
                .map(|(k, v)| (self.intern(&other.names[k.0 as usize]), v))
                .collect();
            self.events.push(TraceEvent {
                seq: self.next_seq,
                ts_ns: event.ts_ns,
                lane,
                kind: event.kind,
                name,
                span: remap(event.span),
                parent: remap(event.parent),
                attrs,
            });
            self.next_seq += 1;
        }
    }

    /// Exports the Chrome trace-event JSON array (see [`crate::chrome`]).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_skips_closures() {
        let mut sink = TraceSink::disabled();
        let span = sink.begin_with("work", |_| panic!("attr closure must not run"));
        assert_eq!(span, SpanId::ROOT);
        sink.instant_with("marker", |_| panic!("attr closure must not run"));
        sink.decision_with("decision", |_| panic!("attr closure must not run"));
        sink.end(span);
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn spans_nest_and_events_are_ordered() {
        let mut sink = TraceSink::enabled(1);
        let outer = sink.begin("outer");
        sink.instant_with("mark", |a| {
            a.str("key", "value").u64("n", 7);
        });
        let inner = sink.begin("inner");
        sink.end(inner);
        sink.end(outer);
        let events = sink.events();
        assert_eq!(events.len(), 5);
        let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Begin,
                TraceKind::Instant,
                TraceKind::Begin,
                TraceKind::End,
                TraceKind::End
            ]
        );
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Hierarchy: the instant and inner span hang off outer.
        assert_eq!(events[0].parent, SpanId::ROOT);
        assert_eq!(events[1].parent, outer);
        assert_eq!(events[2].parent, outer);
        assert_eq!(sink.attr_str(&events[1], "key"), Some("value"));
        assert_eq!(
            sink.attr(&events[1], "n").and_then(TraceValue::as_u64),
            Some(7)
        );
        // End events resolve to the begin's name.
        assert_eq!(sink.name(events[3].name), "inner");
        // Timestamps are monotonic within the lane.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn names_are_interned_once() {
        let mut sink = TraceSink::enabled(1);
        for _ in 0..5 {
            sink.instant("repeat");
        }
        assert_eq!(sink.events().len(), 5);
        let first = sink.events()[0].name;
        assert!(sink.events().iter().all(|e| e.name == first));
        assert_eq!(sink.lookup("repeat"), Some(first));
    }

    #[test]
    fn sampling_keeps_every_nth_span_but_all_decisions() {
        let mut sink = TraceSink::enabled(3);
        for i in 0..9 {
            let span = sink.begin("work");
            sink.decision_with("decision", |a| {
                a.u64("i", i);
            });
            sink.end(span);
        }
        let begins = sink
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Begin)
            .count();
        let ends = sink
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::End)
            .count();
        let decisions = sink
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Decision)
            .count();
        assert_eq!(begins, 3, "every 3rd span kept");
        assert_eq!(ends, begins, "B/E pairs never split by sampling");
        assert_eq!(decisions, 9, "decisions are never sampled out");
    }

    #[test]
    fn sampling_is_deterministic_across_reruns() {
        let run = || {
            let mut sink = TraceSink::enabled(4);
            for i in 0..13 {
                let span = sink.begin(&format!("s{i}"));
                sink.end(span);
            }
            sink.events()
                .iter()
                .map(|e| (e.seq, e.kind, sink.name(e.name).to_owned()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn absorb_assigns_lanes_in_order_and_renumbers() {
        let shard = |label: &str| {
            let mut sink = TraceSink::enabled(1);
            let span = sink.begin(label);
            sink.decision_with("decision", |a| {
                a.str("shard", label);
            });
            sink.end(span);
            sink
        };
        let mut main = TraceSink::enabled(1);
        main.instant("start");
        let a = shard("a");
        let b = shard("b");
        let (a_spans, b_spans) = (a.next_span, b.next_span);
        assert_eq!((a_spans, b_spans), (2, 2));
        main.absorb(a);
        main.absorb(b);
        // Lanes follow absorb order; seq stays globally monotonic.
        let lanes: Vec<u32> = main.events().iter().map(|e| e.lane).collect();
        assert_eq!(lanes, vec![0, 1, 1, 1, 2, 2, 2]);
        let seqs: Vec<u64> = main.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>());
        // Span ids were offset into the main sink's id space: the two
        // shards' spans are distinct after the merge.
        let spans: Vec<u64> = main
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Begin)
            .map(|e| e.span.0)
            .collect();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0], spans[1]);
        // Names re-interned: both decisions resolve.
        let decision_shards: Vec<&str> = main
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Decision)
            .filter_map(|e| main.attr_str(e, "shard"))
            .collect();
        assert_eq!(decision_shards, vec!["a", "b"]);
    }

    #[test]
    fn absorb_into_disabled_sink_is_a_noop() {
        let mut main = TraceSink::disabled();
        let mut shard = TraceSink::enabled(1);
        shard.instant("x");
        main.absorb(shard);
        assert!(main.is_empty());
    }

    #[test]
    fn ending_an_ancestor_closes_abandoned_descendants() {
        // The unwind pattern: a panic caught above `b` means `b` never
        // ends explicitly; ending `a` must still balance the trace.
        let mut sink = TraceSink::enabled(1);
        let a = sink.begin("a");
        let b = sink.begin("b");
        sink.end(a); // closes b (innermost first), then a
        sink.end(b); // stale: ignored
        let ends: Vec<&str> = sink
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::End)
            .map(|e| sink.name(e.name))
            .collect();
        assert_eq!(ends, vec!["b", "a"]);
        // Every Begin has a matching End.
        let begins = sink
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Begin)
            .count();
        assert_eq!(begins, ends.len());
    }
}
