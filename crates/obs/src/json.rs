//! A stable, machine-readable JSON snapshot of a registry.
//!
//! Hand-rolled writer (the workspace builds offline, so no serde): the
//! registry's `BTreeMap` storage gives deterministic key order, making
//! snapshots diffable and safe to pin in golden tests. Schema
//! (`version` bumps on breaking change):
//!
//! ```json
//! {
//!   "version": 2,
//!   "counters": { "mine.mined": 12 },
//!   "gauges": { "corpus.projects": 6.0 },
//!   "spans": {
//!     "mine.change": { "count": 14, "sum_ns": 1200, "min_ns": 10, "max_ns": 400,
//!                      "p50_ns": 85, "p90_ns": 340, "p95_ns": 340,
//!                      "p99_ns": 408, "p999_ns": 408,
//!                      "buckets": [[85, 7], [340, 13], [408, 14]] }
//!   }
//! }
//! ```
//!
//! Version 2 added the histogram-derived fields: `p*_ns` quantile
//! estimates (inclusive bucket upper edges, ≤6.25% one-sided error —
//! see [`crate::hist`]) and `buckets`, the sparse cumulative
//! distribution as `[upper_edge_ns, samples_le_edge]` pairs over the
//! fixed log-linear layout (only buckets with hits appear, so the last
//! pair's cumulative count equals `count`). The version-1 keys are
//! unchanged, so consumers that read only `count`/`sum_ns` (the bench
//! regression gate) keep working.

use crate::MetricsRegistry;
use std::fmt::Write as _;

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Escapes a string for a JSON literal (metric names are ASCII
/// identifiers in practice, but correctness is cheap). Shared with the
/// Chrome trace exporter, which does write arbitrary paths/messages.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` so the snapshot stays valid JSON (NaN and
/// infinities have no JSON literal; they degrade to 0).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "0.0".to_owned()
    }
}

/// Serializes `registry` to the versioned snapshot format.
pub fn to_json(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {SNAPSHOT_VERSION},");
    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, value) in registry.counters() {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}    \"{}\": {value}", escape(name));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, value) in registry.gauges() {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}    \"{}\": {}", escape(name), json_f64(value));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"spans\": {");
    first = true;
    let empty_hist = crate::Histogram::new();
    for (name, span) in registry.spans() {
        let sep = if first { "\n" } else { ",\n" };
        first = false;
        let hist = registry.hist(name).unwrap_or(&empty_hist);
        let _ = write!(
            out,
            "{sep}    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"buckets\": [",
            escape(name),
            span.count,
            span.sum_ns,
            span.min_ns,
            span.max_ns,
            hist.quantile(0.5),
            hist.quantile(0.9),
            hist.quantile(0.95),
            hist.quantile(0.99),
            hist.quantile(0.999),
        );
        let mut first_bucket = true;
        for (edge, cum) in hist.cumulative() {
            let sep = if first_bucket { "" } else { ", " };
            first_bucket = false;
            let _ = write!(out, "{sep}[{edge}, {cum}]");
        }
        out.push_str("] }");
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_stable_and_wellformed() {
        let mut reg = MetricsRegistry::new();
        reg.inc("b.second", 2);
        reg.inc("a.first", 1);
        reg.set_gauge("g", 6.0);
        reg.record_span("s", std::time::Duration::from_nanos(42));
        let json = to_json(&reg);
        // BTreeMap ordering: a.first before b.second, independent of
        // insertion order.
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"version\": 2"), "{json}");
        assert!(json.contains("\"g\": 6.0"), "{json}");
        // 42ns lands in the [42, 43] log-linear bucket; quantiles and
        // bucket edges report its inclusive upper edge, 43.
        assert!(
            json.contains(
                "\"s\": { \"count\": 1, \"sum_ns\": 42, \"min_ns\": 42, \"max_ns\": 42, \
                 \"p50_ns\": 43, \"p90_ns\": 43, \"p95_ns\": 43, \"p99_ns\": 43, \
                 \"p999_ns\": 43, \"buckets\": [[43, 1]] }"
            ),
            "{json}"
        );
        assert_eq!(json, to_json(&reg), "serialization is deterministic");
    }

    #[test]
    fn empty_registry_serializes_to_empty_sections() {
        let json = to_json(&MetricsRegistry::new());
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"gauges\": {}"), "{json}");
        assert!(json.contains("\"spans\": {}"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.inc("weird\"name\\with\nescapes", 1);
        let json = to_json(&reg);
        assert!(json.contains("weird\\\"name\\\\with\\nescapes"), "{json}");
    }
}
