//! Log-linear latency histograms with bounded relative error.
//!
//! An HDR-style histogram over `u64` nanosecond values, built for the
//! same regime as [`crate::SpanStats`]: zero dependencies, plain owned
//! data, per-shard recording merged on join. Where `SpanStats` keeps
//! only min/max/sum/count, a [`Histogram`] additionally answers
//! quantile queries (p50/p90/p99/p999) with a *documented* error bound
//! and exports cumulative bucket counts for Prometheus.
//!
//! # Bucket layout
//!
//! The layout is **fixed and deterministic** — it never depends on the
//! data, so two histograms over the same sample multiset are
//! bit-identical regardless of recording or merge order, and snapshots
//! diff cleanly across runs.
//!
//! Values are bucketed log-linearly with [`SUB_BUCKETS`] = 16 linear
//! sub-buckets per power-of-two octave:
//!
//! * values `0..16` get exact unit-width buckets (indices `0..16`);
//! * a value `v >= 16` with highest set bit `e` (so `2^e <= v < 2^(e+1)`)
//!   lands in sub-bucket `(v >> (e-4)) - 16` of octave `e - 4`, i.e.
//!   index `16 + (e-4)*16 + sub`. Each octave spans `[2^e, 2^(e+1))` in
//!   16 equal slices of width `2^(e-4)`.
//!
//! The full `u64` range needs at most [`NUM_BUCKETS`] = 976 buckets;
//! storage grows lazily to the highest bucket actually hit, so a span
//! whose samples sit in the microsecond range costs a few hundred
//! bytes, not 8 KiB.
//!
//! # Error bound
//!
//! [`Histogram::quantile`] returns the *inclusive upper edge* of the
//! bucket holding the requested rank. For the true rank value `x`:
//!
//! * `x < 16` (sub-16ns): the estimate is **exact** (unit buckets);
//! * otherwise the bucket width is `2^(e-4)` while `x >= 2^e`, so
//!   `x <= estimate <= x * (1 + 1/16)` — a one-sided relative error of
//!   at most **6.25%**, never an underestimate.
//!
//! Octave ends are exact: every edge of the form `2^k - 1` is an
//! inclusive bucket upper edge, so cumulative counts at those edges
//! (the Prometheus [`EXPOSITION_EDGES`]) are exact sample counts.

/// Linear sub-buckets per power-of-two octave (16 → ≤6.25% error).
pub const SUB_BUCKETS: u64 = 16;

/// Upper bound on the number of buckets for the full `u64` range:
/// 16 unit buckets + 60 octaves × 16 sub-buckets.
pub const NUM_BUCKETS: usize = 976;

/// Canonical `le` edges for Prometheus histogram exposition:
/// `2^k - 1` for `k` in `8..=36` (255 ns up to ~68.7 s), each an exact
/// inclusive bucket upper edge of the log-linear layout. `+Inf` is
/// appended by the exporter.
pub const EXPOSITION_EDGES: [u64; 29] = {
    let mut edges = [0u64; 29];
    let mut i = 0;
    while i < 29 {
        edges[i] = (1u64 << (i + 8)) - 1;
        i += 1;
    }
    edges
};

/// A mergeable log-linear histogram of `u64` nanosecond samples.
///
/// Equality is structural: two histograms are equal iff they saw the
/// same sample multiset (up to bucketing), independent of recording or
/// merge order — the backing vector grows to exactly the highest hit
/// bucket and counts are never decremented, so no trailing-zero or
/// capacity artifacts leak into `PartialEq`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts, lazily grown; the last element is
    /// always non-zero for a non-empty histogram.
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

/// Bucket index for value `v` under the fixed layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64; // 2^e <= v, e >= 4
    let sub = (v >> (e - 4)) - SUB_BUCKETS;
    (SUB_BUCKETS + (e - 4) * SUB_BUCKETS + sub) as usize
}

/// Inclusive `[lower, upper]` value range of bucket `index`.
///
/// Inverse of [`bucket_index`]: every `v` with
/// `bucket_index(v) == index` satisfies `lower <= v <= upper`.
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < 2 * SUB_BUCKETS {
        // Unit-width region: buckets 0..32 hold exactly value `i`
        // (octave 0 also has width 1).
        return (i, i);
    }
    let octave = i / SUB_BUCKETS - 1;
    let sub = i % SUB_BUCKETS;
    let lower = (SUB_BUCKETS + sub) << octave;
    // Width-minus-one first: the last bucket's upper edge is exactly
    // u64::MAX, so `lower + width` would overflow.
    let upper = lower + ((1u64 << octave) - 1);
    (lower, upper)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Folds one nanosecond sample into the histogram.
    pub fn record(&mut self, value_ns: u64) {
        let idx = bucket_index(value_ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(value_ns);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, ns (saturating like
    /// [`crate::SpanStats`]).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another histogram into this one (shard join).
    ///
    /// Element-wise addition over the fixed layout, so `merge` is
    /// associative and commutative — the property the registry's
    /// shard-merge discipline relies on (pinned by the proptests in
    /// `tests/hist_properties.rs`).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper edge of
    /// the bucket holding rank `ceil(q * count)`.
    ///
    /// Never underestimates; overestimates by at most 1/16 (6.25%) —
    /// see the module docs for the derivation. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(idx).1;
            }
        }
        // Unreachable: cum reaches self.count by construction.
        bucket_bounds(self.counts.len().saturating_sub(1)).1
    }

    /// Number of samples `<= v`, exact when `v` is an inclusive bucket
    /// upper edge (in particular every [`EXPOSITION_EDGES`] entry),
    /// otherwise rounded down to the nearest edge at or below `v`.
    pub fn count_le(&self, v: u64) -> u64 {
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if bucket_bounds(idx).1 > v {
                break;
            }
            cum += c;
        }
        cum
    }

    /// Cumulative counts over the non-empty prefix of the layout:
    /// `(upper_edge_ns, samples <= upper_edge)` for every bucket with a
    /// non-zero own count. Deterministic (layout order) and sparse —
    /// the JSON snapshot exports exactly this.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.counts.iter().enumerate().filter_map(move |(idx, &c)| {
            cum += c;
            (c > 0).then(|| (bucket_bounds(idx).1, cum))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_self_inverse_at_boundaries() {
        // Every bucket's bounds map back to the bucket, and adjacent
        // buckets tile the value space with no gaps or overlaps.
        let mut expected_lower = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lower, "bucket {idx} leaves a gap");
            assert!(lo <= hi, "bucket {idx} inverted");
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(hi), idx, "upper bound of {idx}");
            if hi == u64::MAX {
                assert_eq!(idx, NUM_BUCKETS - 1, "u64::MAX before the last bucket");
                return;
            }
            expected_lower = hi + 1;
        }
        panic!("layout never reached u64::MAX");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            let rank = (q * 32f64).ceil() as u64;
            assert_eq!(h.quantile(q), rank - 1, "q={q}");
        }
    }

    #[test]
    fn quantile_never_underestimates_and_stays_in_bound() {
        let samples: Vec<u64> = (0..2000u64).map(|i| i * i * 37 + 5).collect();
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                (est as f64) <= (exact as f64) * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "q={q}: {est} above the 6.25% bound over {exact}"
            );
        }
    }

    #[test]
    fn merge_matches_single_recording() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500u64 {
            let v = i * 7919 % 100_000;
            all.record(v);
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, all, "merge is commutative");
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_count() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 17, 900, 900, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.cumulative().collect();
        assert!(!buckets.is_empty());
        let mut last_edge = None;
        let mut last_cum = 0;
        for &(edge, cum) in &buckets {
            assert!(Some(edge) > last_edge, "edges strictly increase");
            assert!(cum > last_cum, "cumulative strictly increases at hits");
            last_edge = Some(edge);
            last_cum = cum;
        }
        assert_eq!(last_cum, h.count());
        assert_eq!(buckets.last().unwrap().0, u64::MAX);
    }

    #[test]
    fn count_le_is_exact_at_exposition_edges() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (0..3000u64).map(|i| i * 131 + i * i % 4096).collect();
        for &s in &samples {
            h.record(s);
        }
        for &edge in &EXPOSITION_EDGES {
            let exact = samples.iter().filter(|&&s| s <= edge).count() as u64;
            assert_eq!(h.count_le(edge), exact, "le={edge}");
        }
        assert_eq!(h.count_le(u64::MAX), h.count());
    }

    #[test]
    fn exposition_edges_are_bucket_edges() {
        for &edge in &EXPOSITION_EDGES {
            let idx = bucket_index(edge);
            assert_eq!(bucket_bounds(idx).1, edge, "{edge} is not an upper edge");
        }
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count_le(u64::MAX), 0);
        assert_eq!(h.cumulative().count(), 0);
        let mut other = Histogram::new();
        other.merge(&h);
        assert!(other.is_empty());
    }
}
