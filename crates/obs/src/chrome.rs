//! Chrome trace-event JSON export for a [`TraceSink`].
//!
//! Hand-rolled writer (same zero-dependency constraint as the
//! metrics snapshot writer) targeting the trace-event *JSON array format*: a
//! flat array of `B`/`E`/`i` events that Perfetto and
//! `chrome://tracing` load directly. Mapping:
//!
//! - [`TraceKind::Begin`]/[`TraceKind::End`] → `ph: "B"` / `ph: "E"`,
//! - [`TraceKind::Instant`] → `ph: "i"` with thread scope (`s: "t"`),
//! - [`TraceKind::Decision`] → `ph: "i"`, `s: "t"`, with the full
//!   attribute set (provenance + reason) in `args`,
//! - lane → `tid` (lane 0 is the orchestrating sink, lanes 1.. the
//!   absorbed shards in shard order), `pid` is always 1,
//! - `ts` is microseconds with nanosecond precision kept as a decimal
//!   fraction; `args.seq` carries the sink's own sequence number.
//!
//! Event *selection and order* are deterministic for a fixed input and
//! configuration (see [`TraceSink`] determinism notes); only the `ts`
//! values vary between runs.

use crate::trace::{TraceEvent, TraceKind, TraceSink};
use std::fmt::Write as _;

/// Serializes `sink` to the Chrome trace-event JSON array format.
pub fn to_chrome_json(sink: &TraceSink) -> String {
    to_chrome_json_tail(sink, usize::MAX)
}

/// Like [`to_chrome_json`], but renders only the **last**
/// `max_events` events — the shape an on-demand capture endpoint
/// (`GET /trace/capture?events=N`) wants: the most recent window of a
/// long-running sink, still a well-formed trace array.
pub fn to_chrome_json_tail(sink: &TraceSink, max_events: usize) -> String {
    let events = sink.events();
    let skip = events.len().saturating_sub(max_events);
    let mut out = String::new();
    out.push_str("[\n");
    let mut first = true;
    for event in &events[skip..] {
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(out, "{sep}{}", render_event(sink, event));
    }
    out.push_str("\n]\n");
    out
}

fn render_event(sink: &TraceSink, event: &TraceEvent) -> String {
    let ph = match event.kind {
        TraceKind::Begin => "B",
        TraceKind::End => "E",
        TraceKind::Instant | TraceKind::Decision => "i",
    };
    let mut entry = String::new();
    let _ = write!(
        entry,
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        crate::json::escape(sink.name(event.name)),
        event.lane,
        ts_us(event.ts_ns),
    );
    if ph == "i" {
        entry.push_str(",\"s\":\"t\"");
    }
    let _ = write!(entry, ",\"args\":{{\"seq\":{}", event.seq);
    for (key, value) in &event.attrs {
        let _ = write!(
            entry,
            ",\"{}\":{}",
            crate::json::escape(sink.name(*key)),
            render_value(value)
        );
    }
    entry.push_str("}}");
    entry
}

/// Nanoseconds → microseconds with the sub-µs precision kept as an
/// exact decimal fraction (no float rounding).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn render_value(value: &crate::trace::TraceValue) -> String {
    use crate::trace::TraceValue;
    match value {
        TraceValue::Str(s) => format!("\"{}\"", crate::json::escape(s)),
        TraceValue::U64(v) => v.to_string(),
        TraceValue::I64(v) => v.to_string(),
        TraceValue::F64(v) => crate::json::json_f64(*v),
        TraceValue::Bool(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_begin_end_instant_and_decision() {
        let mut sink = TraceSink::enabled(1);
        let span = sink.begin_with("mine.change", |a| {
            a.str("project", "u/p").u64("index", 3);
        });
        sink.instant("cache.lookup");
        sink.decision_with("decision", |a| {
            a.str("reason", "kept").bool("flag", true).f64("score", 0.5);
        });
        sink.end(span);
        let json = sink.to_chrome_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(
            json.contains("\"name\":\"mine.change\",\"ph\":\"B\""),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"mine.change\",\"ph\":\"E\""),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"cache.lookup\",\"ph\":\"i\""),
            "{json}"
        );
        assert!(json.contains("\"s\":\"t\""), "{json}");
        assert!(json.contains("\"project\":\"u/p\""), "{json}");
        assert!(json.contains("\"index\":3"), "{json}");
        assert!(json.contains("\"reason\":\"kept\""), "{json}");
        assert!(json.contains("\"flag\":true"), "{json}");
        assert!(json.contains("\"score\":0.5"), "{json}");
        // Every event carries pid/tid and its sequence number.
        assert_eq!(json.matches("\"pid\":1").count(), 4, "{json}");
        assert!(json.contains("\"args\":{\"seq\":0"), "{json}");
    }

    #[test]
    fn ts_is_microseconds_with_ns_fraction() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn strings_are_escaped() {
        let mut sink = TraceSink::enabled(1);
        sink.decision_with("decision", |a| {
            a.str("path", "dir\\A\"B\".java");
        });
        let json = sink.to_chrome_json();
        assert!(json.contains("dir\\\\A\\\"B\\\".java"), "{json}");
    }

    #[test]
    fn empty_sink_exports_an_empty_array() {
        let json = TraceSink::disabled().to_chrome_json();
        assert_eq!(json, "[\n\n]\n");
    }

    #[test]
    fn tail_renders_only_the_most_recent_events() {
        let mut sink = TraceSink::enabled(1);
        for name in ["e0", "e1", "e2", "e3", "e4"] {
            sink.instant(name);
        }
        let tail = to_chrome_json_tail(&sink, 2);
        assert!(!tail.contains("\"name\":\"e2\""), "{tail}");
        assert!(tail.contains("\"name\":\"e3\""), "{tail}");
        assert!(tail.contains("\"name\":\"e4\""), "{tail}");
        assert_eq!(to_chrome_json_tail(&sink, 0), "[\n\n]\n");
        assert_eq!(
            to_chrome_json_tail(&sink, 100),
            to_chrome_json(&sink),
            "an oversized window is the whole trace"
        );
    }

    #[test]
    fn truncated_sink_still_exports_cleanly() {
        let mut sink = TraceSink::enabled(1);
        for name in ["a", "b", "c", "d"] {
            sink.instant(name);
        }
        sink.truncate_oldest(2);
        assert_eq!(sink.len(), 2);
        let json = sink.to_chrome_json();
        assert!(!json.contains("\"name\":\"a\""), "{json}");
        assert!(json.contains("\"name\":\"c\""), "{json}");
        assert!(json.contains("\"name\":\"d\""), "{json}");
    }
}
