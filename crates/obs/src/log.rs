//! Structured JSON-lines logging with a bounded, non-blocking writer.
//!
//! The service-facing complement to the metrics registry: where
//! [`crate::MetricsRegistry`] aggregates, the logger journals — one
//! self-describing record per operational event (request served,
//! server booted, cache flushed), machine-parseable line by line.
//!
//! Design constraints, in priority order:
//!
//! 1. **Never block a worker.** Records are rendered on the caller
//!    thread (so the writer needs no access to caller state) and
//!    handed to a dedicated writer thread over a *bounded* channel via
//!    `try_send`. When the writer falls behind, records are **dropped
//!    and counted** ([`Logger::dropped`]) instead of back-pressuring
//!    the request path; the count is exported so an operator can see
//!    the loss, which is the same stance the admission queue takes
//!    with 429s.
//! 2. **Bounded on disk.** File sinks rotate by size: when the live
//!    file exceeds the configured limit it is renamed to `<path>.1`
//!    (replacing the previous rotation) and a fresh file is opened, so
//!    a long-lived server owns at most `2 × max_bytes` of log.
//! 3. **Cheap when off.** [`Logger::disabled`] reduces every emit to
//!    one branch — no rendering, no clock read, no allocation — so
//!    one-shot CLI runs pay nothing and their stdout stays
//!    byte-identical.
//!
//! # Record schema (JSON format)
//!
//! One JSON object per line, no trailing commas, deterministic key
//! order: `ts_ms` (Unix epoch milliseconds), `level`, `event`, then
//! the event's own fields in emission order:
//!
//! ```json
//! {"ts_ms":1754500000123,"level":"info","event":"serve.access","request_id":42,...}
//! ```
//!
//! The text format renders the same record as
//! `<ts_ms> <LEVEL> <event> key=value …` for humans tailing stderr.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json::{escape, json_f64};

/// Event severity, lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Diagnostic detail, off in production by default.
    Debug,
    /// Normal operational events (access records, lifecycle).
    Info,
    /// Degraded but self-healing conditions (sheds, deadline hits).
    Warn,
    /// Faults that lost work (panics, I/O errors).
    Error,
}

impl LogLevel {
    /// Lowercase name used in the JSON `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    fn upper(self) -> &'static str {
        match self {
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        }
    }
}

/// Output encoding for log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// One JSON object per line (the machine-facing default).
    #[default]
    Json,
    /// `<ts_ms> <LEVEL> <event> key=value …` for humans.
    Text,
}

/// Where rendered records go.
#[derive(Debug, Clone)]
pub enum LogSink {
    /// Line-buffered standard error (no rotation).
    Stderr,
    /// An append-opened file, rotated to `<path>.1` past `max_bytes`.
    File {
        /// Live log file path.
        path: PathBuf,
        /// Size threshold that triggers rotation (bytes).
        max_bytes: u64,
    },
}

/// Bound on the writer channel: records queued but not yet written.
/// Past this, emits drop (counted) instead of blocking.
pub const QUEUE_CAPACITY: usize = 4096;

enum Msg {
    Line(String),
    Sync(SyncSender<()>),
}

struct Inner {
    tx: SyncSender<Msg>,
    format: LogFormat,
    min_level: LogLevel,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

/// A cloneable handle to the logging pipeline; `None` inside means
/// disabled (every emit is a single branch).
#[derive(Clone, Default)]
pub struct Logger {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Logger {
    /// A logger that drops everything for free — the one-shot-CLI
    /// default.
    pub fn disabled() -> Logger {
        Logger { inner: None }
    }

    /// A logger writing to standard error.
    pub fn stderr(format: LogFormat, min_level: LogLevel) -> Logger {
        Logger::start(LogSink::Stderr, format, min_level)
    }

    /// A logger writing to `path`, rotating to `<path>.1` once the
    /// live file exceeds `max_bytes`.
    pub fn file(
        path: impl Into<PathBuf>,
        max_bytes: u64,
        format: LogFormat,
        min_level: LogLevel,
    ) -> Logger {
        Logger::start(
            LogSink::File {
                path: path.into(),
                max_bytes,
            },
            format,
            min_level,
        )
    }

    /// Starts the writer thread for `sink`.
    pub fn start(sink: LogSink, format: LogFormat, min_level: LogLevel) -> Logger {
        let (tx, rx) = mpsc::sync_channel(QUEUE_CAPACITY);
        thread::Builder::new()
            .name("obs-log-writer".into())
            .spawn(move || writer_loop(rx, sink))
            .expect("spawn log writer thread");
        Logger {
            inner: Some(Arc::new(Inner {
                tx,
                format,
                min_level,
                emitted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// `true` when records are actually going somewhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records accepted onto the writer queue so far.
    pub fn emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.emitted.load(Ordering::Relaxed))
    }

    /// Records dropped because the writer queue was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Starts building one record; finish with [`EventBuilder::emit`].
    /// Below `min_level` (or on a disabled logger) the builder is
    /// inert: field calls are no-ops and `emit` does nothing.
    pub fn event(&self, level: LogLevel, name: &str) -> EventBuilder<'_> {
        let live = matches!(&self.inner, Some(inner) if level >= inner.min_level);
        let mut builder = EventBuilder {
            logger: self,
            line: String::new(),
            live,
            format: self
                .inner
                .as_ref()
                .map(|i| i.format)
                .unwrap_or(LogFormat::Json),
        };
        if live {
            builder.begin(level, name);
        }
        builder
    }

    /// Blocks until every record emitted *before* this call has been
    /// written to the sink, or `timeout` elapses. Returns `false` on
    /// timeout (the writer is wedged or drowned). Used at drain time
    /// so the final access records are on disk before exit.
    pub fn sync(&self, timeout: Duration) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if inner.tx.send(Msg::Sync(ack_tx)).is_err() {
            return false;
        }
        ack_rx.recv_timeout(timeout).is_ok()
    }

    fn submit(&self, line: String) {
        let Some(inner) = &self.inner else { return };
        match inner.tx.try_send(Msg::Line(line)) {
            Ok(()) => {
                inner.emitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One in-flight record: append typed fields, then [`emit`].
///
/// Rendering happens inline (caller thread) so a record carries no
/// borrowed state into the writer; an inert builder (disabled logger
/// or filtered level) skips all of it.
///
/// [`emit`]: EventBuilder::emit
pub struct EventBuilder<'a> {
    logger: &'a Logger,
    line: String,
    live: bool,
    format: LogFormat,
}

impl EventBuilder<'_> {
    fn begin(&mut self, level: LogLevel, name: &str) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        match self.format {
            LogFormat::Json => {
                self.line.push_str(&format!(
                    "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":\"{}\"",
                    level.as_str(),
                    escape(name)
                ));
            }
            LogFormat::Text => {
                self.line
                    .push_str(&format!("{ts_ms} {} {}", level.upper(), name));
            }
        }
    }

    fn key(&mut self, key: &str) {
        match self.format {
            LogFormat::Json => {
                self.line.push_str(&format!(",\"{}\":", escape(key)));
            }
            LogFormat::Text => {
                self.line.push(' ');
                self.line.push_str(key);
                self.line.push('=');
            }
        }
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if self.live {
            self.key(key);
            match self.format {
                LogFormat::Json => self.line.push_str(&format!("\"{}\"", escape(value))),
                LogFormat::Text => {
                    if value.contains([' ', '=', '"']) || value.is_empty() {
                        self.line.push_str(&format!("{:?}", value));
                    } else {
                        self.line.push_str(value);
                    }
                }
            }
        }
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if self.live {
            self.key(key);
            self.line.push_str(&format!("{value}"));
        }
        self
    }

    /// Appends a float field (finite rendering per the JSON snapshot).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if self.live {
            self.key(key);
            self.line.push_str(&json_f64(value));
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if self.live {
            self.key(key);
            self.line.push_str(if value { "true" } else { "false" });
        }
        self
    }

    /// Renders the record and hands it to the writer (non-blocking;
    /// drops and counts when the queue is full).
    pub fn emit(mut self) {
        if !self.live {
            return;
        }
        if matches!(self.format, LogFormat::Json) {
            self.line.push('}');
        }
        self.line.push('\n');
        self.logger.submit(std::mem::take(&mut self.line));
    }
}

fn writer_loop(rx: Receiver<Msg>, sink: LogSink) {
    let mut file = match &sink {
        LogSink::Stderr => None,
        LogSink::File { path, .. } => open_append(path),
    };
    let mut written: u64 = match (&sink, &file) {
        (LogSink::File { .. }, Some(f)) => f.metadata().map(|m| m.len()).unwrap_or(0),
        _ => 0,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Line(line) => match &sink {
                LogSink::Stderr => {
                    let stderr = std::io::stderr();
                    let mut handle = stderr.lock();
                    let _ = handle.write_all(line.as_bytes());
                }
                LogSink::File { path, max_bytes } => {
                    if written >= *max_bytes {
                        // Size rotation: the live file becomes
                        // <path>.1 (previous rotation replaced), and a
                        // fresh live file is opened.
                        drop(file.take());
                        let mut rotated = path.as_os_str().to_owned();
                        rotated.push(".1");
                        let _ = fs::rename(path, PathBuf::from(rotated));
                        file = open_append(path);
                        written = 0;
                    }
                    if let Some(f) = file.as_mut() {
                        if f.write_all(line.as_bytes()).is_ok() {
                            written += line.len() as u64;
                        }
                    }
                }
            },
            Msg::Sync(ack) => {
                if let Some(f) = file.as_mut() {
                    let _ = f.flush();
                }
                let _ = ack.send(());
            }
        }
    }
    if let Some(f) = file.as_mut() {
        let _ = f.flush();
    }
}

fn open_append(path: &PathBuf) -> Option<fs::File> {
    fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("obs_log_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn disabled_logger_is_inert() {
        let log = Logger::disabled();
        log.event(LogLevel::Error, "boom")
            .str("k", "v")
            .u64("n", 1)
            .emit();
        assert_eq!(log.emitted(), 0);
        assert_eq!(log.dropped(), 0);
        assert!(!log.is_enabled());
        assert!(
            log.sync(Duration::from_millis(1)),
            "sync on disabled is free"
        );
    }

    #[test]
    fn json_records_are_one_valid_line_each() {
        let path = temp_path("json");
        let _ = fs::remove_file(&path);
        let log = Logger::file(&path, u64::MAX, LogFormat::Json, LogLevel::Info);
        log.event(LogLevel::Info, "serve.access")
            .u64("request_id", 7)
            .str("method", "GET")
            .str("path", "/metrics")
            .u64("status", 200)
            .bool("ok", true)
            .f64("rate", 0.5)
            .emit();
        log.event(LogLevel::Debug, "filtered").emit();
        assert!(log.sync(Duration::from_secs(5)));
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug filtered out: {text:?}");
        let line = lines[0];
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(
            line.ends_with(
                "\"event\":\"serve.access\",\"request_id\":7,\"method\":\"GET\",\
                 \"path\":\"/metrics\",\"status\":200,\"ok\":true,\"rate\":0.5}"
            ),
            "{line}"
        );
        assert_eq!(log.emitted(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn text_format_is_key_value() {
        let path = temp_path("text");
        let _ = fs::remove_file(&path);
        let log = Logger::file(&path, u64::MAX, LogFormat::Text, LogLevel::Debug);
        log.event(LogLevel::Warn, "serve.shed")
            .u64("queue_depth", 64)
            .str("note", "has spaces")
            .emit();
        assert!(log.sync(Duration::from_secs(5)));
        let text = fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        assert!(
            line.ends_with("WARN serve.shed queue_depth=64 note=\"has spaces\""),
            "{line}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rotation_caps_the_live_file() {
        let path = temp_path("rotate");
        let mut rotated = path.as_os_str().to_owned();
        rotated.push(".1");
        let rotated = PathBuf::from(rotated);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&rotated);
        let log = Logger::file(&path, 256, LogFormat::Json, LogLevel::Info);
        for i in 0..64 {
            log.event(LogLevel::Info, "fill").u64("i", i).emit();
        }
        assert!(log.sync(Duration::from_secs(5)));
        assert!(rotated.exists(), "rotation never happened");
        let live = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        // The live file restarts after each rotation; one record may
        // straddle the threshold, so allow threshold + one record.
        assert!(live < 256 + 128, "live file too large: {live}");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&rotated);
    }

    #[test]
    fn overflow_drops_are_counted_not_blocking() {
        // A sink pointed at an unwritable path still consumes the
        // queue (writes fail silently), so fill pressure is hard to
        // create deterministically; instead exercise the accounting
        // path directly by saturating a tiny window between syncs.
        let path = temp_path("drops");
        let _ = fs::remove_file(&path);
        let log = Logger::file(&path, u64::MAX, LogFormat::Json, LogLevel::Info);
        for i in 0..QUEUE_CAPACITY as u64 * 4 {
            log.event(LogLevel::Info, "burst").u64("i", i).emit();
        }
        assert!(log.sync(Duration::from_secs(10)));
        let written = fs::read_to_string(&path).unwrap().lines().count() as u64;
        assert_eq!(
            written,
            log.emitted(),
            "every accepted record reaches the sink"
        );
        assert_eq!(
            log.emitted() + log.dropped(),
            QUEUE_CAPACITY as u64 * 4,
            "accepted + dropped partitions the burst"
        );
        let _ = fs::remove_file(&path);
    }
}
