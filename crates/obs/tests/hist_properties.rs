//! Property tests for the log-linear histogram: the algebraic laws the
//! registry's shard-merge discipline depends on, and the documented
//! quantile error bound checked against exact sorted samples.

use obs::hist::{bucket_bounds, bucket_index, Histogram, SUB_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// Sample values spanning the interesting regimes: exact unit buckets,
/// mid-range latencies, and the wide octaves near the top.
fn sample_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..1_000_000,
        1_000_000u64..10_000_000_000,
        any::<u64>(),
    ]
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in vec(sample_value(), 0..200),
                            b in vec(sample_value(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in vec(sample_value(), 0..100),
                            b in vec(sample_value(), 0..100),
                            c in vec(sample_value(), 0..100)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_single_recording(values in vec(sample_value(), 1..300),
                                     split in 0usize..300) {
        // Recording a sample multiset in one histogram or sharded into
        // two then merged is indistinguishable — the property that
        // makes sequential and parallel pipeline runs agree.
        let split = split % values.len();
        let whole = hist_of(&values);
        let mut sharded = hist_of(&values[..split]);
        sharded.merge(&hist_of(&values[split..]));
        prop_assert_eq!(sharded, whole);
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound(
        values in vec(sample_value(), 1..500),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(est >= exact, "q={q}: {est} underestimates exact {exact}");
        let bound = (exact as f64) * (1.0 + 1.0 / SUB_BUCKETS as f64);
        prop_assert!(
            (est as f64) <= bound.max(exact as f64 + 1.0),
            "q={q}: {est} above the 1/{SUB_BUCKETS} relative bound over {exact}"
        );
    }

    #[test]
    fn layout_roundtrips_every_value(v in any::<u64>()) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {idx} = [{lo}, {hi}]");
    }

    #[test]
    fn cumulative_counts_are_monotone_and_complete(
        values in vec(sample_value(), 0..300),
    ) {
        let h = hist_of(&values);
        let mut last_cum = 0u64;
        let mut last_edge = None;
        for (edge, cum) in h.cumulative() {
            prop_assert!(Some(edge) > last_edge);
            prop_assert!(cum > last_cum);
            last_edge = Some(edge);
            last_cum = cum;
        }
        prop_assert_eq!(last_cum, values.len() as u64);
    }
}
