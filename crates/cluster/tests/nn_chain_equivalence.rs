//! The nearest-neighbor-chain agglomeration must reproduce the naive
//! quadratic-scan reference: same merges, same node ids, same heights,
//! same tie-breaking (smallest node-id pair first).
//!
//! The guarantee has a precisely-bounded caveat. When all pairwise
//! distances are distinct (generic position) the two algorithms agree
//! exactly at every size — `matches_naive_on_random_coords` below. When
//! distances tie exactly, the chain still reproduces the reference on
//! every small input we can check exhaustively (all 4-level 1-D grids
//! with n ≤ 5, all quarter-quantized dissimilarity matrices with
//! n ≤ 3), but on larger adversarial tie tangles — several exactly
//! equal merge heights whose candidate pairs share operands — the
//! reference's global smallest-pair scan uses information (final node
//! ids of not-yet-discovered merges) that no O(n²) chain can have, and
//! the two may resolve the tangle into different, equally valid trees.
//! For those inputs `fast_path_is_a_valid_linkage_tree` checks the
//! chain's output against the linkage *definition* instead: every merge
//! height must equal the complete/single/average distance between its
//! children's leaf sets, recomputed independently from the matrix.
//!
//! Complete and single linkage heights are compared bitwise — both
//! implementations only ever *select* input distances (max/min), never
//! recombine them. Average linkage recombines: the Lance–Williams
//! weighted update and the naive sum-over-all-leaf-pairs mean are the
//! same rational number but round differently in floating point, so
//! average heights are compared to 1e-9 and the tie-stress generators
//! (where an ulp can flip an exact tie) only run complete/single.

use cluster::{agglomerate_matrix, agglomerate_naive, Dendrogram, DistanceMatrix, Linkage};
use proptest::collection::vec;
use proptest::prelude::*;

const ALL_LINKAGES: [Linkage; 3] = [Linkage::Complete, Linkage::Single, Linkage::Average];
const SELECTING_LINKAGES: [Linkage; 2] = [Linkage::Complete, Linkage::Single];

/// Asserts the chain and naive dendrograms are structurally identical;
/// heights compared bitwise unless `height_tol` is given.
fn assert_equivalent(matrix: &DistanceMatrix, linkage: Linkage, height_tol: Option<f64>) {
    let fast = agglomerate_matrix(matrix, linkage);
    let naive = agglomerate_naive(matrix.len(), |i, j| matrix.get(i, j), linkage);
    assert_eq!(fast.n_leaves, naive.n_leaves);
    assert_eq!(fast.merges.len(), naive.merges.len(), "{linkage:?}");
    for (k, (f, n)) in fast.merges.iter().zip(&naive.merges).enumerate() {
        assert_eq!(
            (f.left, f.right),
            (n.left, n.right),
            "{linkage:?} merge {k}"
        );
        match height_tol {
            None => assert!(
                f.distance == n.distance,
                "{linkage:?} merge {k}: height {} != {}",
                f.distance,
                n.distance
            ),
            Some(tol) => assert!(
                (f.distance - n.distance).abs() <= tol,
                "{linkage:?} merge {k}: height {} vs {}",
                f.distance,
                n.distance
            ),
        }
    }
}

/// Checks `dendrogram` against the linkage definition itself: heights
/// are non-decreasing and every merge's height equals the linkage
/// distance between its children's leaf sets, recomputed from the
/// matrix. This holds for *any* valid tie resolution, so it applies
/// even where chain and naive disagree on adversarial ties.
fn assert_valid_linkage_tree(dendrogram: &Dendrogram, matrix: &DistanceMatrix, linkage: Linkage) {
    let n = dendrogram.n_leaves;
    for w in dendrogram.merges.windows(2) {
        assert!(
            w[0].distance <= w[1].distance + 1e-9,
            "heights must be non-decreasing"
        );
    }
    for (k, m) in dendrogram.merges.iter().enumerate() {
        assert!(
            m.left < m.right && m.right < n + k,
            "{linkage:?} merge {k} ids"
        );
        let left = dendrogram.leaves_under(m.left);
        let right = dendrogram.leaves_under(m.right);
        let cross: Vec<f64> = left
            .iter()
            .flat_map(|&a| right.iter().map(move |&b| matrix.get(a, b)))
            .collect();
        let expected = match linkage {
            Linkage::Complete => cross.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Linkage::Single => cross.iter().copied().fold(f64::INFINITY, f64::min),
            Linkage::Average => cross.iter().sum::<f64>() / cross.len() as f64,
        };
        let tol = match linkage {
            Linkage::Average => 1e-9,
            _ => 0.0,
        };
        assert!(
            (m.distance - expected).abs() <= tol,
            "{linkage:?} merge {k}: height {} but linkage distance between children is {expected}",
            m.distance
        );
    }
}

fn matrix_from_coords(coords: &[f64]) -> DistanceMatrix {
    DistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generic-position inputs, every linkage, exact equivalence. With
    /// probability 1 no two pairwise distances collide, so this
    /// exercises the whole algorithm except tie resolution at sizes
    /// well beyond the exhaustive checks.
    #[test]
    fn matches_naive_on_random_coords(coords in vec(0.0f64..1.0, 2..20)) {
        let matrix = matrix_from_coords(&coords);
        for linkage in ALL_LINKAGES {
            let tol = match linkage {
                Linkage::Average => Some(1e-9),
                _ => None,
            };
            assert_equivalent(&matrix, linkage, tol);
        }
    }

    /// Tie-heavy inputs at any size: coordinates on a tiny integer
    /// grid, so zero distances and exact height ties are everywhere
    /// (the shape real usage-change corpora have — many identical
    /// changes). Beyond exhaustively-verified sizes the chain may
    /// resolve tie tangles differently from the reference, so this
    /// asserts validity against the linkage definition, which any
    /// correct resolution satisfies.
    #[test]
    fn duplicate_grids_yield_valid_linkage_trees(coords in vec(0usize..4, 2..24)) {
        let coords: Vec<f64> = coords.into_iter().map(|c| c as f64).collect();
        let matrix = matrix_from_coords(&coords);
        for linkage in ALL_LINKAGES {
            let d = agglomerate_matrix(&matrix, linkage);
            assert_valid_linkage_tree(&d, &matrix, linkage);
        }
    }

    /// Arbitrary symmetric dissimilarities quantized to quarters: not
    /// even metric, and almost every candidate pair ties with another.
    /// Same validity-not-equivalence rationale as above.
    #[test]
    fn quantized_ties_yield_valid_linkage_trees(
        n in 2usize..12,
        quarters in vec(0usize..5, 66),
    ) {
        let condensed: Vec<f64> =
            quarters[..n * (n - 1) / 2].iter().map(|&q| q as f64 * 0.25).collect();
        let matrix = DistanceMatrix::from_condensed(n, condensed);
        for linkage in SELECTING_LINKAGES {
            let d = agglomerate_matrix(&matrix, linkage);
            assert_valid_linkage_tree(&d, &matrix, linkage);
        }
    }

    /// The dendrogram contract holds for the fast path regardless of
    /// linkage: n−1 merges, node k = n+k, heights non-decreasing
    /// (reducible linkages cannot invert), every leaf under the root.
    #[test]
    fn fast_path_keeps_dendrogram_contract(coords in vec(0.0f64..1.0, 1..24)) {
        let matrix = matrix_from_coords(&coords);
        let n = coords.len();
        for linkage in ALL_LINKAGES {
            let d = agglomerate_matrix(&matrix, linkage);
            prop_assert_eq!(d.n_leaves, n);
            prop_assert_eq!(d.merges.len(), n - 1);
            for w in d.merges.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance + 1e-9);
            }
            for (k, m) in d.merges.iter().enumerate() {
                prop_assert!(m.left < m.right);
                prop_assert!(m.right < n + k);
            }
            if n > 1 {
                let root = n + d.merges.len() - 1;
                prop_assert_eq!(d.leaves_under(root).len(), n);
            }
        }
    }
}

/// Exhaustive exact-equivalence check on every 4-point and 5-point
/// configuration over a 4-level quantized grid: the smallest sizes
/// where chain discovery order can differ from merge order, with every
/// tie pattern a 1-D grid can force. 4⁴ + 4⁵ = 1280 configs.
#[test]
fn exhaustive_small_grids_match_naive_exactly() {
    for n in [4usize, 5] {
        for code in 0..4usize.pow(n as u32) {
            let mut c = code;
            let coords: Vec<f64> = (0..n)
                .map(|_| {
                    let level = c % 4;
                    c /= 4;
                    level as f64
                })
                .collect();
            let matrix = matrix_from_coords(&coords);
            for linkage in SELECTING_LINKAGES {
                assert_equivalent(&matrix, linkage, None);
            }
        }
    }
}

/// Exhaustive exact-equivalence check on every quarter-quantized
/// 3-point dissimilarity matrix (not necessarily metric): 5³ configs.
#[test]
fn exhaustive_three_point_quantized_match_naive_exactly() {
    for code in 0..5usize.pow(3) {
        let mut c = code;
        let condensed: Vec<f64> = (0..3)
            .map(|_| {
                let q = c % 5;
                c /= 5;
                q as f64 * 0.25
            })
            .collect();
        let matrix = DistanceMatrix::from_condensed(3, condensed);
        for linkage in SELECTING_LINKAGES {
            assert_equivalent(&matrix, linkage, None);
        }
    }
}
