//! Acceptance checks for the shared-matrix clustering stack:
//!
//! 1. the whole pipeline — matrix build, agglomeration, silhouette cut
//!    search — evaluates each pairwise distance **exactly once**;
//! 2. the nn-chain agglomeration beats the naive quadratic-scan loop by
//!    at least an order of magnitude at a few hundred items (the gap
//!    grows with n: it is O(n²) vs O(n³)-and-worse), while producing
//!    the identical dendrogram.

use cluster::{agglomerate_matrix, agglomerate_naive, DistanceMatrix, Linkage};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A deterministic generic-position matrix (all distances distinct with
/// overwhelming probability), so naive and chain agree exactly and the
/// timing comparison is apples to apples.
fn scrambled_matrix_with_counter(n: usize, evals: &AtomicUsize) -> DistanceMatrix {
    DistanceMatrix::from_fn(n, |i, j| {
        evals.fetch_add(1, Ordering::Relaxed);
        let x = ((i * 2654435761) ^ (j * 40503)) % 100_003;
        0.5 + x as f64 / 100_003.0
    })
}

/// Building the matrix costs exactly n·(n−1)/2 distance evaluations,
/// and *nothing downstream adds any*: agglomeration and the full
/// best-cut silhouette search run off the shared matrix alone.
#[test]
fn clustering_and_best_cut_never_reevaluate_distances() {
    let n = 60;
    let evals = AtomicUsize::new(0);
    let matrix = scrambled_matrix_with_counter(n, &evals);
    assert_eq!(evals.load(Ordering::Relaxed), n * (n - 1) / 2);

    let dendrogram = agglomerate_matrix(&matrix, Linkage::Complete);
    let (k, clusters, score) = dendrogram.best_cut(&matrix, n);
    assert!(k >= 2 && !clusters.is_empty() && score.is_finite());

    assert_eq!(
        evals.load(Ordering::Relaxed),
        n * (n - 1) / 2,
        "agglomerate_matrix + best_cut must not re-evaluate any pairwise distance"
    );
}

/// The nn-chain must be ≥10× faster than the naive reference at
/// n = 300 — even in debug builds on one core — and bit-identical on
/// this generic-position input. (Release-mode criterion benches put the
/// same gap at ~35× for n = 160 and growing; see EXPERIMENTS.md.)
#[test]
fn nn_chain_is_an_order_of_magnitude_faster_than_naive() {
    let n = 300;
    let evals = AtomicUsize::new(0);
    let matrix = scrambled_matrix_with_counter(n, &evals);

    let start = Instant::now();
    let naive = agglomerate_naive(n, |i, j| matrix.get(i, j), Linkage::Complete);
    let naive_time = start.elapsed();

    let start = Instant::now();
    let fast = agglomerate_matrix(&matrix, Linkage::Complete);
    let fast_time = start.elapsed();

    assert_eq!(naive.merges, fast.merges, "same dendrogram, bit for bit");

    let ratio = naive_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 10.0,
        "expected ≥10× speedup, got {ratio:.1}× (naive {naive_time:?}, nn-chain {fast_time:?})"
    );
}
