//! Memoized label similarity over interned labels.
//!
//! The corpus re-uses a small vocabulary of DAG labels (`Cipher`,
//! `getInstance`, `arg1:AES/CBC/PKCS5Padding`, …) across thousands of
//! usage changes, so during a distance-matrix build the same label
//! pair is compared many times. [`LabelCache`] interns each label once
//! (classifying it into edit-distance units at intern time) and
//! memoizes the Levenshtein similarity ratio per unordered id pair, so
//! each distinct pair is computed exactly once no matter how many
//! paths mention it. The cache is `Sync` and is shared across the
//! worker threads of [`DistanceMatrix::from_fn`](crate::DistanceMatrix::from_fn).

use crate::lev::{classify, units_similarity, LabelUnits};
use std::collections::HashMap;
use std::sync::RwLock;

/// Number of label ids the `u32` id space can hold. Interning past
/// this would wrap ids and make [`pack`] collide distinct pairs —
/// silently returning the wrong memoized similarity — so the cache
/// fails closed instead (see [`LabelCache::similarity`]).
const ID_SPACE: u64 = 1 << 32;

/// An interning, memoizing wrapper around
/// [`label_similarity`](crate::label_similarity).
///
/// # Example
///
/// ```
/// let cache = cluster::LabelCache::default();
/// let direct = cluster::label_similarity("arg1:AES/ECB", "arg1:AES/CBC");
/// assert_eq!(cache.similarity("arg1:AES/ECB", "arg1:AES/CBC"), direct);
/// // The second lookup is a memo hit.
/// assert_eq!(cache.similarity("arg1:AES/CBC", "arg1:AES/ECB"), direct);
/// ```
#[derive(Debug)]
pub struct LabelCache {
    interner: RwLock<Interner>,
    memo: RwLock<HashMap<u64, f64>>,
    /// Exclusive cap on assignable label ids — [`ID_SPACE`] in
    /// production, lowered only through [`LabelCache::with_id_cap`] so
    /// the exhaustion behavior is testable without 2³² inserts.
    id_cap: u64,
}

impl Default for LabelCache {
    fn default() -> Self {
        LabelCache::with_id_cap(ID_SPACE)
    }
}

#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, u32>,
    /// Classification of each interned label, indexed by id.
    units: Vec<LabelUnits>,
}

impl LabelCache {
    /// A cache whose id space is capped at `id_cap` distinct labels
    /// (clamped to the real `u32` id space). This is the test seam for
    /// the exhaustion path: production code uses
    /// [`LabelCache::default`], which caps at 2³².
    #[must_use]
    pub fn with_id_cap(id_cap: u64) -> LabelCache {
        LabelCache {
            interner: RwLock::new(Interner::default()),
            memo: RwLock::new(HashMap::new()),
            id_cap: id_cap.min(ID_SPACE),
        }
    }

    /// The memoized similarity ratio — identical to
    /// [`label_similarity`](crate::label_similarity) on the same pair.
    ///
    /// # Panics
    ///
    /// If interning would exceed the `u32` label-id space (2³²
    /// distinct labels, or the [`LabelCache::with_id_cap`] test cap).
    /// Wrapped ids would collide memoized pairs and silently return
    /// wrong similarities, so the cache fails closed instead; no real
    /// corpus comes near the cap.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let ia = self.intern(a);
        let ib = self.intern(b);
        let key = pack(ia, ib);
        if let Some(&hit) = self.memo.read().expect("memo lock").get(&key) {
            return hit;
        }
        let computed = {
            let interner = self.interner.read().expect("interner lock");
            units_similarity(&interner.units[ia as usize], &interner.units[ib as usize])
        };
        self.memo.write().expect("memo lock").insert(key, computed);
        computed
    }

    /// Number of distinct labels interned so far.
    #[must_use]
    pub fn interned_labels(&self) -> usize {
        self.interner.read().expect("interner lock").units.len()
    }

    /// Number of distinct label pairs memoized so far.
    #[must_use]
    pub fn memoized_pairs(&self) -> usize {
        self.memo.read().expect("memo lock").len()
    }

    fn intern(&self, label: &str) -> u32 {
        if let Some(&id) = self.interner.read().expect("interner lock").ids.get(label) {
            return id;
        }
        let mut interner = self.interner.write().expect("interner lock");
        // Another thread may have interned it between the locks.
        if let Some(&id) = interner.ids.get(label) {
            return id;
        }
        // Fail closed at the id-space boundary: a wrapped id would make
        // `pack` collide distinct pairs and return wrong similarities.
        let next = interner.units.len() as u64;
        assert!(
            next < self.id_cap,
            "label interner exhausted its id space ({next} distinct labels): \
             refusing to wrap u32 ids and corrupt memoized similarities"
        );
        #[allow(clippy::cast_possible_truncation)] // next < id_cap ≤ 2³²
        let id = next as u32;
        interner.units.push(classify(label));
        interner.ids.insert(label.to_owned(), id);
        id
    }

    /// Every memoized pair as `(label_a, label_b, similarity)`, sorted
    /// by label pair for a deterministic snapshot. This is the
    /// persistence export used by the cluster cache;
    /// [`LabelCache::preload`] is its inverse.
    #[must_use]
    pub fn memo_entries(&self) -> Vec<(String, String, f64)> {
        let interner = self.interner.read().expect("interner lock");
        // Reverse map: id → label.
        let mut labels: Vec<&str> = vec![""; interner.units.len()];
        for (label, &id) in &interner.ids {
            labels[id as usize] = label;
        }
        let memo = self.memo.read().expect("memo lock");
        let mut out: Vec<(String, String, f64)> = memo
            .iter()
            .map(|(&key, &sim)| {
                let x = labels[(key >> 32) as usize];
                let y = labels[(key & u64::from(u32::MAX)) as usize];
                // Canonicalize lexicographically: `pack` orders by
                // intern id, which differs between cache instances.
                let (a, b) = if x <= y { (x, y) } else { (y, x) };
                (a.to_owned(), b.to_owned(), sim)
            })
            .collect();
        out.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
        out
    }

    /// Seeds the memo with a previously computed similarity (the
    /// persistence import). A seeded value short-circuits exactly like
    /// a locally memoized one, so preloading values produced by
    /// [`LabelCache::memo_entries`] leaves every later
    /// [`LabelCache::similarity`] call bit-identical to a cold run.
    pub fn preload(&self, a: &str, b: &str, sim: f64) {
        if a == b {
            return; // equal labels never touch the memo
        }
        let key = pack(self.intern(a), self.intern(b));
        self.memo
            .write()
            .expect("memo lock")
            .entry(key)
            .or_insert(sim);
    }
}

/// Packs an unordered id pair into one map key.
fn pack(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (u64::from(lo) << 32) | u64::from(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label_similarity;

    #[test]
    fn agrees_with_uncached_similarity() {
        let cache = LabelCache::default();
        let labels = [
            "getInstance",
            "init",
            "arg1:AES/ECB/PKCS5Padding",
            "arg1:AES/CBC/PKCS5Padding",
            "arg1:ENCRYPT_MODE",
            "arg3:100",
            "arg1:constbyte[]",
            "Cipher",
        ];
        for a in labels {
            for b in labels {
                assert_eq!(cache.similarity(a, b), label_similarity(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn memoizes_each_unordered_pair_once() {
        let cache = LabelCache::default();
        cache.similarity("arg1:AES/ECB", "arg1:AES/CBC");
        cache.similarity("arg1:AES/CBC", "arg1:AES/ECB"); // same pair, swapped
        cache.similarity("arg1:AES/ECB", "arg1:AES/GCM");
        assert_eq!(cache.interned_labels(), 3);
        assert_eq!(cache.memoized_pairs(), 2);
        // Equal labels short-circuit without touching the cache.
        cache.similarity("arg1:AES/ECB", "arg1:AES/ECB");
        assert_eq!(cache.memoized_pairs(), 2);
    }

    #[test]
    fn fills_exactly_up_to_the_id_cap() {
        let cache = LabelCache::with_id_cap(3);
        assert_eq!(cache.similarity("a", "b"), label_similarity("a", "b"));
        assert_eq!(cache.similarity("a", "c"), label_similarity("a", "c"));
        assert_eq!(cache.interned_labels(), 3);
        // Re-using already-interned labels stays fine at the cap.
        assert_eq!(cache.similarity("b", "c"), label_similarity("b", "c"));
    }

    #[test]
    #[should_panic(expected = "label interner exhausted its id space")]
    fn fails_closed_when_the_id_space_is_exhausted() {
        let cache = LabelCache::with_id_cap(3);
        cache.similarity("a", "b");
        cache.similarity("c", "d"); // "d" would need id 3 — refuse
    }

    #[test]
    fn memo_entries_round_trip_through_preload() {
        let cache = LabelCache::default();
        cache.similarity("arg1:AES/ECB", "arg1:AES/CBC");
        cache.similarity("arg1:AES/GCM", "arg1:AES/CBC");
        let entries = cache.memo_entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.windows(2).all(|w| w[0] <= w[1]), "sorted snapshot");

        let warm = LabelCache::default();
        for (a, b, sim) in &entries {
            warm.preload(a, b, *sim);
        }
        assert_eq!(warm.memoized_pairs(), 2);
        assert_eq!(warm.memo_entries(), entries);
        // Preloaded values short-circuit identically to computed ones.
        assert_eq!(
            warm.similarity("arg1:AES/ECB", "arg1:AES/CBC"),
            cache.similarity("arg1:AES/ECB", "arg1:AES/CBC"),
        );
    }

    #[test]
    fn shared_across_threads() {
        let cache = LabelCache::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..20 {
                        let a = format!("arg1:AES/MODE{}", i % 5);
                        let b = format!("arg1:AES/MODE{}", (i + t) % 5);
                        let got = cache.similarity(&a, &b);
                        assert_eq!(got, label_similarity(&a, &b));
                    }
                });
            }
        });
        assert_eq!(cache.interned_labels(), 5);
        assert!(cache.memoized_pairs() <= 10);
    }
}
