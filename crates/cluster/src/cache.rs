//! Memoized label similarity over interned labels.
//!
//! The corpus re-uses a small vocabulary of DAG labels (`Cipher`,
//! `getInstance`, `arg1:AES/CBC/PKCS5Padding`, …) across thousands of
//! usage changes, so during a distance-matrix build the same label
//! pair is compared many times. [`LabelCache`] interns each label once
//! (classifying it into edit-distance units at intern time) and
//! memoizes the Levenshtein similarity ratio per unordered id pair, so
//! each distinct pair is computed exactly once no matter how many
//! paths mention it. The cache is `Sync` and is shared across the
//! worker threads of [`DistanceMatrix::from_fn`](crate::DistanceMatrix::from_fn).

use crate::lev::{classify, units_similarity, LabelUnits};
use std::collections::HashMap;
use std::sync::RwLock;

/// An interning, memoizing wrapper around
/// [`label_similarity`](crate::label_similarity).
///
/// # Example
///
/// ```
/// let cache = cluster::LabelCache::default();
/// let direct = cluster::label_similarity("arg1:AES/ECB", "arg1:AES/CBC");
/// assert_eq!(cache.similarity("arg1:AES/ECB", "arg1:AES/CBC"), direct);
/// // The second lookup is a memo hit.
/// assert_eq!(cache.similarity("arg1:AES/CBC", "arg1:AES/ECB"), direct);
/// ```
#[derive(Debug, Default)]
pub struct LabelCache {
    interner: RwLock<Interner>,
    memo: RwLock<HashMap<u64, f64>>,
}

#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, u32>,
    /// Classification of each interned label, indexed by id.
    units: Vec<LabelUnits>,
}

impl LabelCache {
    /// The memoized similarity ratio — identical to
    /// [`label_similarity`](crate::label_similarity) on the same pair.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let ia = self.intern(a);
        let ib = self.intern(b);
        let key = pack(ia, ib);
        if let Some(&hit) = self.memo.read().expect("memo lock").get(&key) {
            return hit;
        }
        let computed = {
            let interner = self.interner.read().expect("interner lock");
            units_similarity(&interner.units[ia as usize], &interner.units[ib as usize])
        };
        self.memo.write().expect("memo lock").insert(key, computed);
        computed
    }

    /// Number of distinct labels interned so far.
    #[must_use]
    pub fn interned_labels(&self) -> usize {
        self.interner.read().expect("interner lock").units.len()
    }

    /// Number of distinct label pairs memoized so far.
    #[must_use]
    pub fn memoized_pairs(&self) -> usize {
        self.memo.read().expect("memo lock").len()
    }

    fn intern(&self, label: &str) -> u32 {
        if let Some(&id) = self.interner.read().expect("interner lock").ids.get(label) {
            return id;
        }
        let mut interner = self.interner.write().expect("interner lock");
        // Another thread may have interned it between the locks.
        if let Some(&id) = interner.ids.get(label) {
            return id;
        }
        let id = u32::try_from(interner.units.len()).expect("fewer than 2^32 labels");
        interner.units.push(classify(label));
        interner.ids.insert(label.to_owned(), id);
        id
    }
}

/// Packs an unordered id pair into one map key.
fn pack(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (u64::from(lo) << 32) | u64::from(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label_similarity;

    #[test]
    fn agrees_with_uncached_similarity() {
        let cache = LabelCache::default();
        let labels = [
            "getInstance",
            "init",
            "arg1:AES/ECB/PKCS5Padding",
            "arg1:AES/CBC/PKCS5Padding",
            "arg1:ENCRYPT_MODE",
            "arg3:100",
            "arg1:constbyte[]",
            "Cipher",
        ];
        for a in labels {
            for b in labels {
                assert_eq!(cache.similarity(a, b), label_similarity(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn memoizes_each_unordered_pair_once() {
        let cache = LabelCache::default();
        cache.similarity("arg1:AES/ECB", "arg1:AES/CBC");
        cache.similarity("arg1:AES/CBC", "arg1:AES/ECB"); // same pair, swapped
        cache.similarity("arg1:AES/ECB", "arg1:AES/GCM");
        assert_eq!(cache.interned_labels(), 3);
        assert_eq!(cache.memoized_pairs(), 2);
        // Equal labels short-circuit without touching the cache.
        cache.similarity("arg1:AES/ECB", "arg1:AES/ECB");
        assert_eq!(cache.memoized_pairs(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let cache = LabelCache::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..20 {
                        let a = format!("arg1:AES/MODE{}", i % 5);
                        let b = format!("arg1:AES/MODE{}", (i + t) % 5);
                        let got = cache.similarity(&a, &b);
                        assert_eq!(got, label_similarity(&a, &b));
                    }
                });
            }
        });
        assert_eq!(cache.interned_labels(), 5);
        assert!(cache.memoized_pairs() <= 10);
    }
}
