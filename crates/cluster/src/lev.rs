//! Levenshtein distance and the label similarity ratio (paper §4.3).
//!
//! Modification units follow the paper: *characters* for string-valued
//! labels (configuration strings such as `AES/CBC/PKCS5Padding`),
//! *single units* for integers, byte abstractions, API constants, and
//! method names — so any two distinct method signatures are exactly one
//! substitution apart.

/// Classic Levenshtein distance over arbitrary comparable units.
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// How a DAG label is measured for edit distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LabelUnits {
    /// The label counts as a single unit (method names, integers, byte
    /// abstractions, API constants).
    Atomic,
    /// The label is a string measured character by character.
    Chars(Vec<char>),
}

pub(crate) fn classify(label: &str) -> LabelUnits {
    // Argument labels carry their value after `argN:`.
    let value = match label.split_once(':') {
        Some((prefix, value)) if prefix.starts_with("arg") => value,
        _ => return LabelUnits::Atomic, // method name / root type label
    };
    if value.parse::<i64>().is_ok() {
        return LabelUnits::Atomic;
    }
    // Abstraction tokens and API constants are atomic units.
    let atomic_tokens = [
        "constbyte",
        "constbyte[]",
        "\u{22a4}byte",
        "\u{22a4}byte[]",
        "\u{22a4}int",
        "\u{22a4}int[]",
        "\u{22a4}str",
        "\u{22a4}str[]",
        "\u{22a4}bool",
        "\u{22a4}obj",
        "\u{22a4}",
        "null",
        "true",
        "false",
    ];
    if atomic_tokens.contains(&value) {
        return LabelUnits::Atomic;
    }
    if value
        .chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        // API constants such as ENCRYPT_MODE.
        return LabelUnits::Atomic;
    }
    LabelUnits::Chars(label.chars().collect())
}

/// The Levenshtein similarity ratio between two node labels:
/// `LSR(l, l') = 1 − lev(l, l') / max(|l|, |l'|)`.
pub fn label_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    units_similarity(&classify(a), &classify(b))
}

/// [`label_similarity`] over pre-classified labels (the labels are
/// known to be distinct). Shared by the uncached path above and the
/// interned cache in [`crate::cache`].
pub(crate) fn units_similarity(a: &LabelUnits, b: &LabelUnits) -> f64 {
    match (a, b) {
        (LabelUnits::Chars(ca), LabelUnits::Chars(cb)) => {
            let lev = levenshtein(ca, cb);
            let max = ca.len().max(cb.len());
            if max == 0 {
                1.0
            } else {
                1.0 - lev as f64 / max as f64
            }
        }
        // Atomic labels: one substitution turns one into the other.
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(&chars("kitten"), &chars("sitting")), 3);
        assert_eq!(levenshtein(&chars(""), &chars("abc")), 3);
        assert_eq!(levenshtein(&chars("abc"), &chars("")), 3);
        assert_eq!(levenshtein(&chars("abc"), &chars("abc")), 0);
        assert_eq!(levenshtein::<char>(&[], &[]), 0);
    }

    #[test]
    fn levenshtein_over_non_char_units() {
        let a = [1, 2, 3];
        let b = [1, 9, 3, 4];
        assert_eq!(levenshtein(&a, &b), 2);
    }

    #[test]
    fn method_labels_are_atomic() {
        assert_eq!(label_similarity("getInstance", "init"), 0.0);
        assert_eq!(label_similarity("getInstance", "getInstance"), 1.0);
        // Even near-identical method names are one substitution apart.
        assert_eq!(label_similarity("setSeed", "setSeeds"), 0.0);
    }

    #[test]
    fn int_labels_are_atomic() {
        assert_eq!(label_similarity("arg3:100", "arg3:1000"), 0.0);
        assert_eq!(label_similarity("arg3:100", "arg3:100"), 1.0);
    }

    #[test]
    fn byte_abstractions_are_atomic() {
        assert_eq!(
            label_similarity("arg1:constbyte[]", "arg1:\u{22a4}byte[]"),
            0.0
        );
    }

    #[test]
    fn api_constants_are_atomic() {
        assert_eq!(
            label_similarity("arg1:ENCRYPT_MODE", "arg1:DECRYPT_MODE"),
            0.0
        );
    }

    #[test]
    fn string_labels_use_characters() {
        let s = label_similarity("arg1:AES/ECB/PKCS5Padding", "arg1:AES/CBC/PKCS5Padding");
        assert!(s > 0.85, "mode switch keeps most characters: {s}");
        let far = label_similarity("arg1:AES/CBC/PKCS5Padding", "arg1:RSA");
        assert!(far < 0.3, "{far}");
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let pairs = [
            ("arg1:AES", "arg1:AES/CBC"),
            ("getInstance", "arg1:AES"),
            ("arg2:Secret", "arg2:SecretKeySpec"),
        ];
        for (a, b) in pairs {
            let ab = label_similarity(a, b);
            let ba = label_similarity(b, a);
            assert!((ab - ba).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&ab));
        }
    }
}
