//! Two-level, memory-bounded clustering for corpora whose dense
//! condensed matrix does not fit the cell budget.
//!
//! Level one pre-buckets changes by their API class (the cheap,
//! always-available feature: two changes to different crypto classes
//! are never near-duplicates of each other under
//! [`usage_dist`](crate::usage_dist), whose class mismatch already
//! dominates the distance). Level two runs the exact dense machinery
//! *within* each bucket — [`DistanceMatrix::try_from_fn`] under the
//! per-bucket cell budget, NN-chain agglomeration, silhouette cut — so
//! peak memory is O(max-bucket²) instead of O(n²). A final stitch pass
//! picks each bucket's medoid (the member minimizing its summed
//! within-bucket distance), agglomerates the medoid-to-medoid
//! distances, and splices the per-bucket trees into one dendrogram
//! through the same SciPy-style relabeling the NN-chain uses.
//!
//! # How exactly this matches the dense path
//!
//! The dense path ([`crate::cluster_usage_changes_matrix`]) stays the
//! executable spec. On corpora whose buckets are *well separated* —
//! every cross-bucket distance strictly exceeds every within-bucket
//! merge height — the bucketed scheme reproduces the dense path's
//! clusters exactly: the dense agglomeration finishes every
//! within-bucket merge before the first cross-bucket one, so the
//! per-bucket subtrees (and their silhouette cuts, which is what the
//! elicitation stage consumes) coincide. The *stitch heights* are the
//! documented approximation, in the spirit of the NN-chain tie-tangle
//! note (`crate::chain`): the dense tree joins two buckets at the
//! complete-linkage (max-pair) distance, while the stitch joins them at
//! their medoid-pair distance, clamped to keep the dendrogram
//! monotone. Cross-bucket heights may therefore differ — but cluster
//! membership below the cut does not, and
//! `tests/cluster_cache.rs::bucketed_matches_dense_on_a_well_separated_corpus`
//! pins the equivalence.

use crate::chain::{relabel, Op};
use crate::matrix::{DistanceMatrix, MatrixError};
use crate::{agglomerate_matrix, usage_dist_cached, Dendrogram, LabelCache, Linkage};
use usagegraph::UsageChange;

/// The result of a two-level bucketed clustering run.
#[derive(Debug)]
pub struct BucketedClustering {
    /// The stitched global dendrogram over all `n` changes (leaf ids
    /// are indices into the input slice).
    pub dendrogram: Dendrogram,
    /// Bucket membership: global change indices per bucket, in
    /// first-appearance order of the bucketing class.
    pub buckets: Vec<Vec<usize>>,
    /// Each bucket's medoid (global change index).
    pub medoids: Vec<usize>,
    /// The flat clustering: union of the per-bucket silhouette cuts,
    /// each cluster sorted, clusters ordered by their smallest member.
    pub clusters: Vec<Vec<usize>>,
    /// Largest per-bucket condensed matrix actually allocated — the
    /// realized memory bound, always ≤ the configured budget.
    pub peak_cells: usize,
}

/// Clusters `changes` with the two-level scheme under a per-bucket
/// cell budget. `max_k` caps the silhouette search within each bucket
/// (the search is O(k·m²) per bucket, so unbounded k makes large
/// buckets cubic).
///
/// # Errors
///
/// [`MatrixError::CellBudgetExceeded`] if any single bucket exceeds
/// `max_cells` — the budget bounds peak memory, it does not silently
/// degrade accuracy. ([`MatrixError::SizeOverflow`] is unreachable for
/// inputs that fit in memory but is propagated for completeness.)
pub fn cluster_bucketed(
    changes: &[UsageChange],
    max_cells: usize,
    max_k: usize,
) -> Result<BucketedClustering, MatrixError> {
    let n = changes.len();
    if n == 0 {
        return Ok(BucketedClustering {
            dendrogram: Dendrogram::default(),
            buckets: Vec::new(),
            medoids: Vec::new(),
            clusters: Vec::new(),
            peak_cells: 0,
        });
    }

    // Level 1: bucket by class, first-appearance order for determinism.
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    let mut by_class: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (idx, change) in changes.iter().enumerate() {
        let slot = *by_class.entry(change.class.as_str()).or_insert_with(|| {
            buckets.push(Vec::new());
            buckets.len() - 1
        });
        buckets[slot].push(idx);
    }

    // Level 2: exact dense clustering within each bucket. The label
    // cache is shared across buckets (and with the stitch pass) — the
    // vocabulary overlaps heavily between classes.
    let cache = LabelCache::default();
    let mut raw: Vec<(Op, Op, f64)> = Vec::with_capacity(n - 1);
    let mut roots: Vec<Op> = Vec::with_capacity(buckets.len());
    let mut subtree_heights: Vec<f64> = Vec::with_capacity(buckets.len());
    let mut medoids: Vec<usize> = Vec::with_capacity(buckets.len());
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut peak_cells = 0usize;

    for members in &buckets {
        let m = members.len();
        let matrix = DistanceMatrix::try_from_fn(m, Some(max_cells), |i, j| {
            usage_dist_cached(&changes[members[i]], &changes[members[j]], &cache)
        })?;
        peak_cells = peak_cells.max(matrix.condensed().len());

        // Medoid: the member with the smallest summed distance to its
        // bucket; ties go to the smallest index (deterministic).
        let medoid_local = (0..m)
            .min_by(|&a, &b| {
                let sum = |x: usize| (0..m).map(|y| matrix.get(x, y)).sum::<f64>();
                sum(a)
                    .partial_cmp(&sum(b))
                    .expect("finite distances")
                    .then(a.cmp(&b))
            })
            .expect("non-empty bucket");
        medoids.push(members[medoid_local]);

        let dendro = agglomerate_matrix(&matrix, Linkage::Complete);
        let (_, cut, _) = dendro.best_cut(&matrix, max_k);
        clusters.extend(
            cut.into_iter()
                .map(|cluster| cluster.into_iter().map(|local| members[local]).collect()),
        );

        // Re-express the bucket's merges as raw ops over global leaf
        // ids: local node m+k is the k-th bucket merge, which lands at
        // raw index base+k.
        let base = raw.len();
        let to_op = |id: usize| {
            if id < m {
                Op::Leaf(members[id])
            } else {
                Op::Merged(base + (id - m))
            }
        };
        for merge in &dendro.merges {
            raw.push((to_op(merge.left), to_op(merge.right), merge.distance));
        }
        roots.push(if m == 1 {
            Op::Leaf(members[0])
        } else {
            Op::Merged(raw.len() - 1)
        });
        subtree_heights.push(dendro.merges.last().map_or(0.0, |merge| merge.distance));
    }
    clusters.sort_by_key(|c| c[0]);

    // Stitch: agglomerate the medoids, then splice the bucket trees in
    // as the leaves of the stitch tree. Heights are clamped to each
    // child's subtree height so the combined tree stays monotone (the
    // relabeling pass requires non-inverted merges).
    let b = buckets.len();
    let stitch_matrix = DistanceMatrix::from_fn(b, |x, y| {
        usage_dist_cached(&changes[medoids[x]], &changes[medoids[y]], &cache)
    });
    let stitch = agglomerate_matrix(&stitch_matrix, Linkage::Complete);
    let stitch_base = raw.len();
    let mut stitch_heights = subtree_heights;
    for merge in &stitch.merges {
        let height = merge
            .distance
            .max(stitch_heights[merge.left])
            .max(stitch_heights[merge.right]);
        let to_op = |id: usize| {
            if id < b {
                roots[id]
            } else {
                Op::Merged(stitch_base + (id - b))
            }
        };
        raw.push((to_op(merge.left), to_op(merge.right), height));
        stitch_heights.push(height);
    }

    debug_assert_eq!(raw.len(), n - 1, "a full binary merge tree");
    Ok(BucketedClustering {
        dendrogram: relabel(n, raw),
        buckets,
        medoids,
        clusters,
        peak_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_usage_changes_matrix;
    use usagegraph::{FeaturePath, Label};

    fn path(labels: &[&str]) -> FeaturePath {
        FeaturePath(labels.iter().copied().map(Label::from).collect())
    }

    fn change(class: &str, from: &str, to: &str) -> UsageChange {
        UsageChange {
            class: class.into(),
            removed: vec![path(&[class, "getInstance", from])],
            added: vec![path(&[class, "getInstance", to])],
        }
    }

    fn corpus() -> Vec<UsageChange> {
        vec![
            change("Cipher", "arg1:AES/ECB", "arg1:AES/CBC"),
            change("MessageDigest", "arg1:MD5", "arg1:SHA-256"),
            change("Cipher", "arg1:AES/ECB", "arg1:AES/GCM"),
            change("Cipher", "arg1:DES", "arg1:AES/CBC"),
            change("MessageDigest", "arg1:SHA-1", "arg1:SHA-256"),
            change("SecureRandom", "arg1:SHA1PRNG", "arg1:NativePRNG"),
        ]
    }

    #[test]
    fn buckets_by_class_in_first_appearance_order() {
        let changes = corpus();
        let out = cluster_bucketed(&changes, 1 << 20, 16).unwrap();
        assert_eq!(out.buckets, vec![vec![0, 2, 3], vec![1, 4], vec![5]]);
        assert_eq!(out.medoids.len(), 3);
        assert_eq!(out.dendrogram.n_leaves, changes.len());
        assert_eq!(out.dendrogram.merges.len(), changes.len() - 1);
        // Every change lands in exactly one cluster.
        let mut all: Vec<usize> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..changes.len()).collect::<Vec<_>>());
    }

    #[test]
    fn single_bucket_reduces_to_the_dense_path() {
        let changes: Vec<UsageChange> = corpus()
            .into_iter()
            .filter(|c| c.class == "Cipher")
            .collect();
        let bucketed = cluster_bucketed(&changes, 1 << 20, 16).unwrap();
        let (dense, _) = cluster_usage_changes_matrix(&changes);
        assert_eq!(bucketed.dendrogram, dense);
    }

    #[test]
    fn enforces_the_per_bucket_budget() {
        let changes = corpus();
        // The largest bucket has 3 members → 3 cells; a 2-cell budget
        // must refuse with the typed error.
        let err = cluster_bucketed(&changes, 2, 16).unwrap_err();
        assert!(
            matches!(
                err,
                MatrixError::CellBudgetExceeded {
                    n: 3,
                    cells: 3,
                    budget: 2
                }
            ),
            "{err:?}"
        );
        // A 3-cell budget fits every bucket even though the dense
        // matrix would need 15 cells.
        let out = cluster_bucketed(&changes, 3, 16).unwrap();
        assert_eq!(out.peak_cells, 3);
    }

    #[test]
    fn stitched_dendrogram_is_monotone() {
        let changes = corpus();
        let out = cluster_bucketed(&changes, 1 << 20, 16).unwrap();
        for pair in out.dendrogram.merges.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn empty_corpus() {
        let out = cluster_bucketed(&[], 16, 16).unwrap();
        assert_eq!(out.dendrogram, Dendrogram::default());
        assert!(out.buckets.is_empty() && out.clusters.is_empty());
    }
}
