//! Warm (incremental) distance-matrix construction.
//!
//! A warm re-cluster has most of its pairwise distances already on
//! disk: only pairs involving a change *new* to the corpus need a real
//! [`usage_dist`](crate::usage_dist) evaluation. [`matrix_from_prior`]
//! takes the prior cells as a condensed vector with `NaN` marking the
//! missing (new-row / new-column) slots, fills exactly those slots from
//! the distance function, and reports which cells it computed so the
//! caller can persist them for the next run.
//!
//! `NaN` is a safe "missing" sentinel here because every distance in
//! the pipeline is a finite value in `[0, 1]` ([`usage_dist`] is a
//! normalized dissimilarity); `dist` must never return `NaN`.
//!
//! Because an `f64` round-trips bit-exactly through persistence (the
//! cache stores the raw `to_le_bytes` of `to_bits`), a matrix built
//! from prior cells is **bit-identical** to one computed cold — which
//! is what lets the warm clustering path promise byte-identical output
//! (see `tests/cluster_cache.rs`).

use crate::matrix::{condensed_cells, condensed_index, DistanceMatrix, MatrixError};

/// A [`DistanceMatrix`] built warm, plus the reuse accounting the
/// caller needs for cache persistence and hit-rate metrics.
#[derive(Debug)]
pub struct WarmMatrix {
    /// The complete matrix — bit-identical to a cold
    /// [`DistanceMatrix::try_from_fn`] build over the same items.
    pub matrix: DistanceMatrix,
    /// Number of cells taken from the prior (cache hits).
    pub reused: usize,
    /// The freshly computed cells as `(i, j, distance)` with `i < j` —
    /// exactly the slots that were `NaN` in the prior, in condensed
    /// (row-major) order. The caller persists these.
    pub computed: Vec<(usize, usize, f64)>,
}

/// Builds the condensed distance matrix for `n` items, reusing every
/// finite cell of `prior` and calling `dist` only for the `NaN` slots.
/// `prior` must be a condensed upper triangle of length `n·(n−1)/2`
/// (pass all-`NaN` for a cold build — the result is then identical to
/// [`DistanceMatrix::try_from_fn`]).
///
/// # Errors
///
/// [`MatrixError::SizeOverflow`] if the condensed length overflows
/// `usize`, [`MatrixError::CellBudgetExceeded`] if it exceeds
/// `max_cells`; both are checked before any distance is evaluated.
///
/// # Panics
///
/// If `prior.len()` is not the condensed length for `n`.
pub fn matrix_from_prior(
    n: usize,
    prior: &[f64],
    max_cells: Option<usize>,
    dist: impl Fn(usize, usize) -> f64 + Sync,
) -> Result<WarmMatrix, MatrixError> {
    // Validate the size before touching `prior`, so oversized inputs
    // get the typed error rather than an assert.
    let cells = condensed_cells(n);
    if let Some(budget) = max_cells {
        if cells > budget as u128 {
            return Err(MatrixError::CellBudgetExceeded { n, cells, budget });
        }
    }
    let len = usize::try_from(cells).map_err(|_| MatrixError::SizeOverflow { n })?;
    assert_eq!(prior.len(), len, "prior condensed length for n={n}");

    let matrix = DistanceMatrix::try_from_fn(n, max_cells, |i, j| {
        let cell = prior[condensed_index(n, i, j)];
        if cell.is_nan() {
            dist(i, j)
        } else {
            cell
        }
    })?;

    // Account for reuse after the (parallel) fill: a slot was a hit
    // exactly when the prior held a real value.
    let mut reused = 0usize;
    let mut computed = Vec::new();
    let filled = matrix.condensed();
    let mut k = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            if prior[k].is_nan() {
                computed.push((i, j, filled[k]));
            } else {
                reused += 1;
            }
            k += 1;
        }
    }
    Ok(WarmMatrix {
        matrix,
        reused,
        computed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn dist(i: usize, j: usize) -> f64 {
        ((i * 31 + j * 17) % 101) as f64 / 101.0
    }

    #[test]
    fn all_nan_prior_reproduces_the_cold_build() {
        let n = 150; // large enough to exercise the threaded fill
        let prior = vec![f64::NAN; n * (n - 1) / 2];
        let warm = matrix_from_prior(n, &prior, None, dist).unwrap();
        let cold = DistanceMatrix::from_fn(n, dist);
        assert_eq!(warm.matrix, cold);
        assert_eq!(warm.reused, 0);
        assert_eq!(warm.computed.len(), prior.len());
    }

    #[test]
    fn computes_exactly_the_missing_cells() {
        // Simulate corpus growth: the first `old` items have persisted
        // distances, items old..n are new.
        let (old, n) = (40, 45);
        let cold = DistanceMatrix::from_fn(n, dist);
        let mut prior = cold.condensed().to_vec();
        let mut expected_misses = 0usize;
        let mut k = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if j >= old {
                    prior[k] = f64::NAN;
                    expected_misses += 1;
                }
                k += 1;
            }
        }
        let calls = AtomicUsize::new(0);
        let warm = matrix_from_prior(n, &prior, None, |i, j| {
            calls.fetch_add(1, Ordering::Relaxed);
            dist(i, j)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), expected_misses);
        assert_eq!(warm.matrix, cold, "warm fill is bit-identical to cold");
        assert_eq!(warm.reused, prior.len() - expected_misses);
        assert_eq!(warm.computed.len(), expected_misses);
        for &(i, j, d) in &warm.computed {
            assert!(j >= old, "({i},{j}) was not a missing cell");
            assert_eq!(d, dist(i, j));
        }
    }

    #[test]
    fn propagates_the_cell_budget() {
        let prior = vec![f64::NAN; 15];
        let err = matrix_from_prior(6, &prior, Some(10), |_, _| 0.0).unwrap_err();
        assert_eq!(
            err,
            MatrixError::CellBudgetExceeded {
                n: 6,
                cells: 15,
                budget: 10
            }
        );
    }

    #[test]
    #[should_panic(expected = "prior condensed length")]
    fn rejects_a_mismatched_prior() {
        let _ = matrix_from_prior(6, &[f64::NAN; 10], None, |_, _| 0.0);
    }
}
