//! Distances between paths, path sets, and usage changes (paper §4.3).

use crate::cache::LabelCache;
use crate::lev::label_similarity;
use usagegraph::matching::min_cost_assignment;
use usagegraph::{FeaturePath, UsageChange};

/// The distance between two feature paths:
///
/// `pathDist(p₁,p₂) = 1 − (j + LSR(p₁[j], p₂[j])) / max(|p₁|, |p₂|)`
///
/// where `j` is the length (in labels) of the longest common prefix and
/// the LSR term compares the first differing labels (0 when one path is
/// a prefix of the other).
///
/// # Example
///
/// ```
/// use usagegraph::FeaturePath;
///
/// let ecb = FeaturePath(vec!["Cipher".into(), "getInstance".into(), "arg1:AES/ECB".into()]);
/// let cbc = FeaturePath(vec!["Cipher".into(), "getInstance".into(), "arg1:AES/CBC".into()]);
/// let init = FeaturePath(vec!["Cipher".into(), "init".into()]);
/// // A mode switch is much closer than a different method entirely:
/// assert!(cluster::path_dist(&ecb, &cbc) < cluster::path_dist(&ecb, &init));
/// ```
pub fn path_dist(p1: &FeaturePath, p2: &FeaturePath) -> f64 {
    path_dist_by(p1, p2, &label_similarity)
}

/// [`path_dist`] with a pluggable label-similarity function (the
/// uncached default or a [`LabelCache`]).
fn path_dist_by(p1: &FeaturePath, p2: &FeaturePath, sim: &dyn Fn(&str, &str) -> f64) -> f64 {
    if p1 == p2 {
        return 0.0;
    }
    let a = p1.labels();
    let b = p2.labels();
    let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let lsr = if common < a.len() && common < b.len() {
        sim(&a[common], &b[common])
    } else {
        0.0
    };
    let max_len = a.len().max(b.len()) as f64;
    (1.0 - (common as f64 + lsr) / max_len).clamp(0.0, 1.0)
}

/// The distance between two path sets: the minimum over all matchings
/// of the summed pairwise path distance. Unmatched paths (when the sets
/// have different sizes) cost 1 each.
pub fn paths_dist(f1: &[FeaturePath], f2: &[FeaturePath]) -> f64 {
    paths_dist_by(f1, f2, &label_similarity)
}

fn paths_dist_by(f1: &[FeaturePath], f2: &[FeaturePath], sim: &dyn Fn(&str, &str) -> f64) -> f64 {
    if f1.is_empty() && f2.is_empty() {
        return 0.0;
    }
    let n = f1.len().max(f2.len());
    let cost: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| match (f1.get(i), f2.get(j)) {
                    (Some(a), Some(b)) => path_dist_by(a, b, sim),
                    // A path with no counterpart is maximally distant.
                    _ => 1.0,
                })
                .collect()
        })
        .collect();
    let (_, total) = min_cost_assignment(&cost);
    total
}

/// The distance between two usage changes: the average of the removed-
/// feature distance and the added-feature distance.
pub fn usage_dist(c1: &UsageChange, c2: &UsageChange) -> f64 {
    (paths_dist(&c1.removed, &c2.removed) + paths_dist(&c1.added, &c2.added)) / 2.0
}

/// [`usage_dist`] with label similarities memoized through `cache` —
/// numerically identical, but each distinct label pair is compared at
/// most once across an entire distance-matrix build.
pub fn usage_dist_cached(c1: &UsageChange, c2: &UsageChange, cache: &LabelCache) -> f64 {
    let sim = |a: &str, b: &str| cache.similarity(a, b);
    (paths_dist_by(&c1.removed, &c2.removed, &sim) + paths_dist_by(&c1.added, &c2.added, &sim))
        / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use usagegraph::Label;

    fn path(labels: &[&str]) -> FeaturePath {
        FeaturePath(labels.iter().copied().map(Label::from).collect())
    }

    #[test]
    fn identical_paths_distance_zero() {
        let p = path(&["Cipher", "getInstance", "arg1:AES"]);
        assert_eq!(path_dist(&p, &p), 0.0);
    }

    #[test]
    fn shared_prefix_reduces_distance() {
        let a = path(&["Cipher", "getInstance", "arg1:AES/ECB"]);
        let b = path(&["Cipher", "getInstance", "arg1:AES/CBC"]);
        let c = path(&["Cipher", "init", "arg1:ENCRYPT_MODE"]);
        let d_ab = path_dist(&a, &b);
        let d_ac = path_dist(&a, &c);
        assert!(
            d_ab < d_ac,
            "mode change ({d_ab}) closer than different method ({d_ac})"
        );
        assert!(d_ab < 0.25, "{d_ab}");
    }

    #[test]
    fn prefix_path_distance() {
        let short = path(&["Cipher", "init"]);
        let long = path(&["Cipher", "init", "arg3:IvParameterSpec"]);
        // common = 2, no differing label on the short side.
        let d = path_dist(&short, &long);
        assert!((d - (1.0 - 2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn path_dist_bounds_and_symmetry() {
        let ps = [
            path(&["Cipher"]),
            path(&["Cipher", "getInstance", "arg1:AES"]),
            path(&["MessageDigest", "getInstance", "arg1:SHA-1"]),
            path(&["Cipher", "init", "arg1:ENCRYPT_MODE"]),
        ];
        for a in &ps {
            assert_eq!(path_dist(a, a), 0.0);
            for b in &ps {
                let ab = path_dist(a, b);
                assert!((ab - path_dist(b, a)).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn paths_dist_matches_best_pairing() {
        let f1 = vec![
            path(&["Cipher", "getInstance", "arg1:AES"]),
            path(&["Cipher", "init", "arg1:ENCRYPT_MODE"]),
        ];
        // Same paths in reverse order: a matching exists with cost 0.
        let f2 = vec![f1[1].clone(), f1[0].clone()];
        assert_eq!(paths_dist(&f1, &f2), 0.0);
    }

    #[test]
    fn paths_dist_counts_unmatched() {
        let f1 = vec![path(&["Cipher", "getInstance", "arg1:AES"])];
        let f2: Vec<FeaturePath> = vec![];
        assert_eq!(paths_dist(&f1, &f2), 1.0);
        assert_eq!(paths_dist(&f2, &f1), 1.0);
        assert_eq!(paths_dist(&f2, &f2), 0.0);
    }

    #[test]
    fn usage_dist_averages_sides() {
        let c1 = UsageChange {
            class: "Cipher".into(),
            removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
            added: vec![path(&["Cipher", "getInstance", "arg1:AES/CBC"])],
        };
        let c2 = c1.clone();
        assert_eq!(usage_dist(&c1, &c2), 0.0);

        let c3 = UsageChange {
            class: "Cipher".into(),
            removed: vec![],
            added: vec![],
        };
        assert_eq!(usage_dist(&c1, &c3), 1.0);
    }

    #[test]
    fn similar_fixes_cluster_close() {
        // ECB→CBC and ECB→GCM (paper Figure 8: these merge early).
        let ecb_cbc = UsageChange {
            class: "Cipher".into(),
            removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
            added: vec![
                path(&["Cipher", "getInstance", "arg1:AES/CBC"]),
                path(&["Cipher", "init", "arg3:IvParameterSpec"]),
            ],
        };
        let ecb_gcm = UsageChange {
            class: "Cipher".into(),
            removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
            added: vec![
                path(&["Cipher", "getInstance", "arg1:AES/GCM"]),
                path(&["Cipher", "init", "arg3:IvParameterSpec"]),
            ],
        };
        let sha_fix = UsageChange {
            class: "MessageDigest".into(),
            removed: vec![path(&["MessageDigest", "getInstance", "arg1:SHA-1"])],
            added: vec![path(&["MessageDigest", "getInstance", "arg1:SHA-256"])],
        };
        let d_modes = usage_dist(&ecb_cbc, &ecb_gcm);
        let d_cross = usage_dist(&ecb_cbc, &sha_fix);
        assert!(d_modes < d_cross, "{d_modes} vs {d_cross}");
        assert!(d_modes < 0.2, "{d_modes}");
    }

    #[test]
    fn cached_usage_dist_is_identical() {
        let changes = [
            UsageChange {
                class: "Cipher".into(),
                removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
                added: vec![
                    path(&["Cipher", "getInstance", "arg1:AES/CBC"]),
                    path(&["Cipher", "init", "arg3:IvParameterSpec"]),
                ],
            },
            UsageChange {
                class: "Cipher".into(),
                removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
                added: vec![path(&["Cipher", "getInstance", "arg1:AES/GCM"])],
            },
            UsageChange {
                class: "MessageDigest".into(),
                removed: vec![path(&["MessageDigest", "getInstance", "arg1:SHA-1"])],
                added: vec![path(&["MessageDigest", "getInstance", "arg1:SHA-256"])],
            },
            UsageChange {
                class: "Cipher".into(),
                removed: vec![],
                added: vec![],
            },
        ];
        let cache = LabelCache::default();
        for a in &changes {
            for b in &changes {
                // Bitwise equality: the cache must not change results.
                assert_eq!(usage_dist_cached(a, b, &cache), usage_dist(a, b));
            }
        }
        assert!(
            cache.memoized_pairs() > 0,
            "cache saw the repeated label pairs"
        );
    }
}
