//! Filtering-stage distances and hierarchical clustering of semantic
//! usage changes (paper §4.3).
//!
//! The clustering stack is built around a first-class
//! [`DistanceMatrix`]: all `n·(n−1)/2` pairwise [`usage_dist`] values
//! are computed **once**, in parallel, with label similarities
//! memoized through a shared [`LabelCache`]. Agglomeration then runs
//! the O(n²) nearest-neighbor-chain algorithm (Lance–Williams updates;
//! see [`agglomerate_matrix`]) over the matrix, and silhouette-based
//! cut selection ([`Dendrogram::best_cut`]) reuses the same matrix —
//! no stage ever re-evaluates a pairwise distance. The quadratic-scan
//! reference loop survives as [`agglomerate_naive`] and the nn-chain
//! is property-tested to reproduce its dendrograms exactly whenever
//! pairwise distances are distinct, and exhaustively on small
//! tie-heavy inputs (see `crate::chain` docs for the precise boundary
//! under adversarial exact ties).
//!
//! # Example
//!
//! ```
//! use cluster::{cluster_usage_changes, usage_dist};
//! use usagegraph::{FeaturePath, Label, UsageChange};
//!
//! fn path(labels: &[&str]) -> FeaturePath {
//!     FeaturePath(labels.iter().copied().map(Label::from).collect())
//! }
//!
//! let ecb_to_cbc = UsageChange {
//!     class: "Cipher".into(),
//!     removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
//!     added: vec![path(&["Cipher", "getInstance", "arg1:AES/CBC"])],
//! };
//! let ecb_to_gcm = UsageChange {
//!     class: "Cipher".into(),
//!     removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
//!     added: vec![path(&["Cipher", "getInstance", "arg1:AES/GCM"])],
//! };
//! assert!(usage_dist(&ecb_to_cbc, &ecb_to_gcm) < 0.2);
//!
//! let dendrogram = cluster_usage_changes(&[ecb_to_cbc, ecb_to_gcm]);
//! assert_eq!(dendrogram.merges.len(), 1);
//! ```

#![warn(missing_docs)]

mod bucket;
mod cache;
mod chain;
mod dist;
mod hierarchy;
mod incr;
mod lev;
mod matrix;

pub use bucket::{cluster_bucketed, BucketedClustering};
pub use cache::LabelCache;
pub use dist::{path_dist, paths_dist, usage_dist, usage_dist_cached};
pub use hierarchy::{
    agglomerate, agglomerate_matrix, agglomerate_naive, agglomerate_with, Dendrogram, Linkage,
    Merge,
};
pub use incr::{matrix_from_prior, WarmMatrix};
pub use lev::{label_similarity, levenshtein};
pub use matrix::{condensed_cells, DistanceMatrix, MatrixError};

use usagegraph::UsageChange;

/// The number of unordered pairs among `n` items, `n·(n−1)/2`,
/// saturating at `u64::MAX`. Computed in `u128` so the multiply cannot
/// wrap for any `usize` input (the old in-`usize` formula silently
/// wrapped the `cluster.pairs` gauge once `n` passed ~2³² on 64-bit).
#[must_use]
pub fn pair_count(n: usize) -> u64 {
    let n = n as u128;
    u64::try_from(n * n.saturating_sub(1) / 2).unwrap_or(u64::MAX)
}

/// Builds the shared pairwise [`usage_dist`] matrix for `changes`:
/// computed in parallel, each pair exactly once, label similarities
/// memoized across the whole build.
pub fn usage_distance_matrix(changes: &[UsageChange]) -> DistanceMatrix {
    let cache = LabelCache::default();
    DistanceMatrix::from_fn(changes.len(), |i, j| {
        usage_dist_cached(&changes[i], &changes[j], &cache)
    })
}

/// Clusters usage changes hierarchically under [`usage_dist`] with
/// complete linkage.
pub fn cluster_usage_changes(changes: &[UsageChange]) -> Dendrogram {
    cluster_usage_changes_matrix(changes).0
}

/// [`cluster_usage_changes`], also returning the shared
/// [`DistanceMatrix`] so downstream stages (e.g.
/// [`Dendrogram::best_cut`]) can reuse it instead of re-evaluating
/// [`usage_dist`].
pub fn cluster_usage_changes_matrix(changes: &[UsageChange]) -> (Dendrogram, DistanceMatrix) {
    cluster_usage_changes_matrix_metered(changes, &mut obs::MetricsRegistry::new())
}

/// [`cluster_usage_changes_matrix`] with stage observability: records
/// the `cluster.matrix` and `cluster.agglomerate` timing spans and the
/// `cluster.items` / `cluster.pairs` counters into `registry`, so a
/// pipeline run can see where clustering wall-clock goes (the matrix
/// build is O(n²) distance evaluations; the nn-chain is O(n²) updates).
pub fn cluster_usage_changes_matrix_metered(
    changes: &[UsageChange],
    registry: &mut obs::MetricsRegistry,
) -> (Dendrogram, DistanceMatrix) {
    registry.inc("cluster.items", changes.len() as u64);
    registry.inc("cluster.pairs", pair_count(changes.len()));
    let matrix = registry.time("cluster.matrix", || usage_distance_matrix(changes));
    let dendrogram = registry.time("cluster.agglomerate", || {
        agglomerate_matrix(&matrix, Linkage::Complete)
    });
    (dendrogram, matrix)
}

/// [`cluster_usage_changes_matrix_metered`], additionally emitting
/// `cluster.matrix` and `cluster.agglomerate` spans into `trace` so a
/// Chrome-trace export shows the same breakdown the timing metrics
/// report does. No-op tracing when the sink is disabled.
pub fn cluster_usage_changes_matrix_traced(
    changes: &[UsageChange],
    registry: &mut obs::MetricsRegistry,
    trace: &mut obs::TraceSink,
) -> (Dendrogram, DistanceMatrix) {
    registry.inc("cluster.items", changes.len() as u64);
    registry.inc("cluster.pairs", pair_count(changes.len()));
    let span = trace.begin_with("cluster.matrix", |a| {
        a.u64("items", changes.len() as u64);
    });
    let matrix = registry.time("cluster.matrix", || usage_distance_matrix(changes));
    trace.end(span);
    let span = trace.begin("cluster.agglomerate");
    let dendrogram = registry.time("cluster.agglomerate", || {
        agglomerate_matrix(&matrix, Linkage::Complete)
    });
    trace.end(span);
    (dendrogram, matrix)
}

#[cfg(test)]
mod pair_count_tests {
    use super::pair_count;

    #[test]
    fn small_counts_match_the_closed_form() {
        for (n, want) in [(0, 0), (1, 0), (2, 1), (3, 3), (100, 4950)] {
            assert_eq!(pair_count(n), want, "n={n}");
        }
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn does_not_wrap_past_the_usize_multiply_boundary() {
        // n·(n−1) overflows usize here (≈2.5·10¹⁹ > 2⁶⁴) while the
        // pair count itself still fits u64 — exactly the regime where
        // the old in-usize formula silently wrapped the gauge.
        let n = 5_000_000_000usize;
        let wrapped = (n.saturating_sub(1).wrapping_mul(n) / 2) as u64;
        let exact = pair_count(n);
        assert_eq!(exact, ((n as u128) * (n as u128 - 1) / 2) as u64);
        assert_ne!(exact, wrapped, "in-usize arithmetic silently wraps");
        // Beyond u64 pair counts, the gauge saturates instead of wrapping.
        assert_eq!(pair_count(usize::MAX), u64::MAX);
        assert_eq!(pair_count(1 << 33), u64::MAX);
    }
}
