//! Filtering-stage distances and hierarchical clustering of semantic
//! usage changes (paper §4.3).
//!
//! # Example
//!
//! ```
//! use cluster::{cluster_usage_changes, usage_dist};
//! use usagegraph::{FeaturePath, UsageChange};
//!
//! fn path(labels: &[&str]) -> FeaturePath {
//!     FeaturePath(labels.iter().map(|s| (*s).to_owned()).collect())
//! }
//!
//! let ecb_to_cbc = UsageChange {
//!     class: "Cipher".into(),
//!     removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
//!     added: vec![path(&["Cipher", "getInstance", "arg1:AES/CBC"])],
//! };
//! let ecb_to_gcm = UsageChange {
//!     class: "Cipher".into(),
//!     removed: vec![path(&["Cipher", "getInstance", "arg1:AES/ECB"])],
//!     added: vec![path(&["Cipher", "getInstance", "arg1:AES/GCM"])],
//! };
//! assert!(usage_dist(&ecb_to_cbc, &ecb_to_gcm) < 0.2);
//!
//! let dendrogram = cluster_usage_changes(&[ecb_to_cbc, ecb_to_gcm]);
//! assert_eq!(dendrogram.merges.len(), 1);
//! ```

#![warn(missing_docs)]

mod dist;
mod hierarchy;
mod lev;

pub use dist::{path_dist, paths_dist, usage_dist};
pub use hierarchy::{agglomerate, agglomerate_with, Dendrogram, Linkage, Merge};
pub use lev::{label_similarity, levenshtein};

use usagegraph::UsageChange;

/// Clusters usage changes hierarchically under [`usage_dist`] with
/// complete linkage.
pub fn cluster_usage_changes(changes: &[UsageChange]) -> Dendrogram {
    agglomerate(changes.len(), |i, j| usage_dist(&changes[i], &changes[j]))
}
