//! A shared, condensed pairwise distance matrix.
//!
//! The clustering pipeline evaluates `usage_dist` O(n²) times to build
//! the leaf-distance matrix, and the distance itself is expensive (a
//! Hungarian assignment over Levenshtein label similarities). This
//! module computes the matrix **once**, in parallel, and hands it to
//! agglomeration ([`crate::agglomerate_matrix`]), silhouette selection
//! ([`crate::Dendrogram::best_cut`]), and the benches — so no stage
//! ever re-evaluates a pairwise distance.
//!
//! Storage is the condensed upper triangle (`n·(n−1)/2` values, row
//! major, `i < j`), the same layout SciPy's `pdist` uses: half the
//! memory of a square matrix and cache-friendly row scans.

/// A symmetric pairwise distance matrix over `n` items with zero
/// diagonal, stored as the condensed upper triangle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed upper triangle: entry `(i, j)` with `i < j` lives at
    /// `i·n − i·(i+1)/2 + (j − i − 1)`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all `n·(n−1)/2` pairwise distances, in parallel across
    /// the available cores via scoped threads. `dist` is called exactly
    /// once per unordered pair `{i, j}`, `i < j`, and must be
    /// symmetric; the diagonal is implicitly zero.
    pub fn from_fn(n: usize, dist: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let mut data = vec![0.0f64; condensed_len(n)];
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Serial fallback: one core, or a matrix too small to be worth
        // the spawn overhead.
        if threads < 2 || n < 128 {
            let mut idx = 0;
            for i in 0..n {
                for j in i + 1..n {
                    data[idx] = dist(i, j);
                    idx += 1;
                }
            }
            return DistanceMatrix { n, data };
        }
        // Split the condensed buffer into per-row slices (disjoint, so
        // the borrows check), then deal rows to workers round-robin:
        // row i has n−1−i entries, and interleaving short and long rows
        // balances total work per thread without a scheduler.
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> = (0..threads)
            .map(|_| Vec::with_capacity(n / threads + 1))
            .collect();
        let mut rest = data.as_mut_slice();
        for i in 0..n {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            buckets[i % threads].push((i, row));
            rest = tail;
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(|| {
                    for (i, row) in bucket {
                        for (offset, slot) in row.iter_mut().enumerate() {
                            *slot = dist(i, i + 1 + offset);
                        }
                    }
                });
            }
        });
        DistanceMatrix { n, data }
    }

    /// Wraps an already-condensed distance vector (length must be
    /// `n·(n−1)/2`).
    ///
    /// # Panics
    ///
    /// If the length does not match `n`.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), condensed_len(n), "condensed length for n={n}");
        DistanceMatrix { n, data }
    }

    /// Number of items (leaves) the matrix covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between items `i` and `j` (zero on the diagonal).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.data[condensed_index(self.n, i, j)]
    }

    /// The condensed upper triangle, row major, `i < j`.
    #[must_use]
    pub fn condensed(&self) -> &[f64] {
        &self.data
    }
}

/// Length of the condensed form for `n` items.
pub(crate) fn condensed_len(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Condensed offset of pair `(i, j)` with `i < j`.
pub(crate) fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn condensed_indexing_is_bijective() {
        for n in 0..12 {
            let mut seen = vec![false; condensed_len(n)];
            for i in 0..n {
                for j in i + 1..n {
                    let k = condensed_index(n, i, j);
                    assert!(!seen[k], "({i},{j}) collides at {k}");
                    seen[k] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} leaves gaps");
        }
    }

    #[test]
    fn get_is_symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::from_fn(5, |i, j| (i * 10 + j) as f64);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in i + 1..5 {
                assert_eq!(m.get(i, j), (i * 10 + j) as f64);
                assert_eq!(m.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn evaluates_each_pair_exactly_once() {
        // Both the serial path (small n) and the threaded path (large
        // n) must call `dist` exactly n·(n−1)/2 times.
        for n in [0, 1, 2, 40, 200] {
            let calls = AtomicUsize::new(0);
            let m = DistanceMatrix::from_fn(n, |i, j| {
                calls.fetch_add(1, Ordering::Relaxed);
                (i + j) as f64
            });
            assert_eq!(calls.load(Ordering::Relaxed), condensed_len(n), "n={n}");
            assert_eq!(m.len(), n);
            if n > 1 {
                assert_eq!(m.get(n - 2, n - 1), (2 * n - 3) as f64);
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        // from_fn picks the threaded path at n ≥ 128 when cores allow;
        // the result must be identical to a serial fill either way.
        let n = 150;
        let dist = |i: usize, j: usize| ((i * 31 + j * 17) % 101) as f64 / 101.0;
        let m = DistanceMatrix::from_fn(n, dist);
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(m.get(i, j), dist(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn from_condensed_round_trips() {
        let m = DistanceMatrix::from_fn(6, |i, j| (i + j) as f64);
        let again = DistanceMatrix::from_condensed(6, m.condensed().to_vec());
        assert_eq!(m, again);
    }

    #[test]
    #[should_panic(expected = "condensed length")]
    fn from_condensed_rejects_bad_length() {
        let _ = DistanceMatrix::from_condensed(4, vec![0.0; 5]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(DistanceMatrix::from_fn(0, |_, _| 1.0).is_empty());
        let one = DistanceMatrix::from_fn(1, |_, _| 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one.get(0, 0), 0.0);
        assert!(one.condensed().is_empty());
    }
}
