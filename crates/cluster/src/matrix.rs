//! A shared, condensed pairwise distance matrix.
//!
//! The clustering pipeline evaluates `usage_dist` O(n²) times to build
//! the leaf-distance matrix, and the distance itself is expensive (a
//! Hungarian assignment over Levenshtein label similarities). This
//! module computes the matrix **once**, in parallel, and hands it to
//! agglomeration ([`crate::agglomerate_matrix`]), silhouette selection
//! ([`crate::Dendrogram::best_cut`]), and the benches — so no stage
//! ever re-evaluates a pairwise distance.
//!
//! Storage is the condensed upper triangle (`n·(n−1)/2` values, row
//! major, `i < j`), the same layout SciPy's `pdist` uses: half the
//! memory of a square matrix and cache-friendly row scans.

/// Why a [`DistanceMatrix`] could not be built: the size arithmetic
/// itself is the enforcement point for the clustering memory bound, so
/// both failure modes are typed instead of wrapping or aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// `n·(n−1)/2` does not fit in `usize`, so the condensed buffer is
    /// not even addressable. (Computed in `u128`; the old `usize`
    /// multiply would silently wrap here.)
    SizeOverflow {
        /// The offending item count.
        n: usize,
    },
    /// The matrix is addressable but larger than the caller's cell
    /// budget — the dense path must hand over to the bucketed scheme.
    CellBudgetExceeded {
        /// The offending item count.
        n: usize,
        /// Exact cell count `n·(n−1)/2`.
        cells: u128,
        /// The configured budget the count exceeded.
        budget: usize,
    },
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::SizeOverflow { n } => {
                write!(f, "condensed distance matrix for {n} items overflows usize")
            }
            MatrixError::CellBudgetExceeded { n, cells, budget } => write!(
                f,
                "distance matrix for {n} items needs {cells} cells, over the budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A symmetric pairwise distance matrix over `n` items with zero
/// diagonal, stored as the condensed upper triangle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed upper triangle: entry `(i, j)` with `i < j` lives at
    /// `i·n − i·(i+1)/2 + (j − i − 1)`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all `n·(n−1)/2` pairwise distances, in parallel across
    /// the available cores via scoped threads. `dist` is called exactly
    /// once per unordered pair `{i, j}`, `i < j`, and must be
    /// symmetric; the diagonal is implicitly zero.
    ///
    /// # Panics
    ///
    /// If `n·(n−1)/2` overflows `usize`. Use [`DistanceMatrix::try_from_fn`]
    /// to get a typed error (and a configurable cell budget) instead.
    pub fn from_fn(n: usize, dist: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        DistanceMatrix::try_from_fn(n, None, dist).expect("condensed matrix size overflows usize")
    }

    /// [`DistanceMatrix::from_fn`] with typed failure: refuses (instead
    /// of wrapping or aborting) when the condensed length `n·(n−1)/2`
    /// overflows `usize`, or when it exceeds `max_cells` — the
    /// enforcement point for the clustering memory bound. Each cell is
    /// 8 bytes, so a budget of `N` cells caps the allocation at `8·N`
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`MatrixError::SizeOverflow`] or [`MatrixError::CellBudgetExceeded`].
    pub fn try_from_fn(
        n: usize,
        max_cells: Option<usize>,
        dist: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Result<Self, MatrixError> {
        let cells = condensed_cells(n);
        if let Some(budget) = max_cells {
            if cells > budget as u128 {
                return Err(MatrixError::CellBudgetExceeded { n, cells, budget });
            }
        }
        let len = usize::try_from(cells).map_err(|_| MatrixError::SizeOverflow { n })?;
        let mut data = vec![0.0f64; len];
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        // Serial fallback: one core, or a matrix too small to be worth
        // the spawn overhead.
        if threads < 2 || n < 128 {
            let mut idx = 0;
            for i in 0..n {
                for j in i + 1..n {
                    data[idx] = dist(i, j);
                    idx += 1;
                }
            }
            return Ok(DistanceMatrix { n, data });
        }
        // Split the condensed buffer into per-row slices (disjoint, so
        // the borrows check), then deal rows to workers round-robin:
        // row i has n−1−i entries, and interleaving short and long rows
        // balances total work per thread without a scheduler.
        let mut buckets: Vec<Vec<(usize, &mut [f64])>> = (0..threads)
            .map(|_| Vec::with_capacity(n / threads + 1))
            .collect();
        let mut rest = data.as_mut_slice();
        for i in 0..n {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            buckets[i % threads].push((i, row));
            rest = tail;
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(|| {
                    for (i, row) in bucket {
                        for (offset, slot) in row.iter_mut().enumerate() {
                            *slot = dist(i, i + 1 + offset);
                        }
                    }
                });
            }
        });
        Ok(DistanceMatrix { n, data })
    }

    /// Wraps an already-condensed distance vector (length must be
    /// `n·(n−1)/2`).
    ///
    /// # Panics
    ///
    /// If the length does not match `n`.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), condensed_len(n), "condensed length for n={n}");
        DistanceMatrix { n, data }
    }

    /// Number of items (leaves) the matrix covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between items `i` and `j` (zero on the diagonal).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.data[condensed_index(self.n, i, j)]
    }

    /// The condensed upper triangle, row major, `i < j`.
    #[must_use]
    pub fn condensed(&self) -> &[f64] {
        &self.data
    }
}

/// Exact cell count of the condensed form for `n` items,
/// `n·(n−1)/2`, computed in `u128` so it can never wrap. (`u128` holds
/// the product for any `usize` `n`: the factors are < 2⁶⁴ each.)
#[must_use]
pub fn condensed_cells(n: usize) -> u128 {
    let n = n as u128;
    n * n.saturating_sub(1) / 2
}

/// Length of the condensed form for `n` items, for contexts that have
/// already validated the size (indexing an existing buffer).
///
/// # Panics
///
/// If the count overflows `usize` — [`DistanceMatrix::try_from_fn`] is
/// the checked entry point.
pub(crate) fn condensed_len(n: usize) -> usize {
    usize::try_from(condensed_cells(n)).expect("condensed length overflows usize")
}

/// Condensed offset of pair `(i, j)` with `i < j`.
pub(crate) fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn condensed_indexing_is_bijective() {
        for n in 0..12 {
            let mut seen = vec![false; condensed_len(n)];
            for i in 0..n {
                for j in i + 1..n {
                    let k = condensed_index(n, i, j);
                    assert!(!seen[k], "({i},{j}) collides at {k}");
                    seen[k] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} leaves gaps");
        }
    }

    #[test]
    fn get_is_symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::from_fn(5, |i, j| (i * 10 + j) as f64);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in i + 1..5 {
                assert_eq!(m.get(i, j), (i * 10 + j) as f64);
                assert_eq!(m.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn evaluates_each_pair_exactly_once() {
        // Both the serial path (small n) and the threaded path (large
        // n) must call `dist` exactly n·(n−1)/2 times.
        for n in [0, 1, 2, 40, 200] {
            let calls = AtomicUsize::new(0);
            let m = DistanceMatrix::from_fn(n, |i, j| {
                calls.fetch_add(1, Ordering::Relaxed);
                (i + j) as f64
            });
            assert_eq!(calls.load(Ordering::Relaxed), condensed_len(n), "n={n}");
            assert_eq!(m.len(), n);
            if n > 1 {
                assert_eq!(m.get(n - 2, n - 1), (2 * n - 3) as f64);
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        // from_fn picks the threaded path at n ≥ 128 when cores allow;
        // the result must be identical to a serial fill either way.
        let n = 150;
        let dist = |i: usize, j: usize| ((i * 31 + j * 17) % 101) as f64 / 101.0;
        let m = DistanceMatrix::from_fn(n, dist);
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(m.get(i, j), dist(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn from_condensed_round_trips() {
        let m = DistanceMatrix::from_fn(6, |i, j| (i + j) as f64);
        let again = DistanceMatrix::from_condensed(6, m.condensed().to_vec());
        assert_eq!(m, again);
    }

    #[test]
    #[should_panic(expected = "condensed length")]
    fn from_condensed_rejects_bad_length() {
        let _ = DistanceMatrix::from_condensed(4, vec![0.0; 5]);
    }

    #[test]
    fn condensed_cells_is_exact_at_wrapping_sizes() {
        // Small sizes: matches the closed form.
        for (n, want) in [(0u128, 0u128), (1, 0), (2, 1), (5, 10), (2000, 1_999_000)] {
            assert_eq!(condensed_cells(n as usize), want, "n={n}");
        }
        // The old `usize` formula wraps for n ≥ 2³³ on 64-bit targets
        // (the multiply exceeds 2⁶⁴); the u128 count stays exact.
        #[cfg(target_pointer_width = "64")]
        {
            let n: usize = 1 << 33;
            let exact = (n as u128) * ((n as u128) - 1) / 2;
            assert_eq!(condensed_cells(n), exact);
            assert!(exact > u64::MAX as u128 / 2, "sanity: past the wrap point");
            let wrapped = (n.wrapping_mul(n - 1)) / 2;
            assert_ne!(wrapped as u128, exact, "usize arithmetic would wrap");
        }
        assert_eq!(
            condensed_cells(usize::MAX),
            (usize::MAX as u128) * (usize::MAX as u128 - 1) / 2
        );
    }

    #[test]
    fn try_from_fn_reports_overflow_as_typed_error() {
        #[cfg(target_pointer_width = "64")]
        let n = 1usize << 33; // n·(n−1)/2 ≈ 2⁶⁵ > usize::MAX
        #[cfg(not(target_pointer_width = "64"))]
        let n = usize::MAX;
        let err = DistanceMatrix::try_from_fn(n, None, |_, _| 0.0).unwrap_err();
        assert_eq!(err, MatrixError::SizeOverflow { n });
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn try_from_fn_enforces_the_cell_budget() {
        // 6 items need 15 cells; a budget of 14 must refuse without
        // evaluating a single distance.
        let calls = AtomicUsize::new(0);
        let err = DistanceMatrix::try_from_fn(6, Some(14), |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            0.0
        })
        .unwrap_err();
        assert_eq!(
            err,
            MatrixError::CellBudgetExceeded {
                n: 6,
                cells: 15,
                budget: 14
            }
        );
        assert_eq!(calls.load(Ordering::Relaxed), 0, "no work past the budget");
        // An exact-fit budget succeeds and matches the unbudgeted build.
        let m = DistanceMatrix::try_from_fn(6, Some(15), |i, j| (i + j) as f64).unwrap();
        assert_eq!(m, DistanceMatrix::from_fn(6, |i, j| (i + j) as f64));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(DistanceMatrix::from_fn(0, |_, _| 1.0).is_empty());
        let one = DistanceMatrix::from_fn(1, |_, _| 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one.get(0, 0), 0.0);
        assert!(one.condensed().is_empty());
    }
}
