//! Nearest-neighbor-chain agglomeration (Murtagh's NN-chain) over a
//! shared [`DistanceMatrix`], with Lance–Williams distance updates.
//!
//! The naive agglomeration loop ([`crate::agglomerate_naive`]) scans
//! every active pair every round and recomputes cluster-to-cluster
//! distances from leaf members, which is O(n³) pair scans and up to
//! O(n⁴) leaf-distance lookups. The chain algorithm exploits the
//! *reducibility* of complete, single, and average linkage (merging two
//! clusters never brings either closer to a third) to find reciprocal
//! nearest neighbors by walking NN pointers, and maintains
//! cluster-to-cluster distances incrementally with the Lance–Williams
//! update — O(n²) time and memory for all three [`Linkage`] variants.
//!
//! Reciprocal-NN merges are discovered out of height order, so a
//! SciPy-style post-pass ([`relabel`]) restores the dendrogram
//! contract: merges are sorted by height and node id `n + k` is
//! assigned to the k-th emitted merge. Tie-breaking is aligned with
//! the naive loop's "smallest node-id pair" rule at both stages:
//!
//! * during discovery, the chain restarts at the active cluster with
//!   the smallest (eventual) node id and the NN scan resolves
//!   epsilon-ties toward the smallest id — the relative id order of two
//!   live clusters is approximated mid-run (leaves by slot id before
//!   merged clusters by `(height, discovery)`), even though the ids
//!   themselves are not known; the chain predecessor wins its tie,
//!   which is what guarantees termination;
//! * during relabeling, merges with exactly equal heights are emitted
//!   in the naive scan's order: repeatedly pick, among merges whose
//!   operand clusters both exist already, the lexicographically
//!   smallest `(left, right)` node-id pair.
//!
//! # How exactly this matches the naive reference
//!
//! On generic-position inputs — no two pairwise distances exactly
//! equal — the chain reproduces [`crate::agglomerate_naive`] exactly at
//! every size: same merges, same node ids, same heights. Under exact
//! ties it is still deterministic, and the alignment above makes it
//! reproduce the reference on every input small enough to check
//! exhaustively (all 4-level 1-D grids with n ≤ 5, all quarter-step
//! quantized dissimilarity matrices with n ≤ 3). It is *not* a full
//! guarantee: when several exactly-equal merge heights form a tangle
//! whose candidate pairs share operands, the naive global scan breaks
//! the tie using final node ids of merges the chain has not discovered
//! yet — information no O(n²) chain walk can have — and the two may
//! resolve the tangle into different, equally valid trees (SciPy and
//! fastcluster make no tie-order promise at all for the same reason).
//! The equivalence property tests in `tests/nn_chain_equivalence.rs`
//! pin down both sides of this boundary: exact equivalence on
//! generic-position and exhaustively-enumerated small inputs, and
//! independent validity against the linkage definition everywhere else.

use crate::hierarchy::{Dendrogram, Linkage, Merge, TIE_EPS};
use crate::matrix::{condensed_index, DistanceMatrix};

/// One operand of a discovered merge: the cluster's identity at
/// discovery time, independent of the slot that hosted it. Also the
/// raw-merge representation `crate::bucket` feeds back through
/// [`relabel`] when stitching per-bucket trees into one dendrogram.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// An original item.
    Leaf(usize),
    /// The cluster created by the merge at this discovery index.
    Merged(usize),
}

/// Runs NN-chain agglomeration over a precomputed distance matrix.
///
/// Produces the same dendrogram as [`crate::agglomerate_naive`] on the
/// same distances — same merges, same node ids, same heights — in
/// O(n²) instead of O(n³) and without re-evaluating any pairwise
/// distance. See the module docs for the exact scope of that
/// equivalence under tied distances.
pub(crate) fn nn_chain(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n == 0 {
        return Dendrogram::default();
    }
    // Working cluster-to-cluster distances between *slots*. Slot `s`
    // starts as leaf `s`; a merge keeps the smaller slot as host, so a
    // cluster hosted at slot `s` always contains leaf `s` (which makes
    // slots usable as union-find representatives during relabeling).
    let mut work = matrix.condensed().to_vec();
    let mut size = vec![1usize; n];
    let mut active: Vec<usize> = (0..n).collect();
    // The naive loop breaks distance ties by smallest node-id pair,
    // where node ids are assigned in merge (= height) order. Merges
    // are discovered out of height order here, so a cluster's final
    // node id is unknown mid-run — but the *relative* id order of any
    // two live clusters can be approximated: leaves (id < n) sort
    // before merged clusters and among themselves by slot id, and
    // merged clusters sort by (height, discovery index). Heights are
    // final; the discovery-index component is a stand-in for the
    // relabeling pass's within-equal-height emission order, which is
    // exact except on adversarial tie tangles (see module docs). That
    // key is what every tie-break below compares.
    let mut merge_key: Vec<Option<(f64, usize)>> = vec![None; n];
    let id_order = |merge_key: &[Option<(f64, usize)>], a: usize, b: usize| -> std::cmp::Ordering {
        match (merge_key[a], merge_key[b]) {
            (None, None) => a.cmp(&b),
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(ka), Some(kb)) => {
                ka.0.partial_cmp(&kb.0)
                    .expect("finite heights")
                    .then(ka.1.cmp(&kb.1))
            }
        }
    };

    // Cluster identity currently hosted at each slot, for recording
    // merge operands independent of slot reuse.
    let mut cluster_of: Vec<Op> = (0..n).map(Op::Leaf).collect();

    let mut raw: Vec<(Op, Op, f64)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    let wd = |work: &[f64], a: usize, b: usize| -> f64 {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        work[condensed_index(n, a, b)]
    };

    while raw.len() + 1 < n {
        if chain.is_empty() {
            // Restart at the cluster with the smallest node id, like
            // the naive loop's scan does.
            let start = active
                .iter()
                .copied()
                .min_by(|&a, &b| id_order(&merge_key, a, b))
                .expect("non-empty active set");
            chain.push(start);
        }
        loop {
            let head = *chain.last().expect("chain non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            // Nearest neighbor of `head`; among tie-epsilon-equal
            // candidates the smallest node id wins, mirroring the
            // naive loop's first-scanned-pair rule.
            let mut best: Option<(f64, usize)> = None;
            for &c in &active {
                if c == head {
                    continue;
                }
                let d = wd(&work, head, c);
                let wins = match best {
                    None => true,
                    Some((bd, bc)) => {
                        d < bd - TIE_EPS
                            || (d <= bd + TIE_EPS
                                && id_order(&merge_key, c, bc) == std::cmp::Ordering::Less)
                    }
                };
                if wins {
                    best = Some((d, c));
                }
            }
            let (best_d, mut nn) = best.expect("at least two active clusters");
            // The predecessor wins ties: reciprocity is then immediate
            // and the chain's head distances strictly decrease, which
            // is what terminates the walk.
            if let Some(p) = prev {
                let dp = wd(&work, head, p);
                if dp <= best_d + TIE_EPS {
                    nn = p;
                }
            }
            if Some(nn) != prev {
                chain.push(nn);
                continue;
            }
            // Reciprocal nearest neighbors: merge `head` and `nn`.
            let height = wd(&work, head, nn);
            chain.truncate(chain.len() - 2);
            let (host, dead) = if head < nn { (head, nn) } else { (nn, head) };
            raw.push((cluster_of[host], cluster_of[dead], height));
            // Lance–Williams update of every surviving distance.
            let (sh, sd) = (size[host] as f64, size[dead] as f64);
            for &c in &active {
                if c == host || c == dead {
                    continue;
                }
                let dh = wd(&work, host, c);
                let dd = wd(&work, dead, c);
                let merged = match linkage {
                    Linkage::Complete => dh.max(dd),
                    Linkage::Single => dh.min(dd),
                    Linkage::Average => (sh * dh + sd * dd) / (sh + sd),
                };
                let (a, b) = if host < c { (host, c) } else { (c, host) };
                work[condensed_index(n, a, b)] = merged;
            }
            size[host] += size[dead];
            merge_key[host] = Some((height, raw.len() - 1));
            cluster_of[host] = Op::Merged(raw.len() - 1);
            active.retain(|&s| s != host && s != dead);
            active.push(host);
            break;
        }
    }

    relabel(n, raw)
}

/// Orders the discovered merges by height and assigns final node ids
/// (merge `k` creates node `n + k`). Within a run of exactly equal
/// heights the naive loop's order is reproduced: repeatedly emit,
/// among the merges whose operand clusters both already exist, the one
/// with the lexicographically smallest `(left, right)` node-id pair —
/// that is the first pair the naive scan over its id-sorted active
/// list would keep.
pub(crate) fn relabel(n: usize, raw: Vec<(Op, Op, f64)>) -> Dendrogram {
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&x, &y| raw[x].2.partial_cmp(&raw[y].2).expect("finite distances"));

    // Final node id of each discovered merge, filled as merges are
    // emitted.
    let mut node_id: Vec<Option<usize>> = vec![None; raw.len()];
    let resolve = |node_id: &[Option<usize>], op: Op| -> Option<usize> {
        match op {
            Op::Leaf(item) => Some(item),
            Op::Merged(disc) => node_id[disc],
        }
    };

    let mut merges: Vec<Merge> = Vec::with_capacity(raw.len());
    let mut run_start = 0;
    while run_start < order.len() {
        let height = raw[order[run_start]].2;
        let mut run_end = run_start + 1;
        while run_end < order.len() && raw[order[run_end]].2 == height {
            run_end += 1;
        }
        let mut pending: Vec<usize> = order[run_start..run_end].to_vec();
        while !pending.is_empty() {
            let mut best: Option<(usize, usize, usize)> = None; // (left, right, pos)
            for (pos, &disc) in pending.iter().enumerate() {
                let (a, b, _) = raw[disc];
                if let (Some(ia), Some(ib)) = (resolve(&node_id, a), resolve(&node_id, b)) {
                    let (lo, hi) = (ia.min(ib), ia.max(ib));
                    if best.is_none_or(|(bl, br, _)| (lo, hi) < (bl, br)) {
                        best = Some((lo, hi, pos));
                    }
                }
            }
            // Dependencies point at equal-or-lower heights (reducible
            // linkages cannot invert), so some merge is always ready.
            let (left, right, pos) = best.expect("a ready merge exists within every height run");
            let disc = pending.swap_remove(pos);
            node_id[disc] = Some(n + merges.len());
            merges.push(Merge {
                left,
                right,
                distance: height,
            });
        }
        run_start = run_end;
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::agglomerate_naive;

    fn matrix_of(coords: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn empty_singleton_and_pair() {
        let empty = nn_chain(&DistanceMatrix::from_fn(0, |_, _| 0.0), Linkage::Complete);
        assert_eq!(empty.n_leaves, 0);
        assert!(empty.merges.is_empty());

        let one = nn_chain(&DistanceMatrix::from_fn(1, |_, _| 0.0), Linkage::Complete);
        assert_eq!(one.n_leaves, 1);
        assert!(one.merges.is_empty());

        let two = nn_chain(&matrix_of(&[0.0, 2.5]), Linkage::Complete);
        assert_eq!(
            two.merges,
            vec![Merge {
                left: 0,
                right: 1,
                distance: 2.5
            }]
        );
    }

    #[test]
    fn matches_naive_on_well_separated_groups() {
        let coords = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let fast = nn_chain(&matrix_of(&coords), linkage);
            let naive =
                agglomerate_naive(coords.len(), |i, j| (coords[i] - coords[j]).abs(), linkage);
            assert_eq!(fast, naive, "{linkage:?}");
        }
    }

    #[test]
    fn matches_naive_on_exact_ties() {
        // Unit-gap chain: every single-linkage merge is a height tie.
        let coords = [0.0, 1.0, 2.0, 3.0, 4.0];
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let fast = nn_chain(&matrix_of(&coords), linkage);
            let naive =
                agglomerate_naive(coords.len(), |i, j| (coords[i] - coords[j]).abs(), linkage);
            assert_eq!(fast, naive, "{linkage:?}");
        }
    }

    #[test]
    fn matches_naive_on_duplicates() {
        // Duplicate points: zero-distance ties, the common case for
        // identical usage changes.
        let coords = [0.0, 0.0, 0.0, 5.0, 5.0, 9.0];
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let fast = nn_chain(&matrix_of(&coords), linkage);
            let naive =
                agglomerate_naive(coords.len(), |i, j| (coords[i] - coords[j]).abs(), linkage);
            assert_eq!(fast, naive, "{linkage:?}");
        }
    }

    #[test]
    fn mutually_equidistant_triple() {
        // d(A,B) = d(B,C) = 1, d(A,C) = 2: complete linkage's result
        // depends entirely on the tie-break; the naive rule merges the
        // lexicographically smallest pair (0, 1) first.
        let m = DistanceMatrix::from_condensed(3, vec![1.0, 2.0, 1.0]);
        let fast = nn_chain(&m, Linkage::Complete);
        assert_eq!(
            fast.merges[0],
            Merge {
                left: 0,
                right: 1,
                distance: 1.0
            }
        );
        assert_eq!(
            fast.merges[1],
            Merge {
                left: 2,
                right: 3,
                distance: 2.0
            }
        );
    }

    #[test]
    fn heights_are_monotone_for_reducible_linkages() {
        let coords = [4.2, 0.1, 7.7, 3.3, 9.0, 0.2, 5.5, 6.1];
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let d = nn_chain(&matrix_of(&coords), linkage);
            for w in d.merges.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-9, "{linkage:?}");
            }
        }
    }
}
